#!/usr/bin/env python
"""Docs smoke check: run code fences, verify intra-repo links.

Scans ``README.md`` and ``docs/*.md`` and

1. **executes** every fenced ```` ```bash ```` / ```` ```python ````
   block (skipping those whose info string contains ``no-run``) from
   the repository root, with ``src/`` prepended to ``PYTHONPATH`` --
   a fence that exits nonzero fails the check, so the documentation's
   copy-pasteable commands cannot rot;
2. checks every relative markdown link ``[text](target)`` resolves to a
   file or directory in the repository (anchors and external
   ``http(s)``/``mailto`` links are ignored).

Run with::

    python tools/check_docs.py [--docs PATH ...] [--list]

Exit status: 0 when every fence ran and every link resolved.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Tuple

REPO = Path(__file__).resolve().parent.parent


def display(path: Path) -> str:
    """Repo-relative rendering when possible, absolute otherwise."""
    try:
        return str(path.relative_to(REPO))
    except ValueError:
        return str(path)


# A fence opens with >= 3 backticks plus an optional info string and
# closes with a backtick-only line of at least the opening length --
# so example fences shown inside ````-literal blocks are body text,
# never executed.
FENCE_OPEN_RE = re.compile(r"^(`{3,})([^`]*)$")
LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")
RUNNABLE = {"bash", "python"}
FENCE_TIMEOUT_SECONDS = 600


@dataclass
class Fence:
    path: Path
    line: int  # 1-based line of the opening ```
    language: str
    flags: Tuple[str, ...]
    body: str

    @property
    def runnable(self) -> bool:
        return self.language in RUNNABLE and "no-run" not in self.flags

    @property
    def label(self) -> str:
        return f"{display(self.path)}:{self.line}"


def default_documents() -> List[Path]:
    docs = [REPO / "README.md"]
    docs.extend(sorted((REPO / "docs").glob("*.md")))
    return [d for d in docs if d.exists()]


def _is_close(line: str, opening: str) -> bool:
    stripped = line.strip()
    return (
        stripped == "`" * len(stripped)
        and len(stripped) >= len(opening)
        and bool(stripped)
    )


def extract_fences(path: Path) -> List[Fence]:
    fences: List[Fence] = []
    lines = path.read_text().splitlines()
    opening = ""  # backtick run of the currently open fence, "" if none
    info: List[str] = []
    start = 0
    body: List[str] = []
    for number, line in enumerate(lines, start=1):
        if not opening:
            match = FENCE_OPEN_RE.match(line.strip())
            if match:
                opening = match.group(1)
                info = match.group(2).strip().split()
                start = number
                body = []
        elif _is_close(line, opening):
            opening = ""
            fences.append(Fence(
                path=path,
                line=start,
                language=info[0] if info else "",
                flags=tuple(info[1:]),
                body="\n".join(body) + "\n",
            ))
        else:
            body.append(line)
    if opening:
        raise ValueError(f"{path}: unterminated code fence at line {start}")
    return fences


def run_fence(fence: Fence) -> Tuple[bool, str]:
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    if fence.language == "bash":
        command = ["bash", "-euo", "pipefail", "-c", fence.body]
    else:
        command = [sys.executable, "-c", fence.body]
    try:
        proc = subprocess.run(
            command,
            cwd=REPO,
            env=env,
            capture_output=True,
            text=True,
            timeout=FENCE_TIMEOUT_SECONDS,
        )
    except subprocess.TimeoutExpired:
        return False, f"timed out after {FENCE_TIMEOUT_SECONDS}s"
    if proc.returncode != 0:
        tail = (proc.stderr or proc.stdout).strip().splitlines()[-12:]
        return False, "\n".join(tail)
    return True, ""


def check_links(path: Path) -> List[str]:
    problems: List[str] = []
    opening = ""
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        # Skip fenced code: example links inside fences are not claims.
        if not opening:
            match = FENCE_OPEN_RE.match(line.strip())
            if match:
                opening = match.group(1)
                continue
        else:
            if _is_close(line, opening):
                opening = ""
            continue
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                problems.append(
                    f"{display(path)}:{number}: broken link -> {target}"
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--docs", nargs="*", type=Path, default=None,
        help="markdown files to check (default: README.md docs/*.md)",
    )
    parser.add_argument("--list", action="store_true",
                        help="list fences and exit without executing")
    args = parser.parse_args(argv)

    documents = (
        [p.resolve() for p in args.docs] if args.docs else default_documents()
    )
    if not documents:
        print("check_docs: no documents found", file=sys.stderr)
        return 2

    failures: List[str] = []
    executed = skipped = 0
    for document in documents:
        for problem in check_links(document):
            failures.append(problem)
        for fence in extract_fences(document):
            if not fence.runnable:
                skipped += 1
                continue
            if args.list:
                print(f"would run {fence.label} [{fence.language}]")
                continue
            ok, detail = run_fence(fence)
            executed += 1
            status = "ok" if ok else "FAIL"
            print(f"[{status}] {fence.label} [{fence.language}]")
            if not ok:
                failures.append(f"{fence.label}: fence failed\n{detail}")

    print(
        f"\ncheck_docs: {len(documents)} documents, {executed} fences "
        f"executed, {skipped} skipped"
    )
    if failures:
        print("\n" + "\n".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
