#!/usr/bin/env python
"""CI regression gate over the benchmark reports (the perf trajectory).

Compares freshly-generated ``BENCH_engine.json`` / ``BENCH_solver.json``
/ ``BENCH_service.json`` / ``BENCH_micro.json`` against the committed
baselines and fails when the trajectory regresses:

* **solver families** (``refinement-heavy``, ``binding-heavy``): the
  incremental/scratch speedup must stay >= ``--min-family-ratio``
  (default 1.2 -- incremental must actively beat scratch, not merely
  tie it; raised from 1.0 when the PR-8 kernel rewrites lifted both
  committed families well above 2.6x) *and* must not fall below
  ``baseline * (1 - tolerance)``;
* **iteration parity**: for every workload-family case label present in
  both reports, the solver's iteration count must match the baseline
  exactly (the solver is deterministic -- any drift means the search
  path changed);
* **envelope identity**: every report's ``results_identical`` flag must
  hold (parallel/cached/incremental/served results byte-identical);
* **cache hits**: the engine's warm-cache speedup must stay above an
  absolute floor (wall-clock ratios across CI hosts are too noisy for a
  relative bound; serving a hit thousands of times faster than solving
  degrades to "merely" ``--min-hit-speedup``x before the gate trips);
* **service throughput**: the served ``/batch`` stream must sustain at
  least ``--min-service-ratio`` (default 1.0) of the serial
  ``Engine.run_batch`` throughput;
* **kernel speedups**: every ``bench_micro.py`` kernel (``max_chain``,
  ``cover_probe``, ``tracker_ops``) must beat its in-process reference
  implementation by at least ``--min-kernel-ratio`` (default 1.0 -- the
  optimised kernel may never lose to the formulation it replaced) *and*
  must not fall below ``baseline * (1 - tolerance)``;
* **fleet throughput** (``BENCH_fleet.json``): the coordinator over
  its worker pool must serve the duplicate-heavy wave stream at >=
  ``--min-fleet-ratio`` (default 1.5) the single-instance throughput,
  with every envelope byte-identical to the offline run and zero
  duplicate solves reaching the workers;
* **delta warm starts** (``BENCH_delta.json``): every warm single-edit
  re-solve must be canonical-byte identical to its cold counterpart
  (a break fails the gate with the path of the replayable repro file
  ``bench_delta.py`` wrote), the warm/cold speedup must stay >=
  ``--min-delta-ratio`` (default 2.0) and >= ``baseline * (1 -
  tolerance)``, and per-case cold iteration counts must match the
  committed baseline exactly.

Relative *wall-clock* comparisons between the committed baseline (dev
container) and the CI host are intentionally avoided everywhere except
the dimensionless ratios above: those are measured within one host, so
they transfer.

Run with (CI copies the committed baselines aside first)::

    python tools/check_bench.py --baseline-dir /tmp/bench-baselines --fresh-dir .

Exit status: 0 when every check passes.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

REPORTS = ("engine", "solver", "service", "micro", "delta", "fleet")
FILENAMES = {name: f"BENCH_{name}.json" for name in REPORTS}


class Gate:
    """Collects [ok]/[FAIL] check lines; remembers whether any failed."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.failed = False

    def check(self, ok: bool, label: str, detail: str) -> None:
        status = "ok" if ok else "FAIL"
        if not ok:
            self.failed = True
        self.lines.append(f"[{status}] {label}: {detail}")

    def note(self, text: str) -> None:
        self.lines.append(f"[--] {text}")


def load_report(path: Path, expected_kind: str) -> Dict[str, Any]:
    data = json.loads(path.read_text())
    kind = data.get("kind") if isinstance(data, dict) else None
    if kind != expected_kind:
        raise ValueError(f"{path}: expected kind {expected_kind!r}, got {kind!r}")
    return data


def check_engine(gate: Gate, baseline: Dict, fresh: Dict, args) -> None:
    gate.check(
        fresh.get("results_identical") is True,
        "engine.results_identical",
        "serial/parallel/cached envelopes byte-identical",
    )
    gate.check(
        int(fresh.get("cases", 0)) >= 1,
        "engine.cases",
        f"{fresh.get('cases')} sweep cases ran",
    )
    hit_speedup = float(fresh.get("cache", {}).get("hit_speedup", 0.0))
    gate.check(
        hit_speedup >= args.min_hit_speedup,
        "engine.cache_hit_speedup",
        f"{hit_speedup:g}x (floor {args.min_hit_speedup:g}x; "
        f"baseline {baseline.get('cache', {}).get('hit_speedup', '?')}x)",
    )


def check_solver(gate: Gate, baseline: Dict, fresh: Dict, args) -> None:
    gate.check(
        fresh.get("results_identical") is True,
        "solver.results_identical",
        "incremental results byte-identical to scratch",
    )
    fresh_families = {w["name"]: w for w in fresh.get("workloads", [])}
    baseline_iterations: Dict[str, int] = {}
    for family in baseline.get("workloads", []):
        name = family["name"]
        for case in family.get("cases", []):
            baseline_iterations[f"{name}/{case['label']}"] = case["iterations"]
        fresh_family = fresh_families.get(name)
        if fresh_family is None:
            gate.check(
                False, f"solver.{name}", "family missing from fresh report"
            )
            continue
        ratio = float(fresh_family.get("speedup", 0.0))
        floor = max(
            args.min_family_ratio,
            float(family.get("speedup", 0.0)) * (1.0 - args.tolerance),
        )
        gate.check(
            ratio >= floor,
            f"solver.{name}.speedup",
            f"incremental/scratch {ratio:g}x "
            f"(floor {floor:g}x = max({args.min_family_ratio:g}, "
            f"baseline {family.get('speedup')}x - {args.tolerance:.0%}))",
        )

    # Families without a committed baseline (just added to the bench)
    # still get the hard floor -- "incremental may never lose to
    # scratch" must hold from a family's first CI run, not from its
    # first committed baseline.
    baseline_names = {w["name"] for w in baseline.get("workloads", [])}
    for name, fresh_family in fresh_families.items():
        if name in baseline_names:
            continue
        ratio = float(fresh_family.get("speedup", 0.0))
        gate.check(
            ratio >= args.min_family_ratio,
            f"solver.{name}.speedup",
            f"incremental/scratch {ratio:g}x "
            f"(floor {args.min_family_ratio:g}x; new family, no "
            f"committed baseline -- regenerate BENCH_solver.json)",
        )

    drifted: List[str] = []
    seen: set = set()
    for name, fresh_family in fresh_families.items():
        for case in fresh_family.get("cases", []):
            key = f"{name}/{case['label']}"
            expected = baseline_iterations.get(key)
            if expected is None:
                continue  # new case: nothing committed to drift from
            seen.add(key)
            if case["iterations"] != expected:
                drifted.append(
                    f"{key}: {expected} -> {case['iterations']}"
                )
    # A smoke run (REPRO_SAMPLES=1) legitimately covers a subset of the
    # committed grid -- but zero overlap means the gate compared
    # nothing (renamed cases / changed grid), which must not pass as
    # parity; partial coverage is surfaced, not failed.
    uncovered = len(baseline_iterations) - len(seen)
    if uncovered and baseline_iterations:
        gate.note(
            f"solver.iteration_parity: {uncovered} of "
            f"{len(baseline_iterations)} committed case labels not in "
            f"the fresh report (smaller smoke grid)"
        )
    if baseline_iterations and not seen:
        gate.check(
            False, "solver.iteration_parity",
            "no case labels in common with the committed baselines -- "
            "grid renamed? regenerate and commit BENCH_solver.json",
        )
    else:
        gate.check(
            not drifted,
            "solver.iteration_parity",
            (
                f"{len(seen)} case labels match the committed "
                f"iteration counts"
                if not drifted
                else f"iteration counts drifted: {', '.join(drifted)}"
            ),
        )


def check_service(gate: Gate, baseline: Dict, fresh: Dict, args) -> None:
    gate.check(
        fresh.get("results_identical") is True,
        "service.results_identical",
        "served envelopes byte-identical to the serial run",
    )
    ratio = float(fresh.get("throughput_ratio", 0.0))
    gate.check(
        ratio >= args.min_service_ratio,
        "service.throughput_ratio",
        f"served /batch at {ratio:g}x serial run_batch throughput "
        f"(floor {args.min_service_ratio:g}x; "
        f"baseline {baseline.get('throughput_ratio', '?')}x)",
    )


def check_micro(gate: Gate, baseline: Dict, fresh: Dict, args) -> None:
    gate.check(
        fresh.get("results_identical") is True,
        "micro.results_identical",
        "every kernel's outputs match its reference implementation",
    )
    baseline_kernels = {
        k["name"]: k for k in baseline.get("kernels", [])
    }
    fresh_kernels = {k["name"]: k for k in fresh.get("kernels", [])}
    for name in sorted(baseline_kernels.keys() | fresh_kernels.keys()):
        fresh_kernel = fresh_kernels.get(name)
        if fresh_kernel is None:
            gate.check(
                False, f"micro.{name}", "kernel missing from fresh report"
            )
            continue
        ratio = float(fresh_kernel.get("speedup", 0.0))
        committed = baseline_kernels.get(name)
        if committed is None:
            floor = args.min_kernel_ratio
            detail = (
                f"kernel/reference {ratio:g}x (floor "
                f"{floor:g}x; new kernel, no committed baseline -- "
                f"regenerate BENCH_micro.json)"
            )
        else:
            floor = max(
                args.min_kernel_ratio,
                float(committed.get("speedup", 0.0)) * (1.0 - args.tolerance),
            )
            detail = (
                f"kernel/reference {ratio:g}x "
                f"(floor {floor:g}x = max({args.min_kernel_ratio:g}, "
                f"baseline {committed.get('speedup')}x - "
                f"{args.tolerance:.0%}))"
            )
        gate.check(ratio >= floor, f"micro.{name}.speedup", detail)


def check_delta(gate: Gate, baseline: Dict, fresh: Dict, args) -> None:
    failures = fresh.get("parity_failures") or []
    gate.check(
        fresh.get("results_identical") is True and not failures,
        "delta.results_identical",
        (
            "warm re-solves byte-identical to cold solves"
            if not failures
            else "PARITY BROKEN -- replayable repro file(s): "
            + ", ".join(f["repro"] for f in failures)
        ),
    )
    baseline_families = {w["name"]: w for w in baseline.get("workloads", [])}
    fresh_families = {w["name"]: w for w in fresh.get("workloads", [])}
    for name in sorted(baseline_families.keys() | fresh_families.keys()):
        fresh_family = fresh_families.get(name)
        if fresh_family is None:
            gate.check(
                False, f"delta.{name}", "family missing from fresh report"
            )
            continue
        ratio = float(fresh_family.get("speedup", 0.0))
        committed = baseline_families.get(name)
        if committed is None:
            floor = args.min_delta_ratio
            detail = (
                f"warm/cold {ratio:g}x (floor {floor:g}x; new family, no "
                f"committed baseline -- regenerate BENCH_delta.json)"
            )
        else:
            floor = max(
                args.min_delta_ratio,
                float(committed.get("speedup", 0.0)) * (1.0 - args.tolerance),
            )
            detail = (
                f"warm/cold {ratio:g}x "
                f"(floor {floor:g}x = max({args.min_delta_ratio:g}, "
                f"baseline {committed.get('speedup')}x - "
                f"{args.tolerance:.0%}))"
            )
        gate.check(ratio >= floor, f"delta.{name}.speedup", detail)

    # Cold iteration counts are deterministic: any drift vs the
    # committed baseline means the solver's search path changed.
    baseline_iterations = {
        f"{w['name']}/{c['label']}": c["iterations"]
        for w in baseline.get("workloads", [])
        for c in w.get("cases", [])
    }
    drifted: List[str] = []
    seen: set = set()
    for name, fresh_family in fresh_families.items():
        for case in fresh_family.get("cases", []):
            key = f"{name}/{case['label']}"
            expected = baseline_iterations.get(key)
            if expected is None:
                continue
            seen.add(key)
            if case["iterations"] != expected:
                drifted.append(f"{key}: {expected} -> {case['iterations']}")
    uncovered = len(baseline_iterations) - len(seen)
    if uncovered and baseline_iterations:
        gate.note(
            f"delta.iteration_parity: {uncovered} of "
            f"{len(baseline_iterations)} committed case labels not in "
            f"the fresh report (smaller smoke grid)"
        )
    if baseline_iterations and not seen:
        gate.check(
            False, "delta.iteration_parity",
            "no case labels in common with the committed baselines -- "
            "grid renamed? regenerate and commit BENCH_delta.json",
        )
    else:
        gate.check(
            not drifted,
            "delta.iteration_parity",
            (
                f"{len(seen)} case labels match the committed "
                f"iteration counts"
                if not drifted
                else f"iteration counts drifted: {', '.join(drifted)}"
            ),
        )


def check_fleet(gate: Gate, baseline: Dict, fresh: Dict, args) -> None:
    gate.check(
        fresh.get("results_identical") is True,
        "fleet.results_identical",
        "fleet envelopes byte-identical to offline Engine.run_batch",
    )
    gate.check(
        fresh.get("zero_duplicate_solves") is True,
        "fleet.zero_duplicate_solves",
        f"workers saw {fresh.get('worker_forwards')} forwards for "
        f"{fresh.get('unique_cases')} unique problems "
        f"({fresh.get('stream_requests')} requests streamed)",
    )
    ratio = float(fresh.get("throughput_ratio", 0.0))
    gate.check(
        ratio >= args.min_fleet_ratio,
        "fleet.throughput_ratio",
        f"coordinator over {fresh.get('workers')} workers at {ratio:g}x "
        f"single-instance throughput on the duplicate-heavy stream "
        f"(floor {args.min_fleet_ratio:g}x; "
        f"baseline {baseline.get('throughput_ratio', '?')}x)",
    )
    shed_total = int(fresh.get("dedup", {}).get("shed_total", 0))
    gate.check(
        shed_total == 0,
        "fleet.no_shedding",
        f"{shed_total} requests shed during the benchmark stream "
        f"(the stream must fit the default queue limits)",
    )


CHECKERS = {
    "engine": ("bench-engine", check_engine),
    "solver": ("bench-solver", check_solver),
    "service": ("bench-service", check_service),
    "micro": ("bench-micro", check_micro),
    "delta": ("bench-delta", check_delta),
    "fleet": ("bench-fleet", check_fleet),
}


def resolve_pair(
    name: str, args
) -> Tuple[Optional[Path], Optional[Path]]:
    baseline = getattr(args, f"baseline_{name}")
    fresh = getattr(args, f"fresh_{name}")
    if baseline is None and args.baseline_dir is not None:
        baseline = args.baseline_dir / FILENAMES[name]
    if fresh is None and args.fresh_dir is not None:
        fresh = args.fresh_dir / FILENAMES[name]
    return baseline, fresh


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", type=Path, default=None,
                        help="directory holding the committed BENCH_*.json")
    parser.add_argument("--fresh-dir", type=Path, default=None,
                        help="directory holding the freshly generated reports")
    for name in REPORTS:
        parser.add_argument(f"--baseline-{name}", type=Path, default=None,
                            help=f"explicit baseline {FILENAMES[name]}")
        parser.add_argument(f"--fresh-{name}", type=Path, default=None,
                            help=f"explicit fresh {FILENAMES[name]}")
    parser.add_argument(
        "--tolerance", type=float, default=0.45,
        help="allowed relative drop of a family's incremental/scratch "
             "speedup vs its committed baseline (default 0.45)",
    )
    parser.add_argument(
        "--min-family-ratio", type=float, default=1.2,
        help="hard floor for every family's incremental/scratch speedup "
             "(default 1.2: incremental must actively beat scratch; "
             "committed baselines sit above 2.6x)",
    )
    parser.add_argument(
        "--min-hit-speedup", type=float, default=25.0,
        help="hard floor for the engine cache's warm-hit speedup "
             "(default 25x)",
    )
    parser.add_argument(
        "--min-service-ratio", type=float, default=1.0,
        help="hard floor for served /batch throughput over serial "
             "run_batch (default 1.0)",
    )
    parser.add_argument(
        "--min-delta-ratio", type=float, default=2.0,
        help="hard floor for the warm/cold delta re-solve speedup on "
             "every family (default 2.0: a warm single-edit re-solve "
             "must at least halve the cold solve time)",
    )
    parser.add_argument(
        "--min-fleet-ratio", type=float, default=1.5,
        help="hard floor for coordinator-over-workers throughput vs a "
             "single server instance on the duplicate-heavy fleet "
             "stream (default 1.5)",
    )
    parser.add_argument(
        "--min-kernel-ratio", type=float, default=1.0,
        help="hard floor for every micro-bench kernel's speedup over "
             "its reference implementation (default 1.0: the optimised "
             "kernel may never lose to the formulation it replaced)",
    )
    args = parser.parse_args(argv)

    gate = Gate()
    compared = 0
    for name in REPORTS:
        baseline_path, fresh_path = resolve_pair(name, args)
        expected_kind, checker = CHECKERS[name]
        if baseline_path is None and fresh_path is None:
            gate.note(f"{name}: no paths given, skipped")
            continue
        missing = [
            str(p) for p in (baseline_path, fresh_path)
            if p is None or not p.is_file()
        ]
        if missing:
            gate.check(
                False, f"{name}.reports",
                f"missing report file(s): {', '.join(missing)}",
            )
            continue
        try:
            baseline = load_report(baseline_path, expected_kind)
            fresh = load_report(fresh_path, expected_kind)
        except (OSError, ValueError) as exc:
            gate.check(False, f"{name}.reports", str(exc))
            continue
        checker(gate, baseline, fresh, args)
        compared += 1

    if compared == 0 and not gate.failed:
        print("check_bench: nothing to compare "
              "(give --baseline-dir/--fresh-dir or explicit paths)",
              file=sys.stderr)
        return 2
    print("\n".join(gate.lines))
    if gate.failed:
        print("\ncheck_bench: perf trajectory REGRESSED", file=sys.stderr)
        return 1
    print(f"\ncheck_bench: {compared} reports within the gate")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
