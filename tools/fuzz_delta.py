#!/usr/bin/env python3
"""Seeded differential fuzz harness for warm-start delta solves.

Two modes, both deterministic per seed and both *differential* -- every
check compares two independent computations of the same answer:

* ``--mode=delta`` (default).  Random problems, random **edit chains**
  (no-op deadlines, small compounding moves, deadline-crossing jumps,
  wordlength rewrites, resource-count edits).  Each step runs
  ``Engine.run_delta`` against the previous step's replay artifact and
  asserts the envelope is canonical-byte identical to a cold
  ``execute_request`` of the edited problem -- the parity contract of
  ``docs/architecture.md`` (Delta solves).  Because chains re-edit the
  *edited* problem of the previous step, a single run exercises every
  strategy: ``noop``, ``replay``, ``resumed``, ``diverged``,
  ``scratch`` and ``cache``.

* ``--mode=within-solve``.  Random problems and solver-option variants;
  asserts ``run_pipeline(..., mode="incremental")`` and
  ``mode="scratch"`` produce byte-identical canonical datapaths (and
  identical ``InfeasibleError`` messages) -- the recomputation-parity
  contract ``REPRO_SOLVER`` rides on.

Failures are **shrunk** (greedy edit dropping against a fresh engine)
and written as self-contained ``delta-fuzz-repro`` JSON files; re-run
one with ``--repro FILE``.  CI runs both modes on fixed seeds (see
``.github/workflows/ci.yml``); ``tests/test_delta_fuzz.py`` drives the
library API over the committed corpus seed, and
``benchmarks/bench_delta.py`` reuses the repro-file writer when its
parity gate trips.

Usage::

    PYTHONPATH=src python tools/fuzz_delta.py --seed 2001 \\
        --problems 50 --steps 10 --out-dir fuzz-repros
    PYTHONPATH=src python tools/fuzz_delta.py --mode=within-solve \\
        --seed 2001 --problems 40
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

try:
    import repro  # noqa: F401 -- probe only
except ImportError:  # pragma: no cover -- direct CLI use without PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.delta import (
    ConstraintEdit,
    DeadlineEdit,
    Edit,
    WordlengthEdit,
    apply_edits,
)
from repro.core.problem import InfeasibleError, Problem
from repro.core.solver import DPAllocOptions, run_pipeline
from repro.engine import (
    AllocationRequest,
    DeltaRequest,
    Engine,
    execute_request,
)
from repro.experiments.common import relaxed_constraint
from repro.gen.tgff import random_sequencing_graph
from repro.io import edit_from_dict, edit_to_dict, problem_from_dict, problem_to_dict

__all__ = [
    "FuzzFailure",
    "FuzzReport",
    "random_edits",
    "random_problem",
    "run_delta_fuzz",
    "run_repro_file",
    "run_within_solve_fuzz",
    "write_repro_file",
]

REPRO_KIND = "delta-fuzz-repro"

# Telemetry keys stripped before canonical comparison -- must match
# AllocationResult.canonical_dict (within-solve mode compares raw
# datapaths, which have no canonical_dict of their own).
_TELEMETRY_KEYS = ("pass_ms", "cache_hits", "cache_misses", "cache_evicted")


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------

@dataclass
class FuzzFailure:
    """One parity violation, shrunk and persisted for replay."""

    mode: str
    problem_index: int
    step_index: int
    detail: str
    edits: Tuple[Edit, ...] = ()
    shrunk: bool = False
    repro_path: Optional[str] = None


@dataclass
class FuzzReport:
    """Outcome of one fuzz run (either mode)."""

    mode: str
    seed: int
    problems: int
    steps: int = 0
    strategies: Dict[str, int] = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        strategies = ", ".join(
            f"{name}={count}"
            for name, count in sorted(self.strategies.items())
        ) or "none"
        return (
            f"fuzz[{self.mode}] seed={self.seed}: {self.problems} problems, "
            f"{self.steps} steps, {len(self.failures)} failures "
            f"(strategies: {strategies})"
        )


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------

def random_problem(rng: random.Random, max_ops: int = 24) -> Problem:
    """One random multiple-wordlength problem with a relaxed deadline."""
    num_ops = rng.randrange(6, max_ops + 1)
    graph = random_sequencing_graph(num_ops, seed=rng.randrange(1 << 30))
    scratch = Problem(graph, latency_constraint=1_000_000)
    lam_min = scratch.minimum_latency()
    relaxation = rng.choice((0.0, 0.0, 0.05, 0.1, 0.2, 0.3, 0.4))
    return scratch.with_latency_constraint(
        relaxed_constraint(lam_min, relaxation)
    )


def _random_deadline(rng: random.Random, current: int) -> DeadlineEdit:
    roll = rng.random()
    if roll < 0.15:
        return DeadlineEdit(current)  # explicit no-op
    if roll < 0.60:
        return DeadlineEdit(max(1, current + rng.randrange(-3, 4)))
    # Deadline-crossing jump: far enough to skip past recorded accepts
    # or to tighten beyond several recorded iterations at once.
    jump = rng.choice((-1, 1)) * rng.randrange(5, 30)
    return DeadlineEdit(max(1, current + jump))


def random_edits(
    rng: random.Random, problem: Problem, max_edits: int = 3
) -> Tuple[Edit, ...]:
    """A 1..max_edits edit sequence valid against ``problem``.

    Deadline edits dominate (they exercise the verified replay walk);
    wordlength and constraint edits exercise the dirty-footprint
    scratch fallback and keep the chain's problem content moving.
    """
    names = problem.graph.names
    kinds = sorted({op.resource_kind for op in problem.graph.operations})
    edits: List[Edit] = []
    current_lam = problem.latency_constraint
    for _ in range(rng.randrange(1, max_edits + 1)):
        roll = rng.random()
        if roll < 0.6 or not names:
            edit: Edit = _random_deadline(rng, current_lam)
            current_lam = edit.latency
        elif roll < 0.8:
            name = rng.choice(names)
            arity = len(problem.graph.operation(name).operand_widths)
            edit = WordlengthEdit(
                name, tuple(rng.randrange(4, 17) for _ in range(arity))
            )
        else:
            edit = ConstraintEdit(
                rng.choice(kinds), rng.choice((None, 1, 2, 3, 4))
            )
        edits.append(edit)
    return tuple(edits)


def _random_options(rng: random.Random) -> DPAllocOptions:
    """A solver-option variant for within-solve differential runs."""
    return DPAllocOptions(
        grow=rng.random() < 0.8,
        shrink=rng.random() < 0.8,
        constraint=rng.choice(("eqn3", "eqn3", "eqn2")),
        mode=rng.choice(("min-units", "min-units", "asap")),
        selector=rng.choice(("min-edge-loss", "min-edge-loss", "name-order")),
        blind_refinement=rng.random() < 0.2,
        trace=rng.random() < 0.3,
    )


# ----------------------------------------------------------------------
# repro files
# ----------------------------------------------------------------------

def write_repro_file(
    out_dir: Path,
    name: str,
    *,
    mode: str,
    seed: int,
    problem: Problem,
    edits: Sequence[Edit] = (),
    options: Optional[Mapping[str, Any]] = None,
    warm: Any = None,
    cold: Any = None,
    shrunk: bool = False,
) -> Path:
    """Persist one failure as a self-contained, replayable JSON file."""
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / name
    payload = {
        "kind": REPRO_KIND,
        "mode": mode,
        "seed": seed,
        "problem": problem_to_dict(problem),
        "edits": [edit_to_dict(edit) for edit in edits],
        "options": dict(options or {}),
        "warm": warm,
        "cold": cold,
        "shrunk": shrunk,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def run_repro_file(path: Path) -> Optional[str]:
    """Re-run one repro file; return a mismatch description or ``None``."""
    payload = json.loads(Path(path).read_text())
    if payload.get("kind") != REPRO_KIND:
        raise ValueError(f"{path}: not a {REPRO_KIND} file")
    problem = problem_from_dict(payload["problem"])
    edits = tuple(edit_from_dict(e) for e in payload["edits"])
    options = payload.get("options") or None
    if payload.get("mode") == "within-solve":
        return _within_solve_mismatch(problem, DPAllocOptions(**(options or {})))
    return _delta_mismatch(problem, edits, options)


# ----------------------------------------------------------------------
# delta mode
# ----------------------------------------------------------------------

def _cold_canonical(
    problem: Problem, options: Optional[Mapping[str, Any]]
) -> str:
    """Canonical bytes of a cold, engine-free solve of ``problem``."""
    request = AllocationRequest(
        problem=problem, allocator="dpalloc", options=dict(options or {})
    )
    return execute_request(request).canonical_json()


def _delta_mismatch(
    base: Problem,
    edits: Sequence[Edit],
    options: Optional[Mapping[str, Any]],
) -> Optional[str]:
    """Self-contained check: prime a fresh engine, run one delta step.

    Returns ``None`` on parity, else a description.  Used both to
    confirm a chained failure reproduces from scratch and as the
    shrinking oracle.
    """
    engine = Engine()
    opts = dict(options or {})
    engine.run_delta(DeltaRequest(edits=(), base_problem=base, options=opts))
    warm = engine.run_delta(
        DeltaRequest(edits=tuple(edits), base_problem=base, options=opts)
    )
    try:
        edited = apply_edits(base, edits)
    except (KeyError, TypeError, ValueError) as exc:
        return f"apply_edits raised {type(exc).__name__}: {exc}"
    cold = _cold_canonical(edited, options)
    if warm.canonical_json() != cold:
        strategy = (warm.delta or {}).get("strategy")
        return f"warm ({strategy}) != cold"
    return None


def _shrink_edits(
    base: Problem,
    edits: Sequence[Edit],
    options: Optional[Mapping[str, Any]],
) -> Tuple[Tuple[Edit, ...], bool]:
    """Greedily drop edits while the self-contained failure persists."""
    if _delta_mismatch(base, edits, options) is None:
        # The failure needs the chain's accumulated artifact state and
        # does not reproduce from a fresh prime; keep the full sequence.
        return tuple(edits), False
    current = list(edits)
    changed = True
    while changed and len(current) > 1:
        changed = False
        for index in range(len(current)):
            candidate = current[:index] + current[index + 1:]
            if _delta_mismatch(base, candidate, options) is not None:
                current = candidate
                changed = True
                break
    return tuple(current), True


def run_delta_fuzz(
    seed: int,
    problems: int,
    steps: int,
    out_dir: Optional[Path] = None,
    options: Optional[Mapping[str, Any]] = None,
    max_ops: int = 24,
) -> FuzzReport:
    """Differential fuzz of ``Engine.run_delta`` vs cold solves.

    For each of ``problems`` random problems, runs a chain of ``steps``
    delta requests (each re-editing the previous step's edited problem,
    with the previous problem supplied as ``base_problem`` so the chain
    never starves on a missing artifact) and asserts canonical-byte
    parity with a cold solve at every step.
    """
    rng = random.Random(seed)
    report = FuzzReport(mode="delta", seed=seed, problems=problems)
    for problem_index in range(problems):
        engine = Engine()
        base = random_problem(rng, max_ops=max_ops)
        for step_index in range(steps):
            edits = random_edits(rng, base)
            warm = engine.run_delta(
                DeltaRequest(
                    edits=edits,
                    base_problem=base,
                    options=dict(options or {}),
                )
            )
            strategy = str((warm.delta or {}).get("strategy"))
            report.strategies[strategy] = report.strategies.get(strategy, 0) + 1
            if (warm.delta or {}).get("primed"):
                report.strategies["(primed)"] = (
                    report.strategies.get("(primed)", 0) + 1
                )
            report.steps += 1
            edited = apply_edits(base, edits)
            cold = _cold_canonical(edited, options)
            if warm.canonical_json() != cold:
                shrunk_edits, shrunk = _shrink_edits(base, edits, options)
                failure = FuzzFailure(
                    mode="delta",
                    problem_index=problem_index,
                    step_index=step_index,
                    detail=f"strategy {strategy}: warm != cold",
                    edits=shrunk_edits,
                    shrunk=shrunk,
                )
                if out_dir is not None:
                    check = _delta_mismatch(base, shrunk_edits, options)
                    failure.repro_path = str(write_repro_file(
                        out_dir,
                        f"repro-delta-p{problem_index}-s{step_index}.json",
                        mode="delta",
                        seed=seed,
                        problem=base,
                        edits=shrunk_edits,
                        options=options,
                        warm=json.loads(warm.canonical_json()),
                        cold=json.loads(cold),
                        shrunk=shrunk and check is not None,
                    ))
                report.failures.append(failure)
                break  # chain state is suspect; move to the next problem
            base = edited
    return report


# ----------------------------------------------------------------------
# within-solve mode
# ----------------------------------------------------------------------

def _canonical_solve(problem: Problem, opts: DPAllocOptions, mode: str) -> str:
    """Canonical bytes of one ``run_pipeline`` call (or its error)."""
    from repro.io import datapath_to_dict

    try:
        datapath = run_pipeline(problem, opts, mode=mode)
    except InfeasibleError as exc:
        return json.dumps({"infeasible": str(exc)}, sort_keys=True)
    payload = datapath_to_dict(datapath)
    for event in payload.get("trace", ()):
        for key in _TELEMETRY_KEYS:
            event.pop(key, None)
    return json.dumps(payload, sort_keys=True)


def _within_solve_mismatch(
    problem: Problem, opts: DPAllocOptions
) -> Optional[str]:
    incremental = _canonical_solve(problem, opts, "incremental")
    scratch = _canonical_solve(problem, opts, "scratch")
    if incremental != scratch:
        return "incremental != scratch"
    return None


def run_within_solve_fuzz(
    seed: int,
    problems: int,
    out_dir: Optional[Path] = None,
    max_ops: int = 24,
) -> FuzzReport:
    """Differential fuzz of incremental vs scratch recomputation modes."""
    rng = random.Random(seed)
    report = FuzzReport(mode="within-solve", seed=seed, problems=problems)
    for problem_index in range(problems):
        problem = random_problem(rng, max_ops=max_ops)
        opts = _random_options(rng)
        report.steps += 1
        key = f"mode={opts.mode}"
        report.strategies[key] = report.strategies.get(key, 0) + 1
        detail = _within_solve_mismatch(problem, opts)
        if detail is None:
            continue
        failure = FuzzFailure(
            mode="within-solve",
            problem_index=problem_index,
            step_index=0,
            detail=detail,
        )
        if out_dir is not None:
            from dataclasses import asdict

            failure.repro_path = str(write_repro_file(
                out_dir,
                f"repro-within-p{problem_index}.json",
                mode="within-solve",
                seed=seed,
                problem=problem,
                options=asdict(opts),
                warm=json.loads(_canonical_solve(problem, opts, "incremental")),
                cold=json.loads(_canonical_solve(problem, opts, "scratch")),
                shrunk=False,
            ))
        report.failures.append(failure)
    return report


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="differential fuzz harness for delta solves"
    )
    parser.add_argument(
        "--mode", choices=("delta", "within-solve"), default="delta"
    )
    parser.add_argument("--seed", type=int, default=2001)
    parser.add_argument(
        "--problems", type=int, default=50,
        help="random problems per run (delta mode chains steps per problem)",
    )
    parser.add_argument(
        "--steps", type=int, default=10,
        help="delta-mode chain length per problem",
    )
    parser.add_argument(
        "--max-ops", type=int, default=24,
        help="upper bound on random problem size |O|",
    )
    parser.add_argument(
        "--out-dir", type=Path, default=Path("fuzz-repros"),
        help="directory for shrunk failure repro files",
    )
    parser.add_argument(
        "--repro", type=Path, default=None,
        help="re-run one delta-fuzz-repro JSON file instead of fuzzing",
    )
    args = parser.parse_args(argv)

    if args.repro is not None:
        detail = run_repro_file(args.repro)
        if detail is None:
            print(f"{args.repro}: parity holds (fixed?)")
            return 0
        print(f"{args.repro}: still failing -- {detail}")
        return 1

    if args.mode == "delta":
        report = run_delta_fuzz(
            args.seed, args.problems, args.steps,
            out_dir=args.out_dir, max_ops=args.max_ops,
        )
    else:
        report = run_within_solve_fuzz(
            args.seed, args.problems,
            out_dir=args.out_dir, max_ops=args.max_ops,
        )
    print(report.summary())
    for failure in report.failures:
        where = f"problem {failure.problem_index} step {failure.step_index}"
        repro = f" repro: {failure.repro_path}" if failure.repro_path else ""
        print(f"  FAIL {where}: {failure.detail}{repro}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
