#!/usr/bin/env python
"""CI entry for reprolint: self-lint the repo against the baseline.

Runs ``repro lint src/repro`` from the repository root with the checked
baseline (``tools/reprolint-baseline.json``), so the job fails exactly
when the tree gains a finding that is neither suppressed inline (with a
reason) nor grandfathered.  Works without an installed package -- the
repo's ``src/`` is prepended to ``sys.path`` -- and without the runtime
dependencies: the lint package is stdlib-only, so it is loaded through
parent-package stubs that skip ``repro/__init__`` (which would import
numpy/scipy/networkx, absent on the bare reprolint CI runner).

Run with::

    python tools/run_lint.py [extra repro-lint flags ...]

Exit status: 0 clean, 1 new findings, 2 usage/internal error -- the
same semantics as ``repro lint`` (see docs/static-analysis.md).
"""

from __future__ import annotations

import importlib
import os
import sys
import types
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _import_lint():
    """Import ``repro.devtools.lint`` without running ``repro/__init__``.

    The lint package is pure stdlib, but a plain import would first
    execute ``repro/__init__.py`` and transitively pull in numpy, scipy
    and networkx.  Pre-registering lightweight parent-package stubs (a
    bare module with only ``__path__``) lets the import system resolve
    the submodule without executing the heavyweight initialisers, so
    this entry works on a runner with no installed dependencies.  When
    ``repro`` is already imported (e.g. under pytest) the real modules
    are left untouched.
    """
    src = REPO / "src"
    for name, path in (
        ("repro", src / "repro"),
        ("repro.devtools", src / "repro" / "devtools"),
    ):
        if name not in sys.modules:
            stub = types.ModuleType(name)
            stub.__path__ = [str(path)]
            sys.modules[name] = stub
    importlib.import_module("repro.devtools.lint")
    return sys.modules["repro.devtools.lint"]


def main(argv=None) -> int:
    sys.path.insert(0, str(REPO / "src"))
    os.chdir(REPO)  # baseline + finding paths are repo-root relative
    lint_main = _import_lint().main

    args = list(sys.argv[1:] if argv is None else argv)
    if not any(a.startswith("--baseline") or a == "--no-baseline"
               for a in args):
        args = ["--baseline", "tools/reprolint-baseline.json", *args]
    # CI default: a stale baseline entry fails the job so the file
    # shrinks as findings are fixed.  Maintenance commands that edit
    # state themselves run without the extra failure mode.
    maintenance = {"--write-baseline", "--prune-baseline",
                   "--write-effects", "--check-effects",
                   "--list-rules", "--explain"}
    if "--fail-stale" not in args and not maintenance.intersection(args):
        args = ["--fail-stale", *args]
    # No explicit path means the lint CLI's default: src/repro.
    return lint_main(args)


if __name__ == "__main__":
    raise SystemExit(main())
