#!/usr/bin/env python
"""CI entry for reprolint: self-lint the repo against the baseline.

Runs ``repro lint src/repro`` from the repository root with the checked
baseline (``tools/reprolint-baseline.json``), so the job fails exactly
when the tree gains a finding that is neither suppressed inline (with a
reason) nor grandfathered.  Works without an installed package -- the
repo's ``src/`` is prepended to ``sys.path``.

Run with::

    python tools/run_lint.py [extra repro-lint flags ...]

Exit status: 0 clean, 1 new findings, 2 usage/internal error -- the
same semantics as ``repro lint`` (see docs/static-analysis.md).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    sys.path.insert(0, str(REPO / "src"))
    os.chdir(REPO)  # baseline + finding paths are repo-root relative
    from repro.devtools.lint import main as lint_main

    args = list(sys.argv[1:] if argv is None else argv)
    if not any(a.startswith("--baseline") or a == "--no-baseline"
               for a in args):
        args = ["--baseline", "tools/reprolint-baseline.json", *args]
    # No explicit path means the lint CLI's default: src/repro.
    return lint_main(args)


if __name__ == "__main__":
    raise SystemExit(main())
