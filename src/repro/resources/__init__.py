"""Resource-wordlength types, latency/area models, and set extraction."""

from .area import AreaModel, SonicAreaModel, TableAreaModel, check_monotone_area
from .extraction import (
    cheapest_covering,
    covering_resources,
    dedicated_resource,
    extract_resource_set,
    group_requirement,
)
from .latency import (
    LatencyModel,
    SonicLatencyModel,
    TableLatencyModel,
    check_monotone,
)
from .types import ResourceType

__all__ = [
    "AreaModel",
    "LatencyModel",
    "ResourceType",
    "SonicAreaModel",
    "SonicLatencyModel",
    "TableAreaModel",
    "TableLatencyModel",
    "cheapest_covering",
    "check_monotone",
    "check_monotone_area",
    "covering_resources",
    "dedicated_resource",
    "extract_resource_set",
    "group_requirement",
]
