"""Area models: implementation cost of a resource-wordlength type.

The paper evaluates area "assuming the area model presented in [5]"
(Constantinides et al., Electronics Letters 36(17), 2000), which is not
reprinted in the paper.  We reconstruct the standard bit-parallel model
for the SONIC FPGA platform:

* an ``n x m``-bit array multiplier occupies ``n * m`` area units;
* an ``n``-bit ripple-carry adder occupies ``n`` area units.

The experiments only depend on area scaling multiplicatively with
multiplier operand widths and (roughly) linearly for adders -- the
relative penalties/premiums of Figs. 3-4 are invariant to the unit.  The
model is pluggable via :class:`TableAreaModel` for other technologies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence, Tuple

from .types import ResourceType

__all__ = ["AreaModel", "SonicAreaModel", "TableAreaModel", "check_monotone_area"]

AreaFn = Callable[[Tuple[int, ...]], float]


class AreaModel:
    """Base class: area cost of a resource-wordlength type."""

    def area(self, resource: ResourceType) -> float:
        raise NotImplementedError

    def __call__(self, resource: ResourceType) -> float:
        return self.area(resource)


@dataclass(frozen=True)
class SonicAreaModel(AreaModel):
    """Reconstructed area model of ref. [5]: ``n*m`` multiplier, ``n`` adder."""

    mul_unit: float = 1.0
    add_unit: float = 1.0

    def area(self, resource: ResourceType) -> float:
        if resource.kind == "mul":
            n, m = resource.widths
            return self.mul_unit * n * m
        if resource.kind == "add":
            (n,) = resource.widths
            return self.add_unit * n
        raise KeyError(f"SonicAreaModel: unknown resource kind {resource.kind!r}")


@dataclass(frozen=True)
class TableAreaModel(AreaModel):
    """Area from per-kind callables; for tests and custom platforms."""

    table: Dict[str, AreaFn] = field(default_factory=dict)

    def area(self, resource: ResourceType) -> float:
        try:
            fn = self.table[resource.kind]
        except KeyError:
            raise KeyError(
                f"TableAreaModel: no entry for kind {resource.kind!r}"
            ) from None
        cost = float(fn(resource.widths))
        if cost <= 0:
            raise ValueError(f"area of {resource} must be positive, got {cost}")
        return cost


def check_monotone_area(model: AreaModel, resources: Sequence[ResourceType]) -> None:
    """Raise ``ValueError`` if a dominating resource is cheaper than the dominated.

    Both the heuristic's cheapest-cover selection and the baselines assume
    that widening a resource never reduces its area.
    """
    for a in resources:
        for b in resources:
            if a.dominates(b) and model.area(a) < model.area(b):
                raise ValueError(
                    f"area model not monotone: {a} dominates {b} but is cheaper"
                )
