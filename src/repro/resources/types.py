"""Resource-wordlength types -- the ``R`` vertex set of the paper.

A :class:`ResourceType` is a functional-unit *type*, e.g. a ``16x16``-bit
multiplier or a ``12``-bit adder (paper section 2.1).  The datapath may
instantiate several physical units of one type; instances are represented
by the cliques produced during binding.

Coverage (the ``H`` edges of the wordlength compatibility graph) is a
componentwise comparison in the canonical requirement coordinates of the
operation kind: a resource covers an operation iff the resource kind
matches and every canonical width of the resource is at least the
corresponding canonical width of the operation.  The paper's Fig. 1 notes
that "resources can execute operations up to the wordlength of the
resource, even if implementation in a larger resource leads to a longer
latency" -- which is exactly the freedom the allocation heuristic exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..ir.ops import Operation

__all__ = ["ResourceType"]


@dataclass(frozen=True, order=True)
class ResourceType:
    """A functional-unit type characterised by kind and wordlengths.

    Attributes:
        kind: resource-kind name (``"mul"``, ``"add"``, ...).
        widths: canonical wordlength vector, e.g. ``(16, 16)`` for a
            16x16 multiplier or ``(12,)`` for a 12-bit adder.  For
            commutative two-operand kinds the convention is
            ``widths[0] >= widths[1]``.
    """

    kind: str
    widths: Tuple[int, ...]

    def __post_init__(self) -> None:
        widths = tuple(int(w) for w in self.widths)
        if not widths:
            raise ValueError("resource must have at least one width")
        if any(w <= 0 for w in widths):
            raise ValueError(f"resource widths must be positive, got {widths!r}")
        object.__setattr__(self, "widths", widths)

    def covers_requirement(self, requirement: Tuple[int, ...]) -> bool:
        """Whether this type can execute an op with the given requirement."""
        if len(requirement) != len(self.widths):
            return False
        return all(w >= r for w, r in zip(self.widths, requirement))

    def covers(self, op: Operation) -> bool:
        """Whether this resource type can execute ``op``."""
        return self.kind == op.resource_kind and self.covers_requirement(op.requirement)

    def dominates(self, other: "ResourceType") -> bool:
        """Whether every op ``other`` covers is also covered by ``self``."""
        return (
            self.kind == other.kind
            and len(self.widths) == len(other.widths)
            and all(a >= b for a, b in zip(self.widths, other.widths))
        )

    def __str__(self) -> str:
        widths = "x".join(str(w) for w in self.widths)
        return f"{widths} {self.kind}"
