"""Resource-set extraction: derive candidate ``R`` from the operation set ``O``.

Paper section 2.1: "An algorithm for extracting all possible resource
types from the set of operations is given in [5]."  Reference [5] is a
two-page letter not reprinted here, so we implement the natural complete
construction:

For every resource kind, the candidate wordlength vectors are the
cartesian grid of the canonical widths observed among the operations of
that kind (restricted to canonically-ordered vectors and to types that
cover at least one operation).  This grid is *sufficient*: the cheapest
resource able to execute any group of operations is the componentwise
maximum of their requirement vectors, whose coordinates are all observed
widths -- hence it lies in the grid.  No optimiser over ``R`` can be
improved by adding further types.

Optionally the grid is pruned of *redundant* types: a type is redundant
if another type covers a superset of the operations at no more area and
no more latency (such a type can never appear in an optimal or
heuristic-greedy solution, and dropping it shrinks every downstream
search).
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..ir.ops import Operation
from .area import AreaModel
from .latency import LatencyModel
from .types import ResourceType

__all__ = [
    "extract_resource_set",
    "covering_resources",
    "dedicated_resource",
    "group_requirement",
    "cheapest_covering",
]


def dedicated_resource(op: Operation) -> ResourceType:
    """The minimal resource type executing exactly this operation."""
    return ResourceType(op.resource_kind, op.requirement)


def group_requirement(ops: Sequence[Operation]) -> ResourceType:
    """Minimal resource type covering a group of same-kind operations."""
    if not ops:
        raise ValueError("group must be non-empty")
    kinds = {op.resource_kind for op in ops}
    if len(kinds) != 1:
        raise ValueError(f"group mixes resource kinds: {sorted(kinds)}")
    arities = {len(op.requirement) for op in ops}
    if len(arities) != 1:
        raise ValueError("group mixes requirement arities")
    widths = tuple(
        max(op.requirement[i] for op in ops) for i in range(arities.pop())
    )
    return ResourceType(kinds.pop(), widths)


def _is_canonical(widths: Tuple[int, ...]) -> bool:
    """Canonical convention: non-increasing width vector."""
    return all(widths[i] >= widths[i + 1] for i in range(len(widths) - 1))


def _grid_for_kind(ops: Sequence[Operation]) -> List[ResourceType]:
    kind = ops[0].resource_kind
    arity = len(ops[0].requirement)
    axes = [sorted({op.requirement[i] for op in ops}) for i in range(arity)]
    grid: List[ResourceType] = []
    for widths in product(*axes):
        if not _is_canonical(widths):
            continue
        candidate = ResourceType(kind, widths)
        if any(candidate.covers(op) for op in ops):
            grid.append(candidate)
    return grid


def _prune_redundant(
    resources: List[ResourceType],
    ops: Sequence[Operation],
    latency_model: LatencyModel,
    area_model: AreaModel,
) -> List[ResourceType]:
    cover: Dict[ResourceType, Set[str]] = {
        r: {op.name for op in ops if r.covers(op)} for r in resources
    }
    kept: List[ResourceType] = []
    # Deterministic order so that exact duplicates keep the smallest type.
    ordered = sorted(resources)
    for r in ordered:
        redundant = False
        for other in ordered:
            if other == r:
                continue
            if (
                cover[other] >= cover[r]
                and area_model.area(other) <= area_model.area(r)
                and latency_model.latency(other) <= latency_model.latency(r)
                and (
                    cover[other] > cover[r]
                    or area_model.area(other) < area_model.area(r)
                    or latency_model.latency(other) < latency_model.latency(r)
                    or other < r
                )
            ):
                redundant = True
                break
        if not redundant:
            kept.append(r)
    return kept


def extract_resource_set(
    ops: Iterable[Operation],
    latency_model: Optional[LatencyModel] = None,
    area_model: Optional[AreaModel] = None,
    prune: bool = True,
) -> Tuple[ResourceType, ...]:
    """All useful resource-wordlength types for the given operations.

    Args:
        ops: the operation set ``O``.
        latency_model, area_model: required when ``prune`` is true.
        prune: drop types dominated in coverage, area and latency.

    Returns:
        Sorted tuple of :class:`ResourceType`; every operation is covered
        by at least one returned type (its dedicated type survives
        pruning because nothing cheaper can cover it).
    """
    by_kind: Dict[Tuple[str, int], List[Operation]] = {}
    for op in ops:
        by_kind.setdefault((op.resource_kind, len(op.requirement)), []).append(op)

    resources: List[ResourceType] = []
    for grouped in by_kind.values():
        grid = _grid_for_kind(grouped)
        if prune:
            if latency_model is None or area_model is None:
                raise ValueError("pruning requires latency and area models")
            grid = _prune_redundant(grid, grouped, latency_model, area_model)
        resources.extend(grid)
    return tuple(sorted(resources))


def covering_resources(
    op: Operation, resources: Iterable[ResourceType]
) -> List[ResourceType]:
    """All resource types able to execute ``op``, sorted."""
    return sorted(r for r in resources if r.covers(op))


def cheapest_covering(
    requirement: ResourceType,
    resources: Iterable[ResourceType],
    area_model: AreaModel,
) -> ResourceType:
    """Cheapest resource type dominating ``requirement`` (ties: smallest type)."""
    candidates = [r for r in resources if r.dominates(requirement)]
    if not candidates:
        raise LookupError(f"no resource in set covers {requirement}")
    return min(candidates, key=lambda r: (area_model.area(r), r))
