"""Latency models: cycles a resource type needs per operation.

The paper fixes its latency model explicitly (section 1):

* every adder takes **2 cycles**, independent of wordlength;
* an ``n x m``-bit multiplier takes **ceil((n+m)/8)** cycles, an
  empirical formula derived for a fixed clock rate on the SONIC
  reconfigurable computing platform [12].

The essential structural property the algorithms rely on is
*monotonicity*: a resource that dominates another (componentwise wider)
is never faster.  :class:`TableLatencyModel` lets tests and users plug in
arbitrary per-kind latency functions; :func:`check_monotone` verifies the
property on a resource set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence, Tuple

from .types import ResourceType

__all__ = [
    "LatencyModel",
    "SonicLatencyModel",
    "TableLatencyModel",
    "check_monotone",
]

LatencyFn = Callable[[Tuple[int, ...]], int]


class LatencyModel:
    """Base class: latency (in cycles) of a resource-wordlength type."""

    def latency(self, resource: ResourceType) -> int:
        raise NotImplementedError

    def __call__(self, resource: ResourceType) -> int:
        return self.latency(resource)


@dataclass(frozen=True)
class SonicLatencyModel(LatencyModel):
    """The paper's SONIC-platform latency model.

    ``add``: constant 2 cycles.  ``mul``: ``ceil((n + m) / bits_per_cycle)``
    with ``bits_per_cycle = 8`` as in the paper.
    """

    adder_cycles: int = 2
    bits_per_cycle: int = 8

    def latency(self, resource: ResourceType) -> int:
        if resource.kind == "add":
            return self.adder_cycles
        if resource.kind == "mul":
            return max(1, math.ceil(sum(resource.widths) / self.bits_per_cycle))
        raise KeyError(f"SonicLatencyModel: unknown resource kind {resource.kind!r}")


@dataclass(frozen=True)
class TableLatencyModel(LatencyModel):
    """Latency from per-kind callables; for tests and custom platforms."""

    table: Dict[str, LatencyFn] = field(default_factory=dict)

    def latency(self, resource: ResourceType) -> int:
        try:
            fn = self.table[resource.kind]
        except KeyError:
            raise KeyError(
                f"TableLatencyModel: no entry for kind {resource.kind!r}"
            ) from None
        cycles = int(fn(resource.widths))
        if cycles < 1:
            raise ValueError(
                f"latency of {resource} must be >= 1 cycle, got {cycles}"
            )
        return cycles


def check_monotone(model: LatencyModel, resources: Sequence[ResourceType]) -> None:
    """Raise ``ValueError`` if a dominating resource is faster than the dominated.

    The refinement step of the paper deletes the *slowest* compatible
    resources of an operation to reduce its latency upper bound; this only
    converges if wider resources are never faster.
    """
    for a in resources:
        for b in resources:
            if a.dominates(b) and model.latency(a) < model.latency(b):
                raise ValueError(
                    f"latency model not monotone: {a} dominates {b} but is faster"
                )
