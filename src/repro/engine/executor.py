"""Preemptive process-per-run execution: hard per-solve deadlines.

The engine's default pool path (``Engine.run_batch`` with ``workers >
1``) enforces timeouts by *abandoning* a worker: the parent stops
waiting, but the worker keeps running (CPython cannot interrupt a
C-level solve), keeps its pool slot occupied, and the next request's
clock only starts when the parent begins waiting on it -- one hung solve
cascades into spurious timeouts for everything queued behind it.

:class:`ProcessPerRunExecutor` makes ``timeout`` a true per-solve
budget: every request runs in its **own** ``multiprocessing`` process
with a hard deadline measured from the moment that process starts.  A
blown budget kills the worker (``SIGKILL``) and reaps it, so

* later requests never inherit a stale clock or a starved slot,
* no orphan processes survive the batch, and
* a crashed worker (segfault, ``os._exit``) becomes an error envelope
  instead of a hung batch.

Envelopes are normalised exactly like every other execution mode: a
preempted run yields the same ``timeout: no result within <t>s`` error
string the pooled path produces, so ``AllocationResult.canonical_json()``
stays byte-for-byte identical across serial, pooled and process-per-run
execution.

The per-run process costs a fork per request (~ms); prefer the pool path
for huge sweeps of fast, trusted solves and the process path whenever a
strategy may hang or a hard latency bound matters.  Like the pool path,
interactively registered allocators reach workers only under the
``fork`` start method (see :mod:`repro.engine.registry`).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from collections import deque
from typing import Dict, List, Optional, Sequence

from .engine import _error_result, _timeout_result, execute_request
from .results import AllocationRequest, AllocationResult

__all__ = ["ProcessPerRunExecutor", "WorkerCrashError"]

# How long to keep waiting for an OS-level reap after SIGKILL.
_REAP_GRACE_SECONDS = 5.0
# How long a worker that already reported may take to exit on its own
# before being killed.  Deliberately small: it bounds how long result
# collection can stall the scheduler loop (and therefore how late
# another worker's deadline kill can fire).
_COLLECT_GRACE_SECONDS = 0.05
# Upper bound on one scheduler wait: keeps the loop responsive to
# deadline expiry even when no connection becomes ready.
_MAX_WAIT_SECONDS = 0.05


class WorkerCrashError(RuntimeError):
    """A worker process died before reporting a result."""


def _child_main(
    conn: multiprocessing.connection.Connection,
    request: AllocationRequest,
) -> None:
    """Entry point of one worker process: run, report, exit.

    ``execute_request`` already envelopes every solver-level failure;
    the extra guard covers infrastructure failures inside the child
    (e.g. an allocator name that does not resolve in a ``spawn`` child)
    so the parent still receives an envelope rather than an EOF.
    """
    try:
        result = execute_request(request)
    except BaseException as exc:  # noqa: BLE001 -- report, never hang
        result = _error_result(request, exc)
    try:
        conn.send(result)
    except Exception:  # noqa: BLE001 -- unpicklable result: report that
        try:
            conn.send(_error_result(request, WorkerCrashError(
                "result could not be sent back to the parent"
            )))
        except Exception:  # noqa: BLE001 -- parent will see the EOF
            pass
    finally:
        conn.close()


class _LiveRun:
    """Bookkeeping for one in-flight worker process."""

    __slots__ = ("request", "process", "conn", "deadline")

    def __init__(
        self,
        request: AllocationRequest,
        process: multiprocessing.process.BaseProcess,
        conn: multiprocessing.connection.Connection,
        deadline: Optional[float],
    ) -> None:
        self.request = request
        self.process = process
        self.conn = conn
        self.deadline = deadline


class ProcessPerRunExecutor:
    """Run allocation requests in dedicated, killable worker processes.

    Args:
        workers: maximum number of concurrently live worker processes.
            Each request still gets its own process and its own deadline
            clock (started at process start, never while queued) --
            ``workers`` only bounds parallelism.
        start_method: ``multiprocessing`` start method (``fork`` /
            ``spawn`` / ``forkserver``); ``None`` uses the platform
            default.

    Attributes:
        stats: cumulative counters across ``run``/``run_many`` calls:
            ``started``, ``completed`` (result received), ``timeouts``
            (deadline hit), ``killed`` (processes SIGKILLed), ``crashed``
            (worker died without reporting).
    """

    def __init__(
        self,
        workers: int = 1,
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._context = multiprocessing.get_context(start_method)
        self.stats: Dict[str, int] = {
            "started": 0,
            "completed": 0,
            "timeouts": 0,
            "killed": 0,
            "crashed": 0,
        }

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, request: AllocationRequest) -> AllocationResult:
        """Execute one request in its own process (hard deadline)."""
        return self.run_many([request])[0]

    def run_many(
        self, requests: Sequence[AllocationRequest]
    ) -> List[AllocationResult]:
        """Execute requests with at most ``self.workers`` live processes.

        Results align index-for-index with ``requests``; completion
        order never affects result order.  Never raises for a failed,
        hung or crashed run -- every outcome is an envelope.
        """
        results: List[Optional[AllocationResult]] = [None] * len(requests)
        pending = deque(range(len(requests)))
        live: Dict[int, _LiveRun] = {}
        try:
            while pending or live:
                while pending and len(live) < self.workers:
                    index = pending.popleft()
                    started = self._start(requests[index])
                    if isinstance(started, AllocationResult):
                        results[index] = started  # could not even start
                    else:
                        live[index] = started
                if not live:
                    continue
                self._wait(live)
                now = time.monotonic()
                for index in list(live):
                    run = live[index]
                    # Drain before checking the deadline: a result that
                    # arrived in time must not be discarded because the
                    # parent was slow to collect it (execute_request
                    # already normalised it if it ran over budget).
                    if run.conn.poll(0) or not run.process.is_alive():
                        results[index] = self._collect(run)
                        del live[index]
                    elif run.deadline is not None and now >= run.deadline:
                        results[index] = self._preempt(run)
                        del live[index]
        finally:
            # Unwind on an unexpected error: never leak worker processes.
            for run in live.values():
                self._kill(run)
        assert all(r is not None for r in results)
        return list(results)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # scheduling internals
    # ------------------------------------------------------------------
    def _start(self, request: AllocationRequest) -> "_LiveRun | AllocationResult":
        """Fork one worker; an un-startable request envelopes the error."""
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_child_main,
            args=(child_conn, request),
            daemon=True,  # the OS reaps strays if the parent dies first
        )
        try:
            process.start()
        except Exception as exc:  # noqa: BLE001 -- e.g. unpicklable request
            parent_conn.close()
            child_conn.close()
            return _error_result(request, exc)
        child_conn.close()  # parent keeps only the read end: EOF works
        self.stats["started"] += 1
        deadline = (
            time.monotonic() + request.timeout
            if request.timeout is not None
            else None
        )
        return _LiveRun(request, process, parent_conn, deadline)

    def _wait(self, live: Dict[int, _LiveRun]) -> None:
        """Block until a worker reports, dies, or a deadline nears."""
        now = time.monotonic()
        timeout = _MAX_WAIT_SECONDS
        for run in live.values():
            if run.deadline is not None:
                timeout = min(timeout, max(0.0, run.deadline - now))
        # Sentinels wake the wait on process death (crash without send).
        waitables = [run.conn for run in live.values()]
        waitables += [run.process.sentinel for run in live.values()]
        multiprocessing.connection.wait(waitables, timeout=timeout)

    def _collect(self, run: _LiveRun) -> AllocationResult:
        """Reap a finished worker and return its envelope."""
        result: Optional[AllocationResult] = None
        try:
            if run.conn.poll(0):
                received = run.conn.recv()
                if isinstance(received, AllocationResult):
                    result = received
        except (EOFError, OSError):
            pass
        except Exception as exc:  # noqa: BLE001 -- torn/unpicklable payload
            result = _error_result(run.request, exc)
        # Short grace only: this runs inside the scheduler loop, and a
        # long blocking join here would delay deadline kills of OTHER
        # live workers.  A worker that reported but lingers past the
        # grace (e.g. a plugin allocator stuck in cleanup) is killed --
        # its result is already in hand, and the no-orphan guarantee
        # covers it too.
        run.process.join(_COLLECT_GRACE_SECONDS)
        self._kill(run)
        if result is None:
            self.stats["crashed"] += 1
            result = _error_result(run.request, WorkerCrashError(
                f"worker exited with code {run.process.exitcode} "
                f"before reporting a result"
            ))
        else:
            self.stats["completed"] += 1
        return result

    def _preempt(self, run: _LiveRun) -> AllocationResult:
        """Kill a worker whose deadline expired; envelope the timeout."""
        self._kill(run)
        self.stats["timeouts"] += 1
        return _timeout_result(run.request)

    def _kill(self, run: _LiveRun) -> None:
        if run.process.is_alive():
            run.process.kill()
            self.stats["killed"] += 1
            run.process.join(_REAP_GRACE_SECONDS)
        else:
            run.process.join(0)
        run.conn.close()
