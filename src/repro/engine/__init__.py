"""repro.engine -- the platform layer over every allocation strategy.

One registry (:func:`register_allocator` / :func:`get_allocator` /
:func:`allocator_names`), one request/result envelope
(:class:`AllocationRequest` / :class:`AllocationResult`), and one runner
(:class:`Engine`) with serial and parallel batch execution, per-run
timeouts, and an optional on-disk result cache keyed by
``Problem.fingerprint()``.

Typical use::

    from repro.engine import AllocationRequest, Engine

    engine = Engine(cache_dir=".repro-cache")
    result = engine.run(AllocationRequest(problem, "dpalloc"))
    if result.ok:
        print(result.datapath.summary())
    else:
        print(result.error)

    batch = engine.run_batch(
        [AllocationRequest(p, name) for p in problems for name in names],
        workers=4,
    )
"""

from .engine import Engine, execute_request
from .registry import (
    Allocator,
    UnknownAllocatorError,
    allocator_names,
    get_allocator,
    register_allocator,
    unregister_allocator,
)
from .results import AllocationRequest, AllocationResult

__all__ = [
    "Allocator",
    "AllocationRequest",
    "AllocationResult",
    "Engine",
    "UnknownAllocatorError",
    "allocator_names",
    "execute_request",
    "get_allocator",
    "register_allocator",
    "unregister_allocator",
]
