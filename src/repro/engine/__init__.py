"""repro.engine -- the platform layer over every allocation strategy.

One registry (:func:`register_allocator` / :func:`get_allocator` /
:func:`allocator_names`), one request/result envelope
(:class:`AllocationRequest` / :class:`AllocationResult`), and one runner
(:class:`Engine`) with serial and parallel batch execution, per-run
timeouts, and an optional on-disk result cache keyed by
``Problem.fingerprint()``.

Typical use::

    from repro.engine import AllocationRequest, Engine

    engine = Engine(cache_dir=".repro-cache")
    result = engine.run(AllocationRequest(problem, "dpalloc"))
    if result.ok:
        print(result.datapath.summary())
    else:
        print(result.error)

    batch = engine.run_batch(
        [AllocationRequest(p, name) for p in problems for name in names],
        workers=4,
    )

Scaling surfaces on top of the engine:

* ``Engine(executor="process")`` -- preemptive process-per-run
  execution with hard per-solve deadlines
  (:mod:`repro.engine.executor`);
* :mod:`repro.engine.sharding` -- partition a sweep by
  ``Problem.fingerprint()`` into shard manifests, run them anywhere,
  merge the envelope files back deterministically;
* ``Engine(cache_dir=..., cache_max_mb=...)`` -- result-cache lifecycle
  (manifest, ``cache_stats()``, LRU eviction;
  :mod:`repro.engine.cache`);
* ``Engine.run_delta(DeltaRequest(...))`` -- warm-start re-solves of
  edited problems by verified replay of a recorded base solve
  (:mod:`repro.engine.replay`, :mod:`repro.core.delta`), canonical-byte
  identical to a cold solve.
"""

from .backend import Backend
from .cache import ResultCache
from .engine import (
    EXECUTORS,
    Engine,
    content_key_from_fingerprint,
    execute_request,
    request_content_key,
    versioned_content_key,
)
from .executor import ProcessPerRunExecutor
from .registry import (
    Allocator,
    UnknownAllocatorError,
    allocator_names,
    get_allocator,
    register_allocator,
    unregister_allocator,
)
from .results import (
    PRIORITY_CLASSES,
    AllocationRequest,
    AllocationResult,
    DeltaRequest,
)
from .sharding import (
    ShardManifest,
    load_shard_manifest,
    merge_shard_results,
    partition_requests,
    run_shard,
    shard_of,
    write_shard_manifests,
)

__all__ = [
    "Allocator",
    "AllocationRequest",
    "AllocationResult",
    "Backend",
    "DeltaRequest",
    "EXECUTORS",
    "Engine",
    "PRIORITY_CLASSES",
    "ProcessPerRunExecutor",
    "ResultCache",
    "ShardManifest",
    "UnknownAllocatorError",
    "allocator_names",
    "content_key_from_fingerprint",
    "execute_request",
    "get_allocator",
    "load_shard_manifest",
    "merge_shard_results",
    "partition_requests",
    "register_allocator",
    "request_content_key",
    "run_shard",
    "shard_of",
    "unregister_allocator",
    "versioned_content_key",
    "write_shard_manifests",
]
