"""Request/result envelopes shared by every allocation run.

:class:`AllocationRequest` describes one run (problem, strategy name,
strategy options, label, timeout); :class:`AllocationResult` is the
uniform envelope every run returns -- successful or not.  Consumers stop
caring which strategy produced a datapath, how its entry point shaped
its return value, or which exception it used to signal infeasibility.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from ..core.delta import Edit
from ..core.problem import Problem
from ..core.solution import Datapath, TraceEvent

__all__ = [
    "AllocationRequest",
    "AllocationResult",
    "DeltaRequest",
    "PRIORITY_CLASSES",
]

# Admission-control priority classes, best to worst service level.
# ``interactive`` is for a designer waiting at a prompt, ``normal``
# (the default) for ordinary tool traffic, ``bulk`` for sweeps that
# would rather be shed than delay the other two.  The fleet coordinator
# bounds a separate queue per class (see repro.service.fleet).
PRIORITY_CLASSES = ("interactive", "normal", "bulk")
DEFAULT_PRIORITY = "normal"


@dataclass(frozen=True)
class AllocationRequest:
    """One unit of work for the engine.

    Attributes:
        problem: the allocation problem instance.
        allocator: registered strategy name (see
            :func:`repro.engine.allocator_names`).
        options: strategy-specific keyword options (e.g. DPAlloc knobs,
            the ILP's ``time_limit``); must be JSON-compatible for the
            result cache to key on them.
        label: free-form tag echoed into the result (batch bookkeeping).
        priority: admission-control class (one of
            :data:`PRIORITY_CLASSES`; ``None`` means the default class,
            ``"normal"``).  Ignored by the offline engine; the fleet
            coordinator uses it to pick the bounded queue the request
            is admitted to.  Never part of the content identity: two
            requests differing only in priority are the same work.
        timeout: optional wall-clock budget in seconds.  A hard
            per-solve deadline under the process-per-run executor
            (``Engine(executor="process")`` -- the worker is killed);
            enforced by abandoning the worker in pooled ``run_batch``
            execution; in serial in-process execution it is checked
            after the run completes (Python cannot safely interrupt an
            in-process solver).  Every mode yields the identical
            canonical timeout envelope.
    """

    problem: Problem
    allocator: str
    options: Mapping[str, Any] = field(default_factory=dict)
    label: Optional[str] = None
    timeout: Optional[float] = None
    priority: Optional[str] = None

    def __post_init__(self) -> None:
        if self.priority is not None and self.priority not in PRIORITY_CLASSES:
            raise ValueError(
                f"priority must be one of {PRIORITY_CLASSES}, "
                f"got {self.priority!r}"
            )

    def priority_class(self) -> str:
        """The effective admission class (``None`` -> the default)."""
        return self.priority if self.priority is not None else DEFAULT_PRIORITY


@dataclass(frozen=True)
class DeltaRequest:
    """One warm-start re-solve: a base problem plus an edit sequence.

    Consumed by :meth:`repro.engine.Engine.run_delta` (and served as
    ``POST /delta``).  The base is named either by its
    ``Problem.fingerprint()`` -- enough when the engine already holds a
    replay artifact for it -- or by the full :class:`Problem`, which
    additionally lets the engine *prime* the artifact with one recorded
    cold solve on first contact.

    Attributes:
        edits: the :data:`repro.core.delta.Edit` sequence, applied in
            order to the base problem.  An empty sequence is a valid
            no-op request (used to prime an artifact).
        base_problem: the base problem instance, when the caller has it.
        base_fingerprint: ``Problem.fingerprint()`` of the base; derived
            from ``base_problem`` when omitted.
        options: DPAlloc options, exactly as an
            :class:`AllocationRequest` for allocator ``"dpalloc"`` would
            carry them.
        label: free-form tag echoed into the result envelope.
    """

    edits: Tuple[Edit, ...] = ()
    base_problem: Optional[Problem] = None
    base_fingerprint: Optional[str] = None
    options: Mapping[str, Any] = field(default_factory=dict)
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.base_problem is None and self.base_fingerprint is None:
            raise ValueError(
                "DeltaRequest needs base_problem or base_fingerprint"
            )

    def fingerprint(self) -> str:
        """The base problem's fingerprint, however the base was named."""
        if self.base_fingerprint is not None:
            return self.base_fingerprint
        assert self.base_problem is not None
        return self.base_problem.fingerprint()


@dataclass(frozen=True)
class AllocationResult:
    """Uniform envelope for the outcome of one allocation run.

    Attributes:
        allocator: name of the strategy that ran.
        datapath: the solution, or ``None`` when the run failed.
        seconds: wall-clock duration of the run that produced the
            datapath.  Cache hits preserve the *original* run's
            duration (with ``cached=True``), so sweep timing statistics
            stay meaningful; the lookup itself is not timed.
        iterations: solver iterations (DPAlloc outer loop; 1 for
            one-shot baselines; 0 when no datapath was produced).
        valid: verdict of :func:`repro.analysis.validate_datapath`
            against the problem definition; ``None`` when there is no
            datapath to validate.
        error: failure reason (infeasibility, timeout, validation
            failure) instead of a raised exception; ``None`` on success.
        extras: strategy-specific statistics (ILP model sizes, binding
            optimality flags, ...), JSON-compatible.
        label: echo of the request label.
        cached: the envelope was served from the engine's result cache.
        delta: warm-start provenance of a ``run_delta`` envelope
            (strategy taken, verified/resumed iteration counts); ``None``
            for ordinary runs.  Non-canonical, like ``seconds`` and
            ``cached``: a delta solve's canonical bytes are required
            identical to a cold solve's, which never carries this field.
    """

    allocator: str
    datapath: Optional[Datapath]
    seconds: float
    iterations: int = 0
    valid: Optional[bool] = None
    error: Optional[str] = None
    extras: Mapping[str, Any] = field(default_factory=dict)
    label: Optional[str] = None
    cached: bool = False
    delta: Optional[Mapping[str, Any]] = None

    @property
    def ok(self) -> bool:
        """True when a datapath was produced and passed validation."""
        return self.datapath is not None and self.error is None and bool(self.valid)

    @property
    def trace(self) -> Tuple[TraceEvent, ...]:
        """The solver's per-iteration trace, if the run recorded one.

        Non-empty only for DPAlloc runs with ``options={"trace": True}``
        -- the events ride on the datapath and survive JSON round-trips
        (batch files, the result cache, shard merges).
        """
        return self.datapath.trace if self.datapath is not None else ()

    def canonical_dict(self) -> Dict[str, Any]:
        """Content view excluding wall-clock and cache provenance.

        Two runs of the same request -- serial or parallel, fresh or
        cached -- produce identical canonical dicts; the determinism
        tests compare their JSON byte-for-byte.
        """
        from ..io.json_io import allocation_result_to_dict

        payload = allocation_result_to_dict(self)
        payload.pop("seconds", None)
        payload.pop("cached", None)
        payload.pop("delta", None)
        extras = payload.get("extras")
        if isinstance(extras, dict):
            extras.pop("solve_seconds", None)
        datapath = payload.get("datapath")
        if isinstance(datapath, dict):
            # Trace telemetry (pass timings, chain-cache counters) rides
            # the wire for observability but is wall-clock- and
            # mode-dependent; canonical bytes must not see it.
            for event in datapath.get("trace", ()):
                for key in ("pass_ms", "cache_hits", "cache_misses",
                            "cache_evicted"):
                    event.pop(key, None)
        return payload

    def canonical_json(self) -> str:
        """Deterministic JSON of :meth:`canonical_dict`."""
        return json.dumps(self.canonical_dict(), sort_keys=True)

    def summary_row(self) -> Dict[str, Any]:
        """Small flat dict for tabular reporting."""
        if self.ok:
            assert self.datapath is not None
            return {
                "allocator": self.allocator,
                "area": self.datapath.area,
                "makespan": self.datapath.makespan,
                "units": self.datapath.unit_count(),
                "seconds": self.seconds,
            }
        return {
            "allocator": self.allocator,
            "error": self.error or "unknown failure",
            "seconds": self.seconds,
        }
