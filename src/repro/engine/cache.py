"""On-disk result-cache lifecycle: manifest, stats, LRU eviction.

PR 1's cache wrote envelope files keyed by
``sha256(problem fingerprint + allocator + options + version)`` and let
them live forever.  :class:`ResultCache` adds the lifecycle around those
entries:

* a ``manifest.json`` sidecar records per-entry metadata -- the package
  version that wrote the entry, creation and last-use timestamps, and
  the payload size in bytes;
* :meth:`stats` aggregates entry count, total size and runtime hit/miss
  counters;
* :meth:`prune` evicts least-recently-used entries until the cache fits
  a size budget (``max_mb``); a budget passed to the constructor is
  enforced automatically after every write;
* :meth:`clear` empties the cache.

**Shared-store spill** (the fleet backing store): construct with
``shared_dir`` and every write is additionally *spilled* to a second
directory-based store -- itself a :class:`ResultCache`, so it reuses
the same manifest machinery and atomic-write discipline -- and every
local miss falls through to a shared read.  A shared hit is *adopted*
into the local directory, so a worker that inherits another worker's
solve serves the next lookup locally.  Several worker processes (the
``repro fleet`` topology) point at one shared directory: entry keys
already incorporate the package version (see ``Engine.cache_key``), so
a store shared across rolling versions never serves an envelope written
by other code -- version-aware invalidation for free -- and manifest
update races between workers reconcile exactly like the single-cache
multi-engine case documented below.

The manifest is advisory, never a correctness dependency: a missing,
corrupt or stale manifest is rebuilt from a directory scan (file sizes
and mtimes), and every manifest write is atomic (per-process tmp name +
rename) with ``OSError`` swallowed, matching the entry-write discipline.
Concurrent engines sharing a cache directory may lose a manifest update
race; the next rebuild reconciles.  Manifest entries whose files were
deleted behind the cache's back (an external prune, a cleanup cron, a
second host sharing the directory) are *reported* -- counted in
``stats()["stale_dropped"]`` -- and skipped, never an error: a
long-running service must survive any on-disk state it finds.

Instances are thread-safe: every public method holds one re-entrant
lock, so the many concurrent requests of :mod:`repro.service` can share
a single cache without corrupting the manifest (single-flight dedup in
the service layer additionally collapses identical concurrent misses).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = ["ResultCache"]

PathLike = Union[str, Path]

MANIFEST_NAME = "manifest.json"
_MANIFEST_KIND = "cache-manifest"


def _utcnow() -> float:
    return time.time()


class ResultCache:
    """Size-bounded, manifest-tracked store of JSON envelope payloads.

    Args:
        directory: cache directory (created on first write).
        max_mb: optional size budget in megabytes.  When set, every
            write is followed by an LRU eviction pass that keeps the
            total payload size under the budget.  ``None`` means
            unbounded (PR-1 behaviour).
        shared_dir: optional second directory acting as a shared
            backing store (unbounded): writes spill to it, local misses
            fall through to it, shared hits are adopted locally.  Must
            differ from ``directory``.
    """

    def __init__(
        self,
        directory: PathLike,
        max_mb: Optional[float] = None,
        shared_dir: Optional[PathLike] = None,
    ) -> None:
        if max_mb is not None and max_mb <= 0:
            raise ValueError(f"max_mb must be positive, got {max_mb}")
        self.directory = Path(directory)
        self.max_mb = max_mb
        self.shared: Optional["ResultCache"] = None
        if shared_dir is not None:
            if Path(shared_dir).resolve() == self.directory.resolve():
                raise ValueError(
                    "shared_dir must differ from the local cache directory"
                )
            self.shared = ResultCache(shared_dir)
        self.hits = 0
        self.misses = 0
        # Lookups served by the shared backing store (a subset of hits).
        self.shared_hits = 0
        # Cumulative count of manifest entries dropped because their
        # entry files had been deleted behind the cache's back.
        self.stale_dropped = 0
        # One lock for every public method: concurrent service requests
        # share a single instance (reads, writes, reconciling scans).
        self._lock = threading.RLock()
        # In-memory manifest view: loaded (with a reconciling directory
        # scan) on first use, then kept current by read/write so hot
        # paths never pay a per-operation scan.  stats/prune re-scan.
        # Writes mark it dirty; callers batch the disk flush via
        # flush() -- a cold sweep must not rewrite the whole manifest
        # once per stored entry.
        self._manifest: Optional[Dict[str, Any]] = None
        self._dirty = False

    # ------------------------------------------------------------------
    # entry I/O
    # ------------------------------------------------------------------
    def entry_path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def read(self, key: str) -> Optional[str]:
        """Payload text for ``key``, or ``None`` on a miss.

        A hit refreshes the entry's LRU position: the in-memory
        manifest ``last_used`` plus the entry file's mtime.  The mtime
        is the durable signal -- manifest loads take
        ``max(last_used, mtime)`` -- so hits never pay a per-operation
        manifest flush (a warm sweep would otherwise rewrite the whole
        manifest once per request).
        """
        with self._lock:
            path = self.entry_path(key)
            try:
                text = path.read_text()
            except OSError:
                spilled = (
                    self.shared.read(key) if self.shared is not None else None
                )
                if spilled is None:
                    self.misses += 1
                    return None
                # Adopt the shared entry locally: the next lookup for
                # this key is a local disk read, not a shared round-trip.
                self.hits += 1
                self.shared_hits += 1
                self._adopt(key, spilled)
                return spilled
            self.hits += 1
            now = _utcnow()
            try:
                os.utime(path, (now, now))
            except OSError:
                pass
            entry = self._manifest_view()["entries"].get(key)
            if entry is not None:
                entry["last_used"] = now
            return text

    def invalidate(self, key: str) -> None:
        """Drop an entry that turned out to be unusable (corrupt JSON,
        wrong shape) and reclassify its lookup as a miss, so hit-rate
        statistics only count lookups that actually served a result."""
        with self._lock:
            if self.hits > 0:
                self.hits -= 1
            self.misses += 1
            self._drop(key)
            if self.shared is not None:
                # An unusable entry adopted from the shared store is
                # just as unusable there; drop both copies (without
                # reclassifying a shared lookup that never happened).
                self.shared._drop(key)

    def _drop(self, key: str) -> None:
        """Remove one entry and its manifest record; counters untouched."""
        with self._lock:
            try:
                self.entry_path(key).unlink(missing_ok=True)
            except OSError:
                pass
            manifest = self._manifest_view()
            if manifest["entries"].pop(key, None) is not None:
                self._dirty = True

    def write(self, key: str, text: str, version: str) -> None:
        """Atomically store ``text`` under ``key`` and track it.

        ``version`` is recorded in the manifest (informational -- the
        cache *key* already incorporates the package version, so stale
        code never serves an entry it did not write).  When a size
        budget is configured, least-recently-used entries are evicted
        until the cache fits.  With a shared backing store configured,
        the entry is additionally spilled there (best-effort: a
        read-only shared volume degrades to a local-only cache).
        """
        with self._lock:
            self._write_local(key, text, version)
            if self.shared is not None:
                self.shared.write(key, text, version)

    def _adopt(self, key: str, text: str) -> None:
        """Store a shared hit locally without spilling it back."""
        self._write_local(key, text, version="shared")

    def _write_local(self, key: str, text: str, version: str) -> None:
        with self._lock:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.entry_path(key)
            tmp = path.with_suffix(f".{os.getpid()}.tmp")
            try:
                tmp.write_text(text)
                tmp.replace(path)
            except OSError:
                try:
                    tmp.unlink(missing_ok=True)
                except OSError:
                    pass
                return
            now = _utcnow()
            manifest = self._manifest_view()
            manifest["entries"][key] = {
                "version": version,
                "created": now,
                "last_used": now,
                "size": len(text.encode("utf-8")),
            }
            if self.max_mb is not None:
                # The in-process view is current for everything this
                # instance wrote; no need to re-scan the directory on the
                # store hot path (prune() does, for external callers).
                self._evict(manifest, self.max_mb)
            self._dirty = True

    def flush(self) -> None:
        """Write the in-memory manifest to disk if it has unsaved
        changes.  The engine calls this once per run/batch; a crash
        before a flush only costs metadata (the next load reconciles
        from the entry files themselves)."""
        with self._lock:
            if self._dirty and self._manifest is not None:
                self._store_manifest(self._manifest)
                self._dirty = False
            if self.shared is not None:
                self.shared.flush()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def stats(self, reconcile: bool = True) -> Dict[str, Any]:
        """Aggregate cache statistics.

        Returns a dict with ``entries``, ``total_bytes``, ``max_bytes``
        (``None`` when unbounded), ``directory``, this instance's
        runtime ``hits``/``misses`` counters, and ``stale_dropped`` --
        the cumulative count of manifest entries skipped because their
        files had been deleted behind the cache's back.

        ``reconcile=False`` serves the in-memory manifest view without
        the per-call directory rescan (and without picking up external
        deletions until something else reconciles).  The service's
        ``/stats`` endpoint uses it so a monitoring poller holding the
        cache lock through thousands of ``stat()`` calls cannot stall
        concurrent allocations.
        """
        with self._lock:
            manifest = self._manifest_view(reconcile=reconcile)
            # Persist any reconcile repairs so repeated stats() calls
            # do not rediscover (and recount) the same stale entries.
            self.flush()
            total = sum(e["size"] for e in manifest["entries"].values())
            report: Dict[str, Any] = {
                "directory": str(self.directory),
                "entries": len(manifest["entries"]),
                "total_bytes": total,
                "max_bytes": (
                    int(self.max_mb * 1024 * 1024)
                    if self.max_mb is not None
                    else None
                ),
                "hits": self.hits,
                "misses": self.misses,
                "stale_dropped": self.stale_dropped,
            }
            if self.shared is not None:
                report["shared_hits"] = self.shared_hits
                report["shared"] = self.shared.stats(reconcile=reconcile)
            return report

    def prune(self, max_mb: Optional[float] = None) -> Dict[str, int]:
        """Evict least-recently-used entries until under ``max_mb``.

        ``None`` falls back to the instance budget; if that is also
        ``None``, nothing is evicted.  Returns ``{"evicted": n,
        "reclaimed_bytes": b, "remaining": m}``.
        """
        budget_mb = max_mb if max_mb is not None else self.max_mb
        if budget_mb is not None and budget_mb <= 0:
            # The constructor rejects max_mb <= 0; an explicit prune
            # must not treat the same value as "evict everything" --
            # full eviction is what clear() is for.
            raise ValueError(f"max_mb must be positive, got {budget_mb}")
        with self._lock:
            manifest = self._manifest_view(reconcile=True)
            report = self._evict(manifest, budget_mb)
            if report["evicted"]:
                self._store_manifest(manifest)
                self._dirty = False
            return report

    def _evict(
        self, manifest: Dict[str, Any], budget_mb: Optional[float]
    ) -> Dict[str, int]:
        """LRU-evict ``manifest`` entries in place until under budget.

        Mutates the manifest only; callers decide when to flush it.
        """
        entries = manifest["entries"]
        evicted = 0
        reclaimed = 0
        if budget_mb is not None:
            budget = int(budget_mb * 1024 * 1024)
            total = sum(e["size"] for e in entries.values())
            for key in sorted(entries, key=lambda k: entries[k]["last_used"]):
                if total <= budget:
                    break
                size = entries[key]["size"]
                try:
                    self.entry_path(key).unlink(missing_ok=True)
                except OSError:
                    continue  # keep tracking what we could not remove
                del entries[key]
                total -= size
                evicted += 1
                reclaimed += size
        return {
            "evicted": evicted,
            "reclaimed_bytes": reclaimed,
            "remaining": len(entries),
        }

    def clear(self) -> int:
        """Remove every entry (and the manifest); returns entries removed."""
        with self._lock:
            removed = 0
            if not self.directory.is_dir():
                return removed
            for path in self._scan_entry_paths():
                try:
                    path.unlink(missing_ok=True)
                    removed += 1
                except OSError:
                    pass
            try:
                (self.directory / MANIFEST_NAME).unlink(missing_ok=True)
            except OSError:
                pass
            self._manifest = None
            self._dirty = False
            return removed

    # ------------------------------------------------------------------
    # manifest internals
    # ------------------------------------------------------------------
    def _scan_entry_paths(self) -> List[Path]:
        return [
            path
            for path in self.directory.glob("*.json")
            if path.name != MANIFEST_NAME
        ]

    def _manifest_view(self, reconcile: bool = False) -> Dict[str, Any]:
        """The working manifest; ``reconcile`` forces a fresh scan."""
        with self._lock:
            if reconcile or self._manifest is None:
                # Unsaved in-memory state (entry versions, LRU touches)
                # must survive the reload, which reads the on-disk file.
                self.flush()
                self._manifest = self._load_manifest()
            return self._manifest

    @staticmethod
    def _entry_usable(entry: Any) -> bool:
        return (
            isinstance(entry, dict)
            and isinstance(entry.get("size"), int)
            and isinstance(entry.get("last_used"), (int, float))
        )

    def _load_manifest(self) -> Dict[str, Any]:
        """The manifest, rebuilt from a directory scan when unusable.

        Rebuild also reconciles drift, entry by entry so one bad record
        never discards the metadata of every other entry:

        * entries whose files vanished (deleted behind the cache's
          back) are dropped and **reported** via ``stale_dropped``;
        * malformed entry records whose files still exist are repaired
          from filesystem metadata;
        * files the manifest never saw (written by a concurrent engine
          that lost the manifest race) are adopted with their
          filesystem timestamps and an ``unknown`` version.
        """
        manifest_path = self.directory / MANIFEST_NAME
        manifest: Optional[Dict[str, Any]] = None
        try:
            data = json.loads(manifest_path.read_text())
            if (
                isinstance(data, dict)
                and data.get("kind") == _MANIFEST_KIND
                and isinstance(data.get("entries"), dict)
            ):
                manifest = data
        except (OSError, ValueError):
            manifest = None
        if manifest is None:
            manifest = {"kind": _MANIFEST_KIND, "entries": {}}
        entries = manifest["entries"]
        reconciled = False
        on_disk = {path.stem: path for path in self._scan_entry_paths()}
        for key in list(entries):
            if key not in on_disk:
                # Since-deleted entry file: skip the record, count it.
                del entries[key]
                self.stale_dropped += 1
                reconciled = True
        for key, path in on_disk.items():
            try:
                stat = path.stat()
            except OSError:
                # Deleted between the scan and the stat: same skip.
                if entries.pop(key, None) is not None:
                    self.stale_dropped += 1
                    reconciled = True
                continue
            entry = entries.get(key)
            if not self._entry_usable(entry):
                # Missing or malformed record for a file that exists:
                # repair from filesystem metadata.
                entries[key] = {
                    "version": "unknown",
                    "created": stat.st_mtime,
                    "last_used": stat.st_mtime,
                    "size": stat.st_size,
                }
                reconciled = True
            else:
                # Hits bump the file mtime without flushing the
                # manifest; the durable LRU position is the newer of
                # the two.  Size is re-read in case another process
                # rewrote the entry.
                entry["last_used"] = max(entry["last_used"], stat.st_mtime)
                entry["size"] = stat.st_size
        if reconciled:
            # The repaired view must reach disk, or the next reload
            # re-reads the stale on-disk manifest and re-counts the
            # same drops (stale_dropped would grow on every stats()).
            self._dirty = True
        return manifest

    def _store_manifest(self, manifest: Dict[str, Any]) -> None:
        path = self.directory / MANIFEST_NAME
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(manifest, sort_keys=True))
            tmp.replace(path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
