"""The allocation engine: one front door for every allocation run.

:class:`Engine` executes :class:`~repro.engine.results.AllocationRequest`
objects -- singly (:meth:`Engine.run`) or in deterministic batches
(:meth:`Engine.run_batch`) -- and always returns
:class:`~repro.engine.results.AllocationResult` envelopes:

* strategies are resolved through the allocator registry, so every
  consumer shares one dispatch surface;
* infeasibility, timeouts and validation failures come back as result
  fields instead of exceptions, so a batch never dies on one bad case;
* ``run_batch`` fans out over a ``concurrent.futures`` process pool with
  result ordering guaranteed to match the request ordering regardless of
  completion order;
* an optional on-disk cache keyed by ``Problem.fingerprint()`` plus the
  strategy name and options makes repeated sweeps (experiments,
  benchmarks, CI) cheap.

The envelope of a run is deterministic: serial, pooled and cached
executions of the same request produce byte-for-byte identical
``AllocationResult.canonical_json()`` values.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..analysis.validate import ValidationError, validate_datapath
from ..core.problem import InfeasibleError
from ..core.solution import Datapath
from .registry import get_allocator
from .results import AllocationRequest, AllocationResult

__all__ = ["Engine", "execute_request"]

PathLike = Union[str, Path]


def execute_request(request: AllocationRequest) -> AllocationResult:
    """Run one request in the current process and envelope the outcome.

    This is the single execution path shared by serial runs and pool
    workers (it is a module-level function so it pickles for
    ``concurrent.futures``).  Never raises for infeasibility, solver
    timeouts or validation failures -- those become ``error`` /
    ``valid`` fields of the returned envelope.
    """
    fn = get_allocator(request.allocator)
    options = dict(request.options)
    began = time.perf_counter()
    datapath: Optional[Datapath] = None
    extras: Dict[str, Any] = {}
    error: Optional[str] = None
    try:
        outcome = fn(request.problem, **options)
        if isinstance(outcome, tuple):
            datapath, extras = outcome[0], dict(outcome[1])
        else:
            datapath = outcome
    except InfeasibleError as exc:
        error = f"infeasible: {exc}"
    except TimeoutError as exc:
        error = f"timeout: {exc}"
    except Exception as exc:  # noqa: BLE001 -- a batch never dies on one case
        error = f"error: {type(exc).__name__}: {exc}"
    seconds = time.perf_counter() - began

    valid: Optional[bool] = None
    if datapath is not None:
        try:
            validate_datapath(request.problem, datapath)
            valid = True
        except ValidationError as exc:
            valid = False
            error = f"invalid: {exc}"

    if (
        error is None
        and request.timeout is not None
        and seconds > request.timeout
    ):
        # In-process solvers cannot be interrupted safely; a blown
        # budget is reported after the fact (the pooled path
        # additionally stops waiting -- see Engine.run_batch).  The
        # envelope is normalised to exactly what the pooled path
        # produces -- same error string (no wall-clock text), no
        # datapath -- so canonical_json() stays identical across
        # execution modes; the measured duration survives in
        # ``seconds``.
        error = f"timeout: no result within {request.timeout:g}s"
        datapath = None
        extras = {}
        valid = None

    return AllocationResult(
        allocator=request.allocator,
        datapath=datapath,
        seconds=seconds,
        iterations=datapath.iterations if datapath is not None else 0,
        valid=valid,
        error=error,
        extras=extras,
        label=request.label,
    )


def _timeout_result(request: AllocationRequest) -> AllocationResult:
    return AllocationResult(
        allocator=request.allocator,
        datapath=None,
        seconds=float(request.timeout or 0.0),
        iterations=0,
        valid=None,
        error=f"timeout: no result within {request.timeout:g}s",
        extras={},
        label=request.label,
    )


def _error_result(request: AllocationRequest, exc: BaseException) -> AllocationResult:
    """Envelope for a pooled run whose *transport* failed (e.g. an
    unpicklable request or a broken worker) -- the allocator itself
    never got to report."""
    return AllocationResult(
        allocator=request.allocator,
        datapath=None,
        seconds=0.0,
        iterations=0,
        valid=None,
        error=f"error: {type(exc).__name__}: {exc}",
        extras={},
        label=request.label,
    )


class Engine:
    """Batch/serial allocation runner over the allocator registry.

    Args:
        workers: default parallelism of :meth:`run_batch` (overridable
            per call).  ``None`` or ``1`` means serial in-process
            execution; ``N > 1`` fans out over a process pool.
        cache_dir: optional directory for the on-disk result cache.
            Created on first write.  Entries are JSON envelopes keyed by
            ``sha256(problem fingerprint + allocator + options)``; only
            deterministic outcomes (success or infeasibility) are
            cached, never timeouts.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir: Optional[PathLike] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None

    # ------------------------------------------------------------------
    # cache
    # ------------------------------------------------------------------
    def cache_key(self, request: AllocationRequest) -> Optional[str]:
        """Stable cache key for ``request``; ``None`` if uncacheable."""
        if self.cache_dir is None:
            return None
        from .. import __version__

        try:
            payload = json.dumps(
                {
                    "problem": request.problem.fingerprint(),
                    "allocator": request.allocator,
                    "options": sorted(dict(request.options).items()),
                    # Key on the package version so a persistent cache
                    # never serves envelopes computed by older code.
                    "version": __version__,
                },
                sort_keys=True,
            )
        except (TypeError, ValueError):
            return None  # non-JSON options: run uncached
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _cache_path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.json"

    def _cache_load(
        self, key: Optional[str], request: AllocationRequest
    ) -> Optional[AllocationResult]:
        if key is None or self.cache_dir is None:
            return None
        path = self._cache_path(key)
        if not path.exists():
            return None
        from dataclasses import replace

        from ..io.json_io import allocation_result_from_dict

        try:
            data = json.loads(path.read_text())
            result = allocation_result_from_dict(data)
        except Exception:  # noqa: BLE001 -- any corrupt/wrong-shape
            return None  # entry falls through to a fresh run
        # The key excludes the label (it is bookkeeping, not content):
        # echo the *current* request's label, as a fresh run would.
        return replace(result, cached=True, label=request.label)

    def _cache_store(self, key: Optional[str], result: AllocationResult) -> None:
        if key is None or self.cache_dir is None:
            return
        if result.error is not None and not result.error.startswith("infeasible"):
            return  # timeouts / validation failures are not deterministic facts
        from ..io.json_io import allocation_result_to_dict

        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._cache_path(key)
        # Per-process tmp name + atomic rename: concurrent engines
        # sharing a cache dir never collide on the tmp file or see
        # torn JSON.  A lost rename race is harmless (both wrote the
        # same deterministic payload), so OSErrors are swallowed --
        # the cache is an accelerator, never a correctness dependency.
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        try:
            tmp.write_text(
                json.dumps(allocation_result_to_dict(result), sort_keys=True)
            )
            tmp.replace(path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, request: AllocationRequest) -> AllocationResult:
        """Execute one request in-process (cache-aware)."""
        key = self.cache_key(request)
        hit = self._cache_load(key, request)
        if hit is not None:
            return hit
        result = execute_request(request)
        self._cache_store(key, result)
        return result

    def run_batch(
        self,
        requests: Sequence[AllocationRequest],
        workers: Optional[int] = None,
    ) -> List[AllocationResult]:
        """Execute a batch; results align index-for-index with requests.

        With ``workers > 1`` the fresh (non-cached) requests fan out
        over a ``ProcessPoolExecutor``; completion order never affects
        result order.  A request whose ``timeout`` expires while pooled
        yields a timeout envelope; the pool is then shut down without
        waiting (abandoned workers finish in the background -- CPython
        cannot preempt a running C-level solve).  The pooled timeout
        clock starts when the parent begins waiting on that request, so
        time a request spends queued behind earlier requests counts
        against its budget; treat ``timeout`` as a batch-latency bound,
        not a precise per-solve limit (see ROADMAP for the preemptive
        process-per-run mode).
        """
        count = workers if workers is not None else (self.workers or 1)
        if count < 1:
            raise ValueError(f"workers must be >= 1, got {count}")

        results: List[Optional[AllocationResult]] = [None] * len(requests)
        keys: List[Optional[str]] = [self.cache_key(r) for r in requests]
        fresh: List[int] = []
        for index, request in enumerate(requests):
            hit = self._cache_load(keys[index], request)
            if hit is not None:
                results[index] = hit
            else:
                fresh.append(index)

        # A single fresh request normally skips the pool -- unless the
        # caller asked for pooled execution AND a timeout, in which
        # case the pool is what makes the timeout preemptive (a hung
        # solver must not block the batch).
        wants_preemption = count > 1 and any(
            requests[index].timeout is not None for index in fresh
        )
        if count <= 1 or (len(fresh) <= 1 and not wants_preemption):
            for index in fresh:
                results[index] = execute_request(requests[index])
        elif fresh:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=min(count, len(fresh))
            )
            timed_out = False
            try:
                futures = {
                    index: pool.submit(execute_request, requests[index])
                    for index in fresh
                }
                for index in fresh:
                    request = requests[index]
                    try:
                        results[index] = futures[index].result(
                            timeout=request.timeout
                        )
                    except concurrent.futures.TimeoutError:
                        futures[index].cancel()
                        timed_out = True
                        results[index] = _timeout_result(request)
                    except Exception as exc:  # noqa: BLE001
                        # Transport failures (unpicklable request,
                        # broken pool) envelope like any other failed
                        # case instead of discarding the whole batch.
                        results[index] = _error_result(request, exc)
            finally:
                # After a timeout, don't let shutdown block on the
                # abandoned worker -- that would defeat the budget.
                # Every envelope is already collected, so whatever is
                # still running in the pool is abandoned work: kill it
                # (snapshot first -- shutdown clears ``_processes``) so
                # neither interpreter exit (the atexit join) nor the OS
                # keeps paying for it.
                workers_snapshot = (
                    list((getattr(pool, "_processes", None) or {}).values())
                    if timed_out else []
                )
                pool.shutdown(wait=not timed_out, cancel_futures=timed_out)
                for process in workers_snapshot:
                    process.kill()

        for index in fresh:
            result = results[index]
            assert result is not None
            self._cache_store(keys[index], result)
        assert all(r is not None for r in results)
        return list(results)  # type: ignore[arg-type]
