"""The allocation engine: one front door for every allocation run.

:class:`Engine` executes :class:`~repro.engine.results.AllocationRequest`
objects -- singly (:meth:`Engine.run`) or in deterministic batches
(:meth:`Engine.run_batch`) -- and always returns
:class:`~repro.engine.results.AllocationResult` envelopes:

* strategies are resolved through the allocator registry, so every
  consumer shares one dispatch surface;
* infeasibility, timeouts and validation failures come back as result
  fields instead of exceptions, so a batch never dies on one bad case;
* ``run_batch`` fans out over a ``concurrent.futures`` process pool with
  result ordering guaranteed to match the request ordering regardless of
  completion order;
* an optional on-disk cache keyed by ``Problem.fingerprint()`` plus the
  strategy name and options makes repeated sweeps (experiments,
  benchmarks, CI) cheap.

The envelope of a run is deterministic: serial, pooled and cached
executions of the same request produce byte-for-byte identical
``AllocationResult.canonical_json()`` values.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import json
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..analysis.validate import ValidationError, validate_datapath
from ..core.problem import InfeasibleError
from ..core.solution import Datapath
from .registry import get_allocator
from .results import AllocationRequest, AllocationResult, DeltaRequest

__all__ = [
    "Engine",
    "content_key_from_fingerprint",
    "execute_request",
    "request_content_key",
    "versioned_content_key",
]

PathLike = Union[str, Path]


def execute_request(request: AllocationRequest) -> AllocationResult:
    """Run one request in the current process and envelope the outcome.

    This is the single execution path shared by serial runs and pool
    workers (it is a module-level function so it pickles for
    ``concurrent.futures``).  Never raises for infeasibility, solver
    timeouts or validation failures -- those become ``error`` /
    ``valid`` fields of the returned envelope.
    """
    fn = get_allocator(request.allocator)
    options = dict(request.options)
    began = time.perf_counter()
    datapath: Optional[Datapath] = None
    extras: Dict[str, Any] = {}
    error: Optional[str] = None
    try:
        outcome = fn(request.problem, **options)
        if isinstance(outcome, tuple):
            datapath, extras = outcome[0], dict(outcome[1])
        else:
            datapath = outcome
    except InfeasibleError as exc:
        error = f"infeasible: {exc}"
    except TimeoutError as exc:
        error = f"timeout: {exc}"
    except Exception as exc:  # noqa: BLE001 -- a batch never dies on one case
        error = f"error: {type(exc).__name__}: {exc}"
    seconds = time.perf_counter() - began

    valid: Optional[bool] = None
    if datapath is not None:
        try:
            validate_datapath(request.problem, datapath)
            valid = True
        except ValidationError as exc:
            valid = False
            error = f"invalid: {exc}"

    if request.timeout is not None and seconds > request.timeout:
        # In-process solvers cannot be interrupted safely; a blown
        # budget is reported after the fact (the preemptive paths
        # additionally stop waiting / kill the worker -- see
        # Engine.run_batch and repro.engine.executor).  The envelope is
        # normalised to exactly what those paths produce -- same error
        # string (no wall-clock text), no datapath -- so
        # canonical_json() stays identical across execution modes; the
        # measured duration survives in ``seconds``.  This happens
        # regardless of any error the run reported: a preempted worker
        # never gets to say "infeasible" or "invalid", so an over-budget
        # serial run must not either.
        error = f"timeout: no result within {request.timeout:g}s"
        datapath = None
        extras = {}
        valid = None

    return AllocationResult(
        allocator=request.allocator,
        datapath=datapath,
        seconds=seconds,
        iterations=datapath.iterations if datapath is not None else 0,
        valid=valid,
        error=error,
        extras=extras,
        label=request.label,
    )


def _timeout_result(request: AllocationRequest) -> AllocationResult:
    return AllocationResult(
        allocator=request.allocator,
        datapath=None,
        seconds=float(request.timeout or 0.0),
        iterations=0,
        valid=None,
        error=f"timeout: no result within {request.timeout:g}s",
        extras={},
        label=request.label,
    )


def _error_result(request: AllocationRequest, exc: BaseException) -> AllocationResult:
    """Envelope for a pooled run whose *transport* failed (e.g. an
    unpicklable request or a broken worker) -- the allocator itself
    never got to report."""
    return AllocationResult(
        allocator=request.allocator,
        datapath=None,
        seconds=0.0,
        iterations=0,
        valid=None,
        error=f"error: {type(exc).__name__}: {exc}",
        extras={},
        label=request.label,
    )


EXECUTORS = ("pool", "process")


def content_key_from_fingerprint(
    fingerprint: str, allocator: str, options: Any
) -> Optional[str]:
    """Content hash of ``(problem fingerprint, allocator, options)``.

    The fingerprint-keyed half of :func:`request_content_key`, split
    out so delta solves -- which name their base by fingerprint alone
    -- can compute the identical key without holding the
    :class:`Problem`.  ``None`` when the options are not
    JSON-serialisable.
    """
    try:
        payload = json.dumps(
            {
                "problem": fingerprint,
                "allocator": allocator,
                "options": sorted(dict(options).items()),
            },
            sort_keys=True,
        )
    except (TypeError, ValueError):
        return None
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def versioned_content_key(content: Optional[str]) -> Optional[str]:
    """Mix the package version into a content key.

    This is the on-disk cache entry key: stale code never serves an
    entry it did not write.  The single definition is shared by
    ``Engine.cache_key``, the service's authoritative ``content_key``
    response field, and the fleet coordinator's shared-store lookups,
    so all three can never drift apart.  ``None`` passes through
    (uncacheable stays uncacheable).
    """
    if content is None:
        return None
    from .. import __version__

    return hashlib.sha256(
        f"{content}:{__version__}".encode("utf-8")
    ).hexdigest()


def request_content_key(request: AllocationRequest) -> Optional[str]:
    """Stable content hash of a request's (problem, allocator, options).

    The single source of truth for "are two requests the same work":
    the engine's cache key is this plus the package version, and the
    service layer's single-flight dedup is this plus the timeout.
    ``None`` when the request has no JSON identity (callable-table
    models, non-JSON options) -- such requests are uncacheable and
    never deduplicated.
    """
    try:
        fingerprint = request.problem.fingerprint()
    except (TypeError, ValueError):
        return None
    return content_key_from_fingerprint(
        fingerprint, request.allocator, request.options
    )


class Engine:
    """Batch/serial allocation runner over the allocator registry.

    Args:
        workers: default parallelism of :meth:`run_batch` (overridable
            per call).  ``None`` or ``1`` means serial in-process
            execution; ``N > 1`` fans out over a process pool.
        cache_dir: optional directory for the on-disk result cache.
            Created on first write.  Entries are JSON envelopes keyed by
            ``sha256(problem fingerprint + allocator + options)``; only
            deterministic outcomes (success or infeasibility) are
            cached, never timeouts.
        cache_max_mb: optional size budget for the cache directory;
            least-recently-used entries are evicted after each store to
            keep the total under the budget (see
            :class:`repro.engine.cache.ResultCache`).
        cache_shared_dir: optional shared backing store the cache
            spills to and reads through on local misses -- the fleet
            topology, where every worker's local cache shares one
            store (see :class:`repro.engine.cache.ResultCache`).
            Requires ``cache_dir``.
        executor: fresh-run execution mode.  ``"pool"`` (default)
            preserves the PR-1 behaviour: serial in-process runs, or a
            ``ProcessPoolExecutor`` fan-out whose timeout abandons (but
            cannot kill) a hung worker.  ``"process"`` routes every
            fresh run through
            :class:`repro.engine.executor.ProcessPerRunExecutor`: one
            process per run with a hard deadline, so ``timeout`` is a
            true per-solve budget, a blown budget SIGKILLs the worker,
            and queued requests never inherit a starved slot or a stale
            clock.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir: Optional[PathLike] = None,
        cache_max_mb: Optional[float] = None,
        executor: str = "pool",
        cache_shared_dir: Optional[PathLike] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        self.workers = workers
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.executor = executor
        self._cache: Optional["ResultCache"] = None
        if self.cache_dir is not None:
            from .cache import ResultCache

            self._cache = ResultCache(
                self.cache_dir,
                max_mb=cache_max_mb,
                shared_dir=cache_shared_dir,
            )
        elif cache_max_mb is not None:
            raise ValueError("cache_max_mb requires cache_dir")
        elif cache_shared_dir is not None:
            raise ValueError("cache_shared_dir requires cache_dir")
        # Cumulative ProcessPerRunExecutor counters across this engine's
        # process-mode runs (started/completed/timeouts/killed/crashed).
        # Accumulation is locked: the async service layer calls run()
        # from many worker threads against one shared engine.
        self.executor_stats: Dict[str, int] = {}
        self._stats_lock = threading.Lock()
        # Replay artifacts for run_delta when no cache_dir is
        # configured: a small bounded in-memory store (see
        # repro.engine.replay).  With a cache_dir, artifacts live in
        # the ResultCache alongside the envelopes they warm-start.
        self._replay_memory: Dict[str, Dict[str, Any]] = {}
        self._replay_lock = threading.Lock()

    # ------------------------------------------------------------------
    # cache lifecycle
    # ------------------------------------------------------------------
    def cache_stats(self, reconcile: bool = True) -> Optional[Dict[str, Any]]:
        """Entry count / size / hit statistics; ``None`` without a cache.

        ``reconcile=False`` skips the per-call directory rescan (see
        :meth:`repro.engine.cache.ResultCache.stats`).
        """
        if self._cache is None:
            return None
        return self._cache.stats(reconcile=reconcile)

    def executor_stats_snapshot(self) -> Dict[str, int]:
        """A consistent copy of :attr:`executor_stats`.

        Taken under the accumulation lock so readers on other threads
        (the service's ``/stats``) never observe the dict mid-update.
        """
        with self._stats_lock:
            return dict(self.executor_stats)

    def prune_cache(self, max_mb: Optional[float] = None) -> Dict[str, int]:
        """LRU-evict cache entries down to ``max_mb`` (or the configured
        budget); no-op counters without a cache."""
        if self._cache is None:
            return {"evicted": 0, "reclaimed_bytes": 0, "remaining": 0}
        return self._cache.prune(max_mb)

    def clear_cache(self) -> int:
        """Drop every cache entry; returns the number removed."""
        return self._cache.clear() if self._cache is not None else 0

    # ------------------------------------------------------------------
    # cache keying and I/O
    # ------------------------------------------------------------------
    def cache_key(self, request: AllocationRequest) -> Optional[str]:
        """Stable cache key for ``request``; ``None`` if uncacheable."""
        if self.cache_dir is None:
            return None
        # The version mix-in means a persistent cache never serves
        # envelopes computed by older code.
        return versioned_content_key(request_content_key(request))

    def _cache_load(
        self, key: Optional[str], request: AllocationRequest
    ) -> Optional[AllocationResult]:
        if key is None or self._cache is None:
            return None
        text = self._cache.read(key)
        if text is None:
            return None
        from dataclasses import replace

        from ..io.json_io import allocation_result_from_dict

        try:
            result = allocation_result_from_dict(json.loads(text))
        except Exception:  # noqa: BLE001 -- any corrupt/wrong-shape
            # Drop the unusable entry (and recount the lookup as a
            # miss); the request falls through to a fresh run, which
            # re-caches a clean envelope.
            self._cache.invalidate(key)
            return None
        # The key excludes the label (it is bookkeeping, not content):
        # echo the *current* request's label, as a fresh run would.
        return replace(result, cached=True, label=request.label)

    def _cache_store(self, key: Optional[str], result: AllocationResult) -> None:
        if key is None or self._cache is None:
            return
        if result.error is not None and not result.error.startswith("infeasible"):
            return  # timeouts / validation failures are not deterministic facts
        from .. import __version__
        from ..io.json_io import allocation_result_to_dict

        self._cache.write(
            key,
            json.dumps(allocation_result_to_dict(result), sort_keys=True),
            version=__version__,
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, request: AllocationRequest) -> AllocationResult:
        """Execute one request (cache-aware).

        ``executor="pool"`` engines run it in-process; ``"process"``
        engines run it in a dedicated killable worker process, making
        ``request.timeout`` a hard deadline even for a single run.
        """
        key = self.cache_key(request)
        hit = self._cache_load(key, request)
        if hit is not None:
            return hit
        if self.executor == "process":
            (result,) = self._run_preemptive([request], workers=1)
        else:
            result = execute_request(request)
        self._cache_store(key, result)
        if self._cache is not None:
            self._cache.flush()
        return result

    def run_delta(self, request: DeltaRequest) -> AllocationResult:
        """Warm-start re-solve of an edited problem.

        Applies ``request.edits`` to the base problem (named by
        fingerprint or carried inline) and solves the edited problem by
        replaying the base solve's recorded iteration stream as far as
        the edits allow -- full replay for edits the recorded accept
        still satisfies, resumption from the verified prefix when the
        new deadline flips a feasibility check or shifts a refinement
        choice, and a scratch solve for edits whose footprint dirties
        the solver's reuse channels (wordlength/constraint edits) or on
        any detected divergence.

        The returned envelope is canonical-byte identical to what a
        cold :meth:`run` of the edited problem would produce; the
        strategy taken and the verified/resumed iteration counts ride
        in its non-canonical ``delta`` field.  Errors (unknown base
        fingerprint, invalid edits) come back as error envelopes, never
        exceptions.  Always executed in-process: a delta solve is
        expected to be far cheaper than a cold one.
        """
        from .replay import run_delta as _run_delta

        return _run_delta(self, request)

    def _run_preemptive(
        self, requests: Sequence[AllocationRequest], workers: int
    ) -> List[AllocationResult]:
        """Fresh runs through the process-per-run executor (stats kept)."""
        from .executor import ProcessPerRunExecutor

        runner = ProcessPerRunExecutor(workers=workers)
        try:
            return runner.run_many(requests)
        finally:
            with self._stats_lock:
                for name, value in runner.stats.items():
                    self.executor_stats[name] = (
                        self.executor_stats.get(name, 0) + value
                    )

    def run_batch(
        self,
        requests: Sequence[AllocationRequest],
        workers: Optional[int] = None,
        executor: Optional[str] = None,
    ) -> List[AllocationResult]:
        """Execute a batch; results align index-for-index with requests.

        ``executor`` overrides the engine's mode for this call.

        In ``"process"`` mode every fresh (non-cached) request runs in
        its own worker process -- at most ``workers`` live at a time --
        with a hard deadline measured from its *own* process start: a
        blown budget kills the worker, and queued requests never pay
        for an earlier hung solve.

        In ``"pool"`` mode, with ``workers > 1`` the fresh requests fan
        out over a ``ProcessPoolExecutor``; completion order never
        affects result order.  A request whose ``timeout`` expires
        while pooled yields a timeout envelope; the pool is then shut
        down without waiting (abandoned workers finish in the
        background -- CPython cannot preempt a running C-level solve).
        The pooled timeout clock starts when the parent begins waiting
        on that request, so time a request spends queued behind earlier
        requests counts against its budget; treat the pooled ``timeout``
        as a batch-latency bound, not a precise per-solve limit -- use
        ``executor="process"`` for a true per-solve budget.
        """
        count = workers if workers is not None else (self.workers or 1)
        if count < 1:
            raise ValueError(f"workers must be >= 1, got {count}")
        mode = executor if executor is not None else self.executor
        if mode not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {mode!r}")

        results: List[Optional[AllocationResult]] = [None] * len(requests)
        keys: List[Optional[str]] = [self.cache_key(r) for r in requests]
        fresh: List[int] = []
        for index, request in enumerate(requests):
            hit = self._cache_load(keys[index], request)
            if hit is not None:
                results[index] = hit
            else:
                fresh.append(index)

        # A single fresh request normally skips the pool -- unless the
        # caller asked for pooled execution AND a timeout, in which
        # case the pool is what makes the timeout preemptive (a hung
        # solver must not block the batch).
        wants_preemption = count > 1 and any(
            requests[index].timeout is not None for index in fresh
        )
        if mode == "process":
            if fresh:
                fresh_results = self._run_preemptive(
                    [requests[index] for index in fresh],
                    workers=min(count, len(fresh)),
                )
                for index, result in zip(fresh, fresh_results):
                    results[index] = result
        elif count <= 1 or (len(fresh) <= 1 and not wants_preemption):
            for index in fresh:
                results[index] = execute_request(requests[index])
        elif fresh:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=min(count, len(fresh))
            )
            timed_out = False
            try:
                futures = {
                    index: pool.submit(execute_request, requests[index])
                    for index in fresh
                }
                for index in fresh:
                    request = requests[index]
                    try:
                        results[index] = futures[index].result(
                            timeout=request.timeout
                        )
                    except concurrent.futures.TimeoutError:
                        futures[index].cancel()
                        timed_out = True
                        results[index] = _timeout_result(request)
                    except Exception as exc:  # noqa: BLE001
                        # Transport failures (unpicklable request,
                        # broken pool) envelope like any other failed
                        # case instead of discarding the whole batch.
                        results[index] = _error_result(request, exc)
            finally:
                # After a timeout, don't let shutdown block on the
                # abandoned worker -- that would defeat the budget.
                # Every envelope is already collected, so whatever is
                # still running in the pool is abandoned work: kill it
                # (snapshot first -- shutdown clears ``_processes``) so
                # neither interpreter exit (the atexit join) nor the OS
                # keeps paying for it.
                workers_snapshot = (
                    list((getattr(pool, "_processes", None) or {}).values())
                    if timed_out else []
                )
                pool.shutdown(wait=not timed_out, cancel_futures=timed_out)
                for process in workers_snapshot:
                    process.kill()

        for index in fresh:
            result = results[index]
            assert result is not None
            self._cache_store(keys[index], result)
        if self._cache is not None:
            self._cache.flush()  # one manifest write per batch, not per store
        assert all(r is not None for r in results)
        return list(results)  # type: ignore[arg-type]
