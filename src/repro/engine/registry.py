"""The allocator registry: one namespace for every allocation strategy.

Historically each consumer (CLI, experiments, benchmarks, examples) kept
its own dispatch table mapping method names to differently-shaped
callables -- ``allocate`` returns a :class:`~repro.core.solution.Datapath`
while the baselines return ``(Datapath, stats)`` tuples.  The registry
normalises all of them behind a single :class:`Allocator` calling
convention:

    fn(problem, **options) -> Datapath | (Datapath, extras_dict)

Strategies self-register with the :func:`register_allocator` decorator;
the six built-in strategies (dpalloc, ilp, two-stage, fds, clique-sort,
uniform) live in :mod:`repro.engine.adapters` and are loaded lazily on
first lookup so that ``import repro`` does not drag in the ILP solver
stack.

Registrations are per-process.  For strategies to be visible to
``Engine.run_batch`` pool workers on platforms whose multiprocessing
start method is ``spawn`` (macOS, Windows), register them at import
time of an importable module, not interactively in ``__main__`` --
``spawn`` children re-import modules and would only see the built-ins.
Linux's ``fork`` children inherit interactive registrations.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
    Union,
    runtime_checkable,
)


@runtime_checkable
class Allocator(Protocol):
    """Calling convention every registered strategy satisfies."""

    def __call__(
        self, problem: object, **options: object
    ) -> Union[object, Tuple[object, Dict]]:
        ...

__all__ = [
    "Allocator",
    "UnknownAllocatorError",
    "allocator_names",
    "get_allocator",
    "register_allocator",
    "unregister_allocator",
]

_REGISTRY: Dict[str, Allocator] = {}
_builtins_loaded = False


class UnknownAllocatorError(KeyError):
    """Lookup of an allocator name that was never registered."""

    def __init__(self, name: str, known: List[str]) -> None:
        super().__init__(name)
        self.name = name
        self.known = known

    def __str__(self) -> str:
        return (
            f"unknown allocator {self.name!r}; "
            f"registered: {', '.join(self.known) or '(none)'}"
        )


def register_allocator(name: str) -> Callable[[Allocator], Allocator]:
    """Class/function decorator adding a strategy under ``name``.

    The wrapped callable must accept ``(problem, **options)`` and return
    either a bare ``Datapath`` or ``(Datapath, extras)`` where ``extras``
    is a JSON-compatible dict of solver-specific statistics (ILP model
    sizes, binding optimality flags, ...).

    Raises:
        ValueError: ``name`` is empty or already taken (re-registering
            the *same* callable is allowed, so modules survive re-import).
    """

    if not name or not isinstance(name, str):
        raise ValueError(f"allocator name must be a non-empty string: {name!r}")

    def decorator(fn: Allocator) -> Allocator:
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not fn:
            raise ValueError(
                f"allocator {name!r} is already registered ({existing!r})"
            )
        _REGISTRY[name] = fn
        return fn

    return decorator


def _ensure_builtins() -> None:
    global _builtins_loaded
    if not _builtins_loaded:
        from . import adapters  # noqa: F401  (registers on import)

        # Only after a successful import: a failed attempt must retry
        # (and re-raise the real error) rather than leave the registry
        # permanently and silently empty.
        _builtins_loaded = True


def get_allocator(name: str) -> Allocator:
    """Look up a registered strategy.

    A built-in name that was removed with :func:`unregister_allocator`
    is restored on lookup (built-ins are never permanently lost to the
    process); a registered replacement under the same name wins over
    restoration.

    Raises:
        UnknownAllocatorError: no strategy is registered under ``name``.
    """
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        restored = _restore_builtin(name)
        if restored is not None:
            return restored
        raise UnknownAllocatorError(name, allocator_names()) from None


def _restore_builtin(name: str) -> Optional[Allocator]:
    """Re-register and return the built-in adapter for ``name``, if any.

    ``unregister_allocator`` on a built-in must not brick the registry
    for the rest of the process (historically ``_builtins_loaded``
    stayed ``True``, so the lazy loader never ran again and e.g.
    ``dpalloc`` was gone for good after a test teardown).  Restoration
    happens on lookup miss only: while a *different* callable is
    registered under the name (a plugin override), it wins.
    """
    from . import adapters

    fn = adapters.BUILTINS.get(name)
    if fn is not None:
        _REGISTRY[name] = fn
    return fn


def allocator_names() -> List[str]:
    """Sorted names of every registered strategy."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def unregister_allocator(name: str) -> None:
    """Remove a registered strategy (plugin teardown, test isolation).

    Raises:
        UnknownAllocatorError: no strategy is registered under ``name``.
    """
    _ensure_builtins()
    if name not in _REGISTRY:
        raise UnknownAllocatorError(name, allocator_names())
    del _REGISTRY[name]
