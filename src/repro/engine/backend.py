"""The v1 Backend protocol: one surface for local and remote execution.

Everything that can execute allocation work -- the in-process
:class:`~repro.engine.Engine`, the asyncio front-end
:class:`~repro.service.AsyncEngine`, and the HTTP
:class:`~repro.service.ServiceClient` -- satisfies one structural
protocol::

    class Backend(Protocol):
        def run(request: AllocationRequest) -> AllocationResult
        def run_delta(request: DeltaRequest) -> AllocationResult
        def run_batch(requests: Sequence[AllocationRequest],
                      workers: int | None = None) -> list[AllocationResult]

with identical envelope semantics: solver-level failures (infeasible,
timeout, invalid, crashed worker) are ``error`` fields of a returned
envelope, never exceptions, and the canonical JSON of a result is
byte-identical whichever backend produced it.  Consumers -- the CLI
subcommands (``allocate``/``batch``/``compare``/``delta`` all take
``--url``), the experiment drivers, the tests -- accept
local-or-remote interchangeably and stop caring which one they hold.

:class:`AsyncEngine` satisfies the same protocol with ``await``-able
methods (structural check only looks at method presence); await its
returns from an event loop.

``isinstance(backend, Backend)`` works at runtime (the protocol is
``runtime_checkable``); it checks method presence, not signatures, so
the signature contract is additionally pinned by
``tests/test_service.py::TestBackendProtocol``.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, runtime_checkable

from .results import AllocationRequest, AllocationResult, DeltaRequest

__all__ = ["Backend"]


@runtime_checkable
class Backend(Protocol):
    """Anything that executes allocation work and returns envelopes."""

    def run(self, request: AllocationRequest) -> AllocationResult:
        """Execute one request; failures are envelope fields."""
        ...  # pragma: no cover -- protocol

    def run_delta(self, request: DeltaRequest) -> AllocationResult:
        """Warm-start re-solve of an edited problem."""
        ...  # pragma: no cover -- protocol

    def run_batch(
        self,
        requests: Sequence[AllocationRequest],
        workers: Optional[int] = None,
    ) -> List[AllocationResult]:
        """Execute a batch; results align index-for-index with requests.

        ``workers`` is advisory: the local engine uses it as its
        fan-out width, remote backends let the server's own concurrency
        bound decide.
        """
        ...  # pragma: no cover -- protocol
