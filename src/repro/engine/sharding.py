"""Shardable sweeps: partition, run anywhere, merge deterministically.

A large wordlength-configuration sweep (thousands of problem x strategy
requests) does not fit one host.  This module splits such a sweep into
``N`` independent **shard manifests**, lets each shard run on its own
host or process (any ``Engine`` configuration -- pool, process-per-run,
cached), and merges the per-shard envelope files back into one
index-ordered batch result that is canonically identical to an
unsharded :meth:`Engine.run_batch` of the same requests.

Partitioning is deterministic and content-addressed: a request lands on
shard ``int(Problem.fingerprint()[:16], 16) % N``.  Two consequences:

* re-sharding the same sweep always produces the same partition -- no
  coordinator state to persist;
* every strategy run of the *same problem* lands on the same shard, so
  a shard-local result cache gets all the locality there is.

File formats (JSON, written via :func:`repro.io.save_json`):

* shard manifest: ``{"kind": "shard-manifest", "shard": i,
  "num_shards": N, "total": T, "entries": [{"index": j, "request":
  <allocation-request>}, ...]}``
* shard results: ``{"kind": "shard-results", ...same header...,
  "results": [{"index": j, "result": <allocation-result>}, ...]}``

``index`` is the request's position in the *original* unsharded list;
the merge orders by it and verifies exact coverage (every index once,
consistent headers), so a missing or doubled shard fails loudly instead
of silently reordering a sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .results import AllocationRequest, AllocationResult

if TYPE_CHECKING:  # imported lazily at runtime to avoid import cycles
    from .engine import Engine

__all__ = [
    "ShardManifest",
    "load_shard_manifest",
    "merge_shard_results",
    "partition_requests",
    "run_shard",
    "shard_of",
    "write_shard_manifests",
]

PathLike = Union[str, Path]

MANIFEST_KIND = "shard-manifest"
RESULTS_KIND = "shard-results"


def shard_of(fingerprint: str, num_shards: int) -> int:
    """Deterministic shard index for a ``Problem.fingerprint()`` value."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    return int(fingerprint[:16], 16) % num_shards


def partition_requests(
    requests: Sequence[AllocationRequest], num_shards: int
) -> List[List[int]]:
    """Partition request *indices* into ``num_shards`` buckets.

    Requests whose problems cannot be fingerprinted (models without a
    content-stable identity) cannot be sharded; the underlying
    ``ValueError`` propagates.
    """
    shards: List[List[int]] = [[] for _ in range(max(num_shards, 1))]
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    for index, request in enumerate(requests):
        shards[shard_of(request.problem.fingerprint(), num_shards)].append(index)
    return shards


@dataclass(frozen=True)
class ShardManifest:
    """One shard's worth of a sweep: original indices + their requests."""

    shard: int
    num_shards: int
    total: int
    indices: Tuple[int, ...]
    requests: Tuple[AllocationRequest, ...]

    def to_dict(self) -> Dict[str, Any]:
        from ..io.json_io import allocation_request_to_dict

        return {
            "kind": MANIFEST_KIND,
            "shard": self.shard,
            "num_shards": self.num_shards,
            "total": self.total,
            "entries": [
                {"index": index, "request": allocation_request_to_dict(request)}
                for index, request in zip(self.indices, self.requests)
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardManifest":
        if data.get("kind") != MANIFEST_KIND:
            raise ValueError(
                f"not a shard-manifest payload: {data.get('kind')!r}"
            )
        from ..io.json_io import allocation_request_from_dict

        entries = data["entries"]
        return cls(
            shard=int(data["shard"]),
            num_shards=int(data["num_shards"]),
            total=int(data["total"]),
            indices=tuple(int(entry["index"]) for entry in entries),
            requests=tuple(
                allocation_request_from_dict(entry["request"])
                for entry in entries
            ),
        )


def write_shard_manifests(
    requests: Sequence[AllocationRequest],
    num_shards: int,
    out_dir: PathLike,
    stem: str = "shard",
) -> List[Path]:
    """Partition ``requests`` and write one manifest file per shard.

    Every shard file is written -- an empty shard still produces a
    (zero-entry) manifest, so downstream tooling can run/merge shard
    ``0..N-1`` unconditionally.  Returns the manifest paths in shard
    order.
    """
    from ..io.json_io import save_json

    partition = partition_requests(requests, num_shards)
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    width = max(2, len(str(num_shards - 1)))
    paths: List[Path] = []
    for shard, indices in enumerate(partition):
        manifest = ShardManifest(
            shard=shard,
            num_shards=num_shards,
            total=len(requests),
            indices=tuple(indices),
            requests=tuple(requests[index] for index in indices),
        )
        path = directory / f"{stem}-{shard:0{width}d}.json"
        save_json(manifest.to_dict(), path)
        paths.append(path)
    return paths


def load_shard_manifest(path: PathLike) -> ShardManifest:
    """Read one manifest written by :func:`write_shard_manifests`."""
    from ..io.json_io import load_json

    return ShardManifest.from_dict(load_json(path))


def run_shard(
    manifest: ShardManifest,
    engine: Optional["Engine"] = None,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
) -> Dict[str, Any]:
    """Execute one shard and return its results payload.

    ``engine`` defaults to a fresh :class:`~repro.engine.engine.Engine`;
    pass a configured one to use a shard-local cache or the
    process-per-run executor fleet-wide.
    """
    from ..io.json_io import allocation_result_to_dict
    from .engine import Engine

    runner = engine if engine is not None else Engine()
    results = runner.run_batch(
        list(manifest.requests), workers=workers, executor=executor
    )
    return {
        "kind": RESULTS_KIND,
        "shard": manifest.shard,
        "num_shards": manifest.num_shards,
        "total": manifest.total,
        "results": [
            {"index": index, "result": allocation_result_to_dict(result)}
            for index, result in zip(manifest.indices, results)
        ],
    }


def merge_shard_results(
    payloads: Iterable[Dict[str, Any]]
) -> List[AllocationResult]:
    """Merge shard-results payloads into one index-ordered result list.

    Verifies the payloads describe the same sweep (consistent
    ``num_shards``/``total`` headers, no shard seen twice) and cover it
    exactly (every index ``0..total-1`` once).  Returns envelopes in
    original request order -- canonically identical to an unsharded
    ``run_batch``.

    Raises:
        ValueError: inconsistent headers, duplicate shards/indices, or
            missing indices.
    """
    from ..io.json_io import allocation_result_from_dict

    header: Optional[Tuple[int, int]] = None
    seen_shards: Dict[int, int] = {}
    collected: Dict[int, AllocationResult] = {}
    count = 0
    for payload in payloads:
        count += 1
        if not isinstance(payload, dict) or payload.get("kind") != RESULTS_KIND:
            kind = payload.get("kind") if isinstance(payload, dict) else payload
            raise ValueError(f"not a shard-results payload: {kind!r}")
        try:
            this_header = (int(payload["num_shards"]), int(payload["total"]))
        except (KeyError, TypeError, ValueError):
            raise ValueError(
                "malformed shard-results payload: missing or non-integer "
                "num_shards/total header"
            ) from None
        if header is None:
            header = this_header
        elif this_header != header:
            raise ValueError(
                f"shard payloads disagree: expected (num_shards, total)="
                f"{header}, got {this_header}"
            )
        try:
            shard = int(payload["shard"])
            entries = payload["results"]
            if not isinstance(entries, list):
                raise TypeError
        except (KeyError, TypeError, ValueError):
            raise ValueError(
                "malformed shard-results payload: missing shard id or "
                "results list"
            ) from None
        if shard in seen_shards:
            raise ValueError(f"shard {shard} appears more than once")
        seen_shards[shard] = len(entries)
        for entry in entries:
            try:
                index = int(entry["index"])
                result = allocation_result_from_dict(entry["result"])
            except ValueError:
                raise
            except (KeyError, TypeError) as exc:
                raise ValueError(
                    f"malformed shard-results entry in shard {shard}: {exc!r}"
                ) from None
            if index in collected:
                raise ValueError(f"request index {index} appears twice")
            collected[index] = result
    if count == 0:
        raise ValueError("no shard-results payloads to merge")
    assert header is not None
    total = header[1]
    missing = [index for index in range(total) if index not in collected]
    if missing:
        raise ValueError(
            f"incomplete merge: {len(missing)}/{total} request indices "
            f"missing (e.g. {missing[:5]}); expected {header[0]} shards, "
            f"got {sorted(seen_shards)}"
        )
    return [collected[index] for index in range(total)]
