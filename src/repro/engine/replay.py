"""Warm-start delta solves: replay artifacts and ``Engine.run_delta``.

The core machinery lives in :mod:`repro.core.delta` (edit model,
verified replay walk); this module is the engine-side plumbing around
it:

**Replay artifacts.**  A successful (or deterministically infeasible)
``dpalloc`` solve can be recorded (:class:`repro.core.solver.
ReplayRecorder`) and stored as a *replay artifact*: the problem, the
option set, the per-iteration record stream, and the result envelope,
all JSON.  Artifacts are keyed like result-cache entries -- content key
of ``(problem fingerprint, "dpalloc", options)`` plus the package
version -- and stored in the engine's :class:`~repro.engine.cache.
ResultCache` when one is configured, else in a small bounded in-memory
store.  Loads are gated on the ``kind`` and ``schema`` discriminators:
an entry written by an older schema (or any foreign payload) is a
cache *miss*, never a crash -- ``run_delta`` falls back to a scratch
solve and overwrites it.

**The orchestration** (:func:`run_delta`).  Given a
:class:`~repro.engine.results.DeltaRequest`:

1. load the base artifact, or *prime* it with one recorded cold solve
   when the request carries the base :class:`~repro.core.problem.
   Problem` (a fingerprint-only request with no artifact is an error
   envelope -- the engine has nothing to replay);
2. apply the edits (:func:`repro.core.delta.apply_edits`); a no-op
   sequence (edited fingerprint == base fingerprint) returns the base
   envelope as-is;
3. serve the edited request from the result cache when possible;
4. when the edit footprint leaves the recorded stream replayable
   (deadline-only edits -- see :meth:`repro.core.delta.EditFootprint.
   replayable`), run the verified replay walk and resume the solve
   loop from the verified prefix; otherwise, or on any divergence the
   walk cannot bridge, fall back to a recorded scratch solve;
5. store a replay artifact for the *edited* problem, so successive
   edits chain warmly, and cache the envelope.

Every envelope ``run_delta`` returns is required canonical-byte
identical to a cold solve of the edited problem -- the differential
fuzz harness (``tools/fuzz_delta.py``) enforces exactly that.  The
warm-start provenance (strategy taken, verified/resumed iteration
counts) rides in the non-canonical ``delta`` field.

Concurrency: artifact stores are idempotent (same key -> same bytes),
so concurrent ``run_delta`` calls against one engine at worst duplicate
a solve, never corrupt state; the in-memory store takes a lock.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, replace
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Tuple

from ..analysis.validate import ValidationError, validate_datapath
from ..core.delta import apply_edits, edits_footprint, replay_solve
from ..core.problem import InfeasibleError, Problem
from ..core.solver import DPAllocOptions, ReplayRecorder, run_pipeline
from .engine import content_key_from_fingerprint, execute_request
from .results import AllocationRequest, AllocationResult, DeltaRequest

if TYPE_CHECKING:
    from .engine import Engine

__all__ = [
    "DELTA_ALLOCATOR",
    "REPLAY_KIND",
    "REPLAY_MEMORY_BOUND",
    "REPLAY_SCHEMA",
    "replay_key",
    "run_delta",
]

REPLAY_KIND = "delta-replay"
REPLAY_SCHEMA = 1

# Delta solves are a DPAlloc capability: the replay records are the
# solver's own iteration stream, meaningless to the one-shot baselines.
DELTA_ALLOCATOR = "dpalloc"

# Entry bound of the in-memory artifact store (engines without a
# cache_dir).  FIFO: priming a long interactive session evicts the
# oldest bases first.
REPLAY_MEMORY_BOUND = 256


def replay_key(
    fingerprint: str, options: Mapping[str, Any]
) -> Optional[str]:
    """Storage key for the replay artifact of ``(base, options)``.

    Same identity as the result cache -- content key plus package
    version, with a ``:replay:`` discriminator so an artifact can never
    collide with the envelope entry of the same solve.  ``None`` when
    the options have no JSON identity (such solves are unrecordable).
    """
    content = content_key_from_fingerprint(
        fingerprint, DELTA_ALLOCATOR, options
    )
    if content is None:
        return None
    from .. import __version__

    return hashlib.sha256(
        f"{content}:replay:{__version__}".encode("utf-8")
    ).hexdigest()


# ----------------------------------------------------------------------
# artifact I/O
# ----------------------------------------------------------------------

def _artifact_payload(
    problem: Problem,
    options: Mapping[str, Any],
    records: List[Dict[str, Any]],
    envelope: AllocationResult,
) -> Dict[str, Any]:
    from ..io.json_io import allocation_result_to_dict, problem_to_dict

    return {
        "kind": REPLAY_KIND,
        "schema": REPLAY_SCHEMA,
        "problem": problem_to_dict(problem),
        "options": dict(options),
        "records": [dict(record) for record in records],
        # The envelope lives *in* the artifact so a full replay stays
        # serveable even after the result cache evicted the base entry.
        "envelope": allocation_result_to_dict(
            replace(envelope, delta=None, label=None)
        ),
    }


def _parse_artifact(payload: Any) -> Optional[Dict[str, Any]]:
    """Decode an artifact payload; ``None`` for anything unusable.

    The ``kind``/``schema`` gate is what keeps old caches loadable:
    entries written before the delta-replay schema (or by a future
    one) simply miss, and the caller re-solves and overwrites.
    """
    if (
        not isinstance(payload, dict)
        or payload.get("kind") != REPLAY_KIND
        or payload.get("schema") != REPLAY_SCHEMA
    ):
        return None
    from ..io.json_io import allocation_result_from_dict, problem_from_dict

    try:
        return {
            "problem": problem_from_dict(payload["problem"]),
            "options": dict(payload.get("options") or {}),
            "records": [dict(r) for r in payload.get("records") or ()],
            "envelope": allocation_result_from_dict(payload["envelope"]),
        }
    except Exception:  # noqa: BLE001 -- any malformed field is a miss
        return None


def _load_artifact(
    engine: "Engine", key: Optional[str]
) -> Optional[Dict[str, Any]]:
    if key is None:
        return None
    if engine._cache is not None:
        text = engine._cache.read(key)
        if text is None:
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            engine._cache.invalidate(key)
            return None
        artifact = _parse_artifact(payload)
        if artifact is None:
            # Parseable JSON that is not a current-schema artifact
            # (pre-schema entry, foreign payload): reclaim the slot.
            engine._cache.invalidate(key)
        return artifact
    with engine._replay_lock:
        payload = engine._replay_memory.get(key)
    if payload is None:
        return None
    artifact = _parse_artifact(payload)
    if artifact is None:
        with engine._replay_lock:
            engine._replay_memory.pop(key, None)
    return artifact


def _store_artifact(
    engine: "Engine",
    key: Optional[str],
    problem: Problem,
    options: Mapping[str, Any],
    records: List[Dict[str, Any]],
    envelope: AllocationResult,
) -> None:
    if key is None:
        return
    payload = _artifact_payload(problem, options, records, envelope)
    if engine._cache is not None:
        from .. import __version__

        engine._cache.write(
            key, json.dumps(payload, sort_keys=True), version=__version__
        )
        return
    with engine._replay_lock:
        memory = engine._replay_memory
        memory.pop(key, None)  # refresh insertion order on overwrite
        memory[key] = payload
        while len(memory) > REPLAY_MEMORY_BOUND:
            memory.pop(next(iter(memory)))


def _storable(result: AllocationResult) -> bool:
    """Same policy as the result cache: deterministic outcomes only.

    Infeasible bases are worth keeping -- their record stream is a
    valid replay prefix for a *relaxed* deadline edit.
    """
    return result.error is None or result.error.startswith("infeasible")


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------

def _execute_recorded(
    request: AllocationRequest,
) -> Tuple[AllocationResult, Optional[List[Dict[str, Any]]]]:
    """:func:`~repro.engine.engine.execute_request`, with recording.

    A byte-parity mirror of ``execute_request`` running the ``dpalloc``
    adapter -- same envelope construction, same error strings -- that
    additionally threads a :class:`ReplayRecorder` through the pass
    pipeline.  ``mode="best"`` (two pipelines race; no single record
    stream exists) delegates to the plain path and returns no records.
    """
    options = dict(request.options)
    if options.get("mode") == "best":
        return execute_request(request), None
    recorder = ReplayRecorder()
    began = time.perf_counter()
    datapath = None
    extras: Dict[str, Any] = {}
    error: Optional[str] = None
    try:
        opts = DPAllocOptions(**options) if options else None
        datapath = run_pipeline(request.problem, opts, recorder=recorder)
        extras = {"options": asdict(opts)} if opts else {}
        if datapath.trace:
            extras["trace_events"] = len(datapath.trace)
    except InfeasibleError as exc:
        error = f"infeasible: {exc}"
    except Exception as exc:  # noqa: BLE001 -- envelope, never raise
        error = f"error: {type(exc).__name__}: {exc}"
    seconds = time.perf_counter() - began
    valid: Optional[bool] = None
    if datapath is not None:
        try:
            validate_datapath(request.problem, datapath)
            valid = True
        except ValidationError as exc:
            valid = False
            error = f"invalid: {exc}"
    result = AllocationResult(
        allocator=request.allocator,
        datapath=datapath,
        seconds=seconds,
        iterations=datapath.iterations if datapath is not None else 0,
        valid=valid,
        error=error,
        extras=extras,
        label=request.label,
    )
    return result, recorder.records


def _delta_error(
    request: DeltaRequest, message: str, began: float, meta: Dict[str, Any]
) -> AllocationResult:
    """Typed error envelope for requests that never reach a solve."""
    return AllocationResult(
        allocator=DELTA_ALLOCATOR,
        datapath=None,
        seconds=time.perf_counter() - began,
        iterations=0,
        valid=None,
        error=message,
        extras={},
        label=request.label,
        delta={**meta, "strategy": "error"},
    )


def _finish(engine: "Engine", result: AllocationResult) -> AllocationResult:
    if engine._cache is not None:
        engine._cache.flush()  # one manifest write per delta request
    return result


def run_delta(engine: "Engine", request: DeltaRequest) -> AllocationResult:
    """Warm-start solve of ``request``; see :meth:`Engine.run_delta`."""
    began = time.perf_counter()
    base_fp = request.fingerprint()
    options = dict(request.options)
    meta: Dict[str, Any] = {
        "base_fingerprint": base_fp,
        "edits": len(request.edits),
    }

    base_key = replay_key(base_fp, options)
    artifact = _load_artifact(engine, base_key)
    if artifact is None:
        if request.base_problem is None:
            return _delta_error(
                request,
                f"delta: no replay artifact for base {base_fp} "
                "(supply base_problem to prime one)",
                began,
                meta,
            )
        # Prime: one recorded cold solve of the base.  Its envelope is
        # cached like any ordinary run of the same request would be.
        base_request = AllocationRequest(
            problem=request.base_problem,
            allocator=DELTA_ALLOCATOR,
            options=request.options,
            label=request.label,
        )
        primed_env, primed_records = _execute_recorded(base_request)
        engine._cache_store(engine.cache_key(base_request), primed_env)
        if primed_records is not None and _storable(primed_env):
            _store_artifact(
                engine, base_key, request.base_problem, options,
                primed_records, primed_env,
            )
        artifact = {
            "problem": request.base_problem,
            "options": options,
            "records": primed_records or [],
            "envelope": primed_env,
        }
        meta["primed"] = True

    base_problem: Problem = artifact["problem"]
    base_env: AllocationResult = artifact["envelope"]
    records: List[Dict[str, Any]] = artifact["records"]

    try:
        edited = apply_edits(base_problem, request.edits)
    except (KeyError, TypeError, ValueError) as exc:
        return _finish(engine, _delta_error(
            request, f"delta: {type(exc).__name__}: {exc}", began, meta
        ))

    if edited.fingerprint() == base_fp:
        # No-op sequence (including an empty one, the priming idiom):
        # the base envelope *is* the cold solve of the edited problem.
        return _finish(engine, replace(
            base_env,
            cached=False,
            label=request.label,
            delta={**meta, "strategy": "noop"},
        ))

    alloc_request = AllocationRequest(
        problem=edited,
        allocator=DELTA_ALLOCATOR,
        options=request.options,
        label=request.label,
    )
    cache_key = engine.cache_key(alloc_request)
    hit = engine._cache_load(cache_key, alloc_request)
    if hit is not None:
        return _finish(engine, replace(
            hit, delta={**meta, "strategy": "cache"}
        ))

    footprint = edits_footprint(request.edits, base_problem)
    outcome = None
    opts: Optional[DPAllocOptions] = None
    if (
        footprint.replayable
        and records
        and options.get("mode") != "best"
    ):
        try:
            opts = DPAllocOptions(**options) if options else None
            outcome = replay_solve(edited, opts, None, records)
        except Exception:  # noqa: BLE001 -- malformed records and the
            # like degrade to a scratch solve, never to a failed request
            outcome = None

    new_records: Optional[List[Dict[str, Any]]]
    if outcome is not None:
        meta.update(
            strategy=outcome.strategy,
            verified_iterations=outcome.verified_iterations,
            resumed_iterations=outcome.resumed_iterations,
        )
        seconds = time.perf_counter() - began
        if outcome.strategy == "replay":
            # Full replay: the recorded base datapath is, provably, the
            # cold solve of the edited problem.
            result = replace(
                base_env,
                seconds=seconds,
                cached=False,
                label=request.label,
                delta=dict(meta),
            )
            new_records = outcome.records
        elif outcome.datapath is None:
            # Infeasible continuation: same envelope a cold solve's
            # InfeasibleError would produce.
            result = AllocationResult(
                allocator=DELTA_ALLOCATOR,
                datapath=None,
                seconds=seconds,
                iterations=0,
                valid=None,
                error=f"infeasible: {outcome.error}",
                extras={},
                label=request.label,
                delta=dict(meta),
            )
            new_records = None
        else:
            datapath = outcome.datapath
            extras: Dict[str, Any] = (
                {"options": asdict(opts)} if opts else {}
            )
            if datapath.trace:
                extras["trace_events"] = len(datapath.trace)
            error: Optional[str] = None
            valid: Optional[bool] = None
            try:
                validate_datapath(edited, datapath)
                valid = True
            except ValidationError as exc:
                valid = False
                error = f"invalid: {exc}"
            result = AllocationResult(
                allocator=DELTA_ALLOCATOR,
                datapath=datapath,
                seconds=seconds,
                iterations=datapath.iterations,
                valid=valid,
                error=error,
                extras=extras,
                label=request.label,
                delta=dict(meta),
            )
            new_records = outcome.records
    else:
        result, new_records = _execute_recorded(alloc_request)
        result = replace(result, delta={**meta, "strategy": "scratch"})

    if new_records is not None and _storable(result):
        _store_artifact(
            engine,
            replay_key(edited.fingerprint(), options),
            edited,
            options,
            new_records,
            result,
        )
    engine._cache_store(cache_key, result)
    return _finish(engine, result)
