"""Registry adapters for the six built-in allocation strategies.

Each adapter normalises one historical entry point onto the registry's
``(problem, **options) -> Datapath | (Datapath, extras)`` convention.
The original ``allocate_*`` functions remain the working internals and
stay importable from their home modules; nothing here re-implements
algorithmic behaviour.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, Optional, Tuple

from ..core.dpalloc import DPAllocOptions, allocate
from ..core.problem import Problem
from ..core.solution import Datapath
from .registry import register_allocator

__all__ = ["dpalloc", "ilp", "two_stage", "fds", "clique_sort", "uniform"]


@register_allocator("dpalloc")
def dpalloc(problem: Problem, **options: object) -> Tuple[Datapath, Dict]:
    """The paper's heuristic; options are :class:`DPAllocOptions` fields.

    Runs through the :mod:`repro.core.solver` pass pipeline
    (incremental by default; ``REPRO_SOLVER=scratch`` recomputes every
    iteration from scratch with byte-identical canonical results).
    ``options={"trace": True}`` attaches the per-iteration
    :class:`~repro.core.solution.TraceEvent` sequence to the datapath.
    """
    opts = DPAllocOptions(**options) if options else None
    datapath = allocate(problem, opts)
    extras = {"options": asdict(opts)} if opts else {}
    if datapath.trace:
        extras["trace_events"] = len(datapath.trace)
    return datapath, extras


@register_allocator("ilp")
def ilp(
    problem: Problem, time_limit: Optional[float] = None
) -> Tuple[Datapath, Dict]:
    """Optimal time-indexed MILP [5]; ``time_limit`` in seconds (HiGHS)."""
    from ..baselines.ilp import allocate_ilp

    datapath, stats = allocate_ilp(problem, time_limit=time_limit)
    return datapath, {
        "num_variables": stats.num_variables,
        "num_constraints": stats.num_constraints,
        "solve_seconds": stats.solve_seconds,
    }


@register_allocator("two-stage")
def two_stage(
    problem: Problem, dp_limit: int = 13, node_budget: int = 200_000
) -> Tuple[Datapath, Dict]:
    """Two-stage wordlength-blind schedule + optimal binding [4]."""
    from ..baselines.two_stage import allocate_two_stage

    datapath, report = allocate_two_stage(
        problem, dp_limit=dp_limit, node_budget=node_budget
    )
    return datapath, {
        "optimal": report.optimal,
        "classes": report.classes,
        "largest_class": report.largest_class,
    }


@register_allocator("fds")
def fds(
    problem: Problem, dp_limit: int = 13, node_budget: int = 200_000
) -> Tuple[Datapath, Dict]:
    """Force-directed scheduling + optimal no-latency-increase binding."""
    from ..baselines.fds import allocate_fds

    datapath, report = allocate_fds(
        problem, dp_limit=dp_limit, node_budget=node_budget
    )
    return datapath, {
        "optimal": report.optimal,
        "classes": report.classes,
        "largest_class": report.largest_class,
    }


@register_allocator("clique-sort")
def clique_sort(problem: Problem) -> Datapath:
    """Descending-wordlength clique partitioning [14]."""
    from ..baselines.clique_sort import allocate_clique_sort

    return allocate_clique_sort(problem)


@register_allocator("uniform")
def uniform(problem: Problem) -> Datapath:
    """Uniform-wordlength (DSP-processor style) allocation."""
    from ..baselines.uniform import allocate_uniform

    return allocate_uniform(problem)


# Canonical name -> adapter mapping.  The registry uses this to restore
# a built-in that was removed with ``unregister_allocator`` (test
# teardown, plugin experiments): a lookup miss on one of these names
# re-registers the adapter instead of failing for the rest of the
# process.
BUILTINS = {
    "dpalloc": dpalloc,
    "ilp": ilp,
    "two-stage": two_stage,
    "fds": fds,
    "clique-sort": clique_sort,
    "uniform": uniform,
}
