"""Problem definition for combined scheduling/binding/wordlength selection.

A :class:`Problem` bundles everything the paper's Algorithm DPAlloc (and
each baseline) consumes: the sequencing graph ``P(O,S)``, the overall
latency constraint ``lambda``, the technology models, and optional
resource-count constraints ``N_y`` per resource kind (section 2.2).  The
paper's area-minimisation experiments leave the counts unconstrained.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

from ..ir.ops import Operation
from ..ir.seqgraph import SequencingGraph
from ..resources.area import AreaModel, SonicAreaModel
from ..resources.extraction import dedicated_resource, extract_resource_set
from ..resources.latency import LatencyModel, SonicLatencyModel
from ..resources.types import ResourceType

__all__ = ["Problem", "InfeasibleError"]


class InfeasibleError(RuntimeError):
    """No datapath satisfying the constraints exists (or was found)."""


@dataclass(frozen=True)
class Problem:
    """One allocation problem instance.

    Attributes:
        graph: the sequencing graph ``P(O, S)``.
        latency_constraint: the user-specified overall latency ``lambda``
            (cycles).
        latency_model: cycles per resource type (default: the paper's
            SONIC model).
        area_model: area per resource type (default: reconstruction of
            ref. [5]'s model).
        resource_constraints: optional ``N_y`` upper bounds on the number
            of units per resource *kind*; ``None`` means unconstrained,
            matching the paper's experiments.
    """

    graph: SequencingGraph
    latency_constraint: int
    latency_model: LatencyModel = field(default_factory=SonicLatencyModel)
    area_model: AreaModel = field(default_factory=SonicAreaModel)
    resource_constraints: Optional[Mapping[str, int]] = None

    def __post_init__(self) -> None:
        if self.latency_constraint < 1:
            raise ValueError("latency constraint must be >= 1 cycle")
        if self.resource_constraints is not None:
            bad = {k: v for k, v in self.resource_constraints.items() if v < 1}
            if bad:
                raise ValueError(f"resource constraints must be >= 1: {bad}")

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def resource_set(self, prune: bool = True) -> Tuple[ResourceType, ...]:
        """Candidate resource types ``R`` extracted from the operation set."""
        return extract_resource_set(
            self.graph.operations,
            latency_model=self.latency_model,
            area_model=self.area_model,
            prune=prune,
        )

    def min_op_latency(self, op: Operation) -> int:
        """Latency of ``op`` on its dedicated (exact-wordlength) resource."""
        return self.latency_model.latency(dedicated_resource(op))

    def minimum_latency(self) -> int:
        """``lambda_min``: tightest achievable constraint for this graph."""
        return self.graph.minimum_latency(self.min_op_latency)

    def with_latency_constraint(self, value: int) -> "Problem":
        """A copy of this problem with a different ``lambda``."""
        return replace(self, latency_constraint=value)

    def min_latencies(self) -> Dict[str, int]:
        """Per-operation minimum latencies (dedicated resources)."""
        return {op.name: self.min_op_latency(op) for op in self.graph.operations}

    def fingerprint(self) -> str:
        """Stable content hash of this problem instance.

        Built on the canonical JSON serialisation of the graph plus the
        constraints and the model identities, so equal problems -- even
        ones constructed in different processes or sessions -- hash
        identically.  The engine's on-disk result cache and any future
        sharding layer key on this value.

        Models are identified by ``repr``; the built-in frozen-dataclass
        models (``SonicLatencyModel``, ``SonicAreaModel``, parameterised
        or not) therefore fingerprint stably.  Models whose ``repr``
        embeds a memory address (e.g. ``TableLatencyModel`` holding
        plain functions or lambdas) have **no stable content identity**
        -- addresses recur across and even within processes -- so
        fingerprinting them raises instead of returning a hash that
        could collide with a semantically different model; the engine
        treats such problems as uncacheable.

        The hash is memoized per instance (the dataclass is frozen, so
        the content cannot change): batch sweeps that submit the same
        problem under many strategies pay the graph serialisation once.

        Raises:
            ValueError: a model's ``repr`` is not content-stable.
        """
        cached = getattr(self, "_fingerprint_cache", None)
        if cached is not None:
            return cached

        from ..io.json_io import graph_to_dict

        for role, model in (
            ("latency_model", self.latency_model),
            ("area_model", self.area_model),
        ):
            if re.search(r" at 0x[0-9a-fA-F]+", repr(model)):
                raise ValueError(
                    f"{role} {type(model).__name__} has no content-stable "
                    f"repr (it embeds a memory address); give the model a "
                    f"deterministic __repr__ to make this problem "
                    f"fingerprintable/cacheable"
                )

        payload = {
            "graph": graph_to_dict(self.graph),
            "latency_constraint": self.latency_constraint,
            "latency_model": repr(self.latency_model),
            "area_model": repr(self.area_model),
            "resource_constraints": (
                sorted(self.resource_constraints.items())
                if self.resource_constraints is not None
                else None
            ),
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        object.__setattr__(self, "_fingerprint_cache", digest)
        return digest
