"""Combined resource binding and wordlength selection (paper section 2.3).

Given a schedule, binding partitions the operations into cliques of the
compatibility graph ``G'(O, C)``; each clique becomes one physical
resource instance whose wordlength must cover every member (Eqn. 4), and
the cost of a binding is the summed area of the cliques' resources
(Eqn. 5).  This is weighted unate covering (Eqn. 6), tackled with an
*implicit* adaptation of Chvátal's greedy heuristic [1]:

* columns (cliques) are never enumerated -- at each step only the
  maximum clique per resource type matters, because all cliques of a
  type cost the same and the greedy criterion is |clique| / cost;
* ``C`` is an interval order (derived from the schedule with latency
  upper bounds), so ``G'(O,C)`` restricted to ``O(r)`` is transitively
  oriented and a maximum clique is a maximum *chain*, found by dynamic
  programming in near-linear time (Golumbic [11]);
* after each selection the new clique is *grown* over previously selected
  cliques: if the union is still a chain and coverable by a single
  resource type, the earlier clique's unit is deleted -- the paper's
  compensation for greedy short-sightedness.

A final wordlength-selection pass implements each clique in the cheapest
resource type compatible (via current ``H`` edges) with all members;
``H`` membership guarantees the resource is never slower than the latency
upper bounds used by the scheduler, so the schedule remains valid.

**Incremental Bindselect** (see ``docs/architecture.md``): the max-chain
kernel is a pure function of the candidate tuple and its members'
``(start, L_o)`` values, so the solver pipeline persists a
:class:`ChainCache` across iterations and replays unchanged chains
verbatim, invalidating only chains touching operations whose schedule
position or latency bound the last refinement actually moved.
``REPRO_SOLVER=scratch`` bypasses the cache; both paths are
byte-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..resources.area import AreaModel
from ..resources.types import ResourceType
from .wcg import WordlengthCompatibilityGraph

__all__ = ["BoundClique", "Binding", "ChainCache", "max_chain", "bindselect"]


@dataclass(frozen=True)
class BoundClique:
    """One physical resource instance and the operations bound to it."""

    resource: ResourceType
    ops: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.ops)


@dataclass(frozen=True)
class Binding:
    """A complete binding: cliques plus convenience lookups."""

    cliques: Tuple[BoundClique, ...]

    def resource_of(self, name: str) -> ResourceType:
        for clique in self.cliques:
            if name in clique.ops:
                return clique.resource
        raise KeyError(f"operation {name!r} is not bound")

    def instance_of(self, name: str) -> int:
        for index, clique in enumerate(self.cliques):
            if name in clique.ops:
                return index
        raise KeyError(f"operation {name!r} is not bound")

    def area(self, area_model: AreaModel) -> float:
        """Total implementation area (paper Eqn. 5)."""
        return sum(area_model.area(c.resource) for c in self.cliques)

    def bound_latencies(
        self, wcg: WordlengthCompatibilityGraph
    ) -> Dict[str, int]:
        """Per-op latency of the resource each op is bound to (ℓ(o))."""
        latencies: Dict[str, int] = {}
        for clique in self.cliques:
            cycles = wcg.latency(clique.resource)
            for name in clique.ops:
                latencies[name] = cycles
        return latencies

    def bound_latencies_from(
        self, latency_of: Mapping[ResourceType, int]
    ) -> Dict[str, int]:
        """Like :meth:`bound_latencies` but from a plain latency mapping."""
        latencies: Dict[str, int] = {}
        for clique in self.cliques:
            cycles = latency_of[clique.resource]
            for name in clique.ops:
                latencies[name] = cycles
        return latencies

    def __len__(self) -> int:
        return len(self.cliques)


def _is_chain(
    ops: Sequence[str],
    schedule: Mapping[str, int],
    latencies: Mapping[str, int],
) -> bool:
    """Whether the ops are pairwise time-compatible (form a chain in C)."""
    ordered = sorted(ops, key=lambda n: (schedule[n], n))
    for a, b in zip(ordered, ordered[1:]):
        if schedule[a] + latencies[a] > schedule[b]:
            return False
    return True


def max_chain(
    candidates: Sequence[str],
    schedule: Mapping[str, int],
    latencies: Mapping[str, int],
) -> List[str]:
    """Maximum chain (pairwise sequential ops) among ``candidates``.

    The inner kernel of Algorithm Bindselect (paper section 2.3): each
    greedy step needs, per resource type ``r``, a maximum clique of the
    compatibility graph ``G'(O, C)`` restricted to ``O(r)``.  The
    compatibility relation "finishes no later than the other starts" is
    an interval order, so ``G'`` is transitively oriented and a maximum
    clique is a maximum *chain* (Golumbic [11]), computed here by
    dynamic programming over ops sorted by start time.  Deterministic:
    ties prefer lexicographically smaller predecessors, and the result
    is a pure function of ``(candidates, schedule|candidates,
    latencies|candidates)`` -- the property :class:`ChainCache` relies
    on to replay chains verbatim across solver iterations.
    """
    if not candidates:
        return []
    ordered = sorted(candidates, key=lambda n: (schedule[n], n))
    best_len: Dict[str, int] = {}
    best_pred: Dict[str, Optional[str]] = {}
    for i, name in enumerate(ordered):
        best_len[name] = 1
        best_pred[name] = None
        for prev in ordered[:i]:
            if schedule[prev] + latencies[prev] <= schedule[name]:
                if best_len[prev] + 1 > best_len[name]:
                    best_len[name] = best_len[prev] + 1
                    best_pred[name] = prev
    tail = max(ordered, key=lambda n: (best_len[n], n))
    chain: List[str] = []
    cursor: Optional[str] = tail
    while cursor is not None:
        chain.append(cursor)
        cursor = best_pred[cursor]
    chain.reverse()
    return chain


class ChainCache:
    """Memoised :func:`max_chain` results for incremental Bindselect.

    A chain is a pure function of the candidate tuple and the
    candidates' ``(start, L_o)`` values, so a cached chain may be
    replayed *verbatim* whenever those inputs recur -- both across the
    greedy rounds of one ``bindselect`` call (a selected clique leaves
    most other resources' candidate sets untouched) and across outer
    DPAlloc iterations (a refinement changes the schedule region and
    candidate sets of only the affected cone; see
    :class:`repro.core.scheduling.ScheduleWarmStart` for the scheduling
    side of that argument).

    Consistency contract: :meth:`refresh` must be called with the
    current schedule and latency bounds before each ``bindselect`` call.
    It diffs the per-op ``(start, L_o)`` snapshot taken at the previous
    refresh and evicts exactly the entries whose member ops moved;
    candidate-set changes need no eviction because the candidate tuple
    *is* the lookup key.  Cached chains are therefore byte-identical to
    a from-scratch ``max_chain`` -- the ``REPRO_SOLVER=scratch`` parity
    guarantee extends to incremental Bindselect unchanged.
    """

    def __init__(self, max_entries_per_resource: int = 64) -> None:
        self._chains: Dict[
            ResourceType, Dict[Tuple[str, ...], Tuple[str, ...]]
        ] = {}
        self._starts: Dict[str, int] = {}
        self._latencies: Dict[str, int] = {}
        self._max_entries = max_entries_per_resource
        self.hits = 0
        self.misses = 0
        self.evicted = 0

    def refresh(
        self,
        schedule: Mapping[str, int],
        latencies: Mapping[str, int],
        names: Sequence[str],
    ) -> int:
        """Evict entries whose ops' ``(start, L_o)`` changed; resnapshot.

        Returns the number of evicted entries (for diagnostics).
        """
        changed = {
            n
            for n in names
            if self._starts.get(n) != schedule[n]
            or self._latencies.get(n) != latencies[n]
        }
        dropped = 0
        if changed:
            for chains in self._chains.values():
                stale = [key for key in chains if not changed.isdisjoint(key)]
                for key in stale:
                    del chains[key]
                dropped += len(stale)
        self._starts = {n: schedule[n] for n in names}
        self._latencies = {n: latencies[n] for n in names}
        self.evicted += dropped
        return dropped

    def chain(
        self,
        resource: ResourceType,
        candidates: Sequence[str],
        schedule: Mapping[str, int],
        latencies: Mapping[str, int],
    ) -> List[str]:
        """The max chain for ``candidates`` on ``resource``, memoised."""
        key = tuple(candidates)
        chains = self._chains.setdefault(resource, {})
        cached = chains.get(key)
        if cached is not None:
            self.hits += 1
            # LRU: re-append so capacity eviction drops cold keys, not
            # the hot full-candidate-set chains that recur every round.
            chains[key] = chains.pop(key)
            return list(cached)
        self.misses += 1
        result = max_chain(candidates, schedule, latencies)
        while len(chains) >= self._max_entries:
            del chains[next(iter(chains))]  # least recently used
            self.evicted += 1
        chains[key] = tuple(result)
        return result


def _cheapest_covering_resource(
    ops: Sequence[str],
    wcg: WordlengthCompatibilityGraph,
    area_model: AreaModel,
) -> Optional[ResourceType]:
    """Cheapest resource with a current H edge to every op (Eqn. 4)."""
    candidates: Optional[Set[ResourceType]] = None
    for name in ops:
        compatible = set(wcg.compatible_resources(name))
        candidates = compatible if candidates is None else candidates & compatible
        if not candidates:
            return None
    assert candidates is not None
    return min(candidates, key=lambda r: (area_model.area(r), r))


def bindselect(
    wcg: WordlengthCompatibilityGraph,
    schedule: Mapping[str, int],
    latencies: Mapping[str, int],
    area_model: AreaModel,
    grow: bool = True,
    shrink: bool = True,
    chain_cache: Optional[ChainCache] = None,
) -> Binding:
    """Algorithm Bindselect of the paper (section 2.3).

    Implicit weighted unate covering (Eqn. 6) by Chvátal's greedy
    heuristic [1]: at each step pick the resource type whose maximum
    chain of still-uncovered operations maximises ``|clique| / cost``,
    grow the new clique over earlier selections (the paper's
    compensation for greedy short-sightedness), and finally implement
    each clique in the cheapest resource type compatible with all of
    its members (Eqn. 4).

    Args:
        wcg: scheduled wordlength compatibility graph (current ``H``).
        schedule: start step per operation.
        latencies: the latency upper bounds ``L_o`` used for scheduling
            (cliques built with these can never violate the schedule).
        area_model: resource cost for the greedy ratio and Eqn. 5.
        grow: enable the clique-growth compensation step.
        shrink: enable the final cheapest-cover wordlength selection.
        chain_cache: optional :class:`ChainCache` supplying memoised
            max chains (the solver pipeline's incremental Bindselect).
            The caller must have ``refresh``-ed it against ``schedule``
            and ``latencies``; results are byte-identical with or
            without it.

    Returns:
        a :class:`Binding` covering every operation exactly once.
    """
    uncovered: Set[str] = {op.name for op in wcg.operations}
    selected: List[Tuple[ResourceType, List[str]]] = []

    while uncovered:
        best: Optional[Tuple[float, float, ResourceType, List[str]]] = None
        for resource in wcg.resources:
            candidates = [
                name for name in wcg.ops_for_resource(resource) if name in uncovered
            ]
            if not candidates:
                continue
            if chain_cache is not None:
                chain = chain_cache.chain(
                    resource, candidates, schedule, latencies
                )
            else:
                chain = max_chain(candidates, schedule, latencies)
            cost = area_model.area(resource)
            key = (len(chain) / cost, -cost)
            if best is None or key > (best[0], best[1]):
                best = (key[0], key[1], resource, chain)
        if best is None:
            missing = sorted(uncovered)
            raise RuntimeError(f"operations without any compatible resource: {missing}")
        _, _, resource, clique = best
        uncovered -= set(clique)

        if grow:
            survivors: List[Tuple[ResourceType, List[str]]] = []
            for prev_resource, prev_ops in selected:
                union = clique + prev_ops
                cover = _cheapest_covering_resource(union, wcg, area_model)
                if cover is not None and _is_chain(union, schedule, latencies):
                    clique = sorted(union, key=lambda n: (schedule[n], n))
                    resource = cover
                else:
                    survivors.append((prev_resource, prev_ops))
            selected = survivors
        selected.append((resource, sorted(clique, key=lambda n: (schedule[n], n))))

    if shrink:
        shrunk: List[Tuple[ResourceType, List[str]]] = []
        for resource, ops in selected:
            cover = _cheapest_covering_resource(ops, wcg, area_model)
            shrunk.append((cover if cover is not None else resource, ops))
        selected = shrunk

    cliques = tuple(
        BoundClique(resource, tuple(ops))
        for resource, ops in sorted(
            selected, key=lambda item: (schedule[item[1][0]], item[1])
        )
    )
    return Binding(cliques)
