"""Combined resource binding and wordlength selection (paper section 2.3).

Given a schedule, binding partitions the operations into cliques of the
compatibility graph ``G'(O, C)``; each clique becomes one physical
resource instance whose wordlength must cover every member (Eqn. 4), and
the cost of a binding is the summed area of the cliques' resources
(Eqn. 5).  This is weighted unate covering (Eqn. 6), tackled with an
*implicit* adaptation of Chvátal's greedy heuristic [1]:

* columns (cliques) are never enumerated -- at each step only the
  maximum clique per resource type matters, because all cliques of a
  type cost the same and the greedy criterion is |clique| / cost;
* ``C`` is an interval order (derived from the schedule with latency
  upper bounds), so ``G'(O,C)`` restricted to ``O(r)`` is transitively
  oriented and a maximum clique is a maximum *chain*, found by dynamic
  programming in near-linear time (Golumbic [11]);
* after each selection the new clique is *grown* over previously selected
  cliques: if the union is still a chain and coverable by a single
  resource type, the earlier clique's unit is deleted -- the paper's
  compensation for greedy short-sightedness.

A final wordlength-selection pass implements each clique in the cheapest
resource type compatible (via current ``H`` edges) with all members;
``H`` membership guarantees the resource is never slower than the latency
upper bounds used by the scheduler, so the schedule remains valid.

**Incremental Bindselect** (see ``docs/architecture.md``): the max-chain
kernel is a pure function of the candidate tuple and its members'
``(start, L_o)`` values, so the solver pipeline persists a
:class:`ChainCache` across iterations and replays unchanged chains
verbatim, invalidating only chains touching operations whose schedule
position or latency bound the last refinement actually moved.
``REPRO_SOLVER=scratch`` bypasses the cache; both paths are
byte-identical by construction.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..resources.area import AreaModel
from ..resources.types import ResourceType
from .wcg import WordlengthCompatibilityGraph

__all__ = [
    "BindIndex",
    "BoundClique",
    "Binding",
    "ChainCache",
    "max_chain",
    "bindselect",
]


@dataclass(frozen=True)
class BoundClique:
    """One physical resource instance and the operations bound to it."""

    resource: ResourceType
    ops: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.ops)


@dataclass(frozen=True)
class Binding:
    """A complete binding: cliques plus convenience lookups."""

    cliques: Tuple[BoundClique, ...]

    def resource_of(self, name: str) -> ResourceType:
        for clique in self.cliques:
            if name in clique.ops:
                return clique.resource
        raise KeyError(f"operation {name!r} is not bound")

    def instance_of(self, name: str) -> int:
        for index, clique in enumerate(self.cliques):
            if name in clique.ops:
                return index
        raise KeyError(f"operation {name!r} is not bound")

    def area(self, area_model: AreaModel) -> float:
        """Total implementation area (paper Eqn. 5)."""
        return sum(area_model.area(c.resource) for c in self.cliques)

    def bound_latencies(
        self, wcg: WordlengthCompatibilityGraph
    ) -> Dict[str, int]:
        """Per-op latency of the resource each op is bound to (ℓ(o))."""
        latencies: Dict[str, int] = {}
        for clique in self.cliques:
            cycles = wcg.latency(clique.resource)
            for name in clique.ops:
                latencies[name] = cycles
        return latencies

    def bound_latencies_from(
        self, latency_of: Mapping[ResourceType, int]
    ) -> Dict[str, int]:
        """Like :meth:`bound_latencies` but from a plain latency mapping."""
        latencies: Dict[str, int] = {}
        for clique in self.cliques:
            cycles = latency_of[clique.resource]
            for name in clique.ops:
                latencies[name] = cycles
        return latencies

    def __len__(self) -> int:
        return len(self.cliques)


def _is_chain(
    ops: Sequence[str],
    schedule: Mapping[str, int],
    latencies: Mapping[str, int],
) -> bool:
    """Whether the ops are pairwise time-compatible (form a chain in C)."""
    ordered = sorted(ops, key=lambda n: (schedule[n], n))
    for a, b in zip(ordered, ordered[1:]):
        if schedule[a] + latencies[a] > schedule[b]:
            return False
    return True


def max_chain(
    candidates: Sequence[str],
    schedule: Mapping[str, int],
    latencies: Mapping[str, int],
) -> List[str]:
    """Maximum chain (pairwise sequential ops) among ``candidates``.

    The inner kernel of Algorithm Bindselect (paper section 2.3): each
    greedy step needs, per resource type ``r``, a maximum clique of the
    compatibility graph ``G'(O, C)`` restricted to ``O(r)``.  The
    compatibility relation "finishes no later than the other starts" is
    an interval order, so ``G'`` is transitively oriented and a maximum
    clique is a maximum *chain* (Golumbic [11]), computed here by
    dynamic programming over ops sorted by start time.  Deterministic:
    ties prefer lexicographically smaller predecessors, and the result
    is a pure function of ``(candidates, schedule|candidates,
    latencies|candidates)`` -- the property :class:`ChainCache` relies
    on to replay chains verbatim across solver iterations.
    """
    if not candidates:
        return []
    ordered = sorted(candidates, key=lambda n: (schedule[n], n))
    k = len(ordered)
    best_len = [1] * k
    best_pred = [-1] * k
    # Retire-pointer formulation of the chain DP, O(k log k): process
    # ops in (start, name) order; an earlier op becomes *retired* once
    # its finish time is <= the current start, and retired ops are
    # exactly the DP's eligible predecessors (starts are nondecreasing,
    # so retirement is monotone).  A running (max length, smallest
    # ordered index attaining it) over the retired set reproduces the
    # quadratic scan's first-strictly-greater predecessor choice, so
    # chains -- and the ChainCache entries built from them -- are
    # byte-identical to the reference DP.
    retire: List[Tuple[int, int]] = []  # (finish, ordered index) min-heap
    run_max = 0
    run_arg = -1
    for i, name in enumerate(ordered):
        start = schedule[name]
        while retire and retire[0][0] <= start:
            _, j = heapq.heappop(retire)
            if best_len[j] > run_max or (best_len[j] == run_max and j < run_arg):
                run_max = best_len[j]
                run_arg = j
        if run_max:
            best_len[i] = run_max + 1
            best_pred[i] = run_arg
        heapq.heappush(retire, (start + latencies[name], i))
    tail = 0
    for i in range(1, k):
        if (best_len[i], ordered[i]) > (best_len[tail], ordered[tail]):
            tail = i
    chain: List[str] = []
    cursor = tail
    while cursor >= 0:
        chain.append(ordered[cursor])
        cursor = best_pred[cursor]
    chain.reverse()
    return chain


class BindIndex:
    """Dense-id interning of ops and resources for array-shaped Bindselect.

    Static per solve: operation names are interned to dense ids in
    sorted-name order (so a bitset over op ids enumerates names in the
    same order the reference implementation scanned them), resources
    keep the ``wcg.resources`` greedy iteration order, and each
    resource's area is captured both in *cheap order* -- sorted by
    ``(area, resource)``, so the lowest set bit of a cheap-order
    resource bitset IS the cheapest covering resource -- and as an
    exact integer ratio ``(num, den)`` for the greedy ``|clique|/cost``
    comparison (``float.as_integer_ratio`` is exact for every float, so
    the comparison is exact whatever the area model returns).

    Dynamic per ``H`` state (:meth:`sync`, keyed on the monotone
    ``wcg.edge_count()``): per-resource compatible-op bitsets over op
    ids, and per-op compatible-resource bitsets over cheap-order
    indices.  Cover probing -- the reference's per-op set rebuilds --
    becomes bitset AND + lowest-set-bit.
    """

    def __init__(
        self, wcg: WordlengthCompatibilityGraph, area_model: AreaModel
    ) -> None:
        self.op_names: Tuple[str, ...] = tuple(
            sorted(op.name for op in wcg.operations)
        )
        self.op_id: Dict[str, int] = {n: i for i, n in enumerate(self.op_names)}
        self.resources: Tuple[ResourceType, ...] = wcg.resources
        self.cheap_order: Tuple[ResourceType, ...] = tuple(
            sorted(self.resources, key=lambda r: (area_model.area(r), r))
        )
        self.cost_ratio: Dict[ResourceType, Tuple[int, int]] = {
            r: area_model.area(r).as_integer_ratio() for r in self.resources
        }
        self._cheap_bit: Dict[ResourceType, int] = {
            r: 1 << i for i, r in enumerate(self.cheap_order)
        }
        # H-dependent bitsets, rebuilt by sync() when the edge set moves.
        self.ops_mask: Dict[ResourceType, int] = {}
        self.res_mask: List[int] = []
        self._h_version: int = -1

    def sync(self, wcg: WordlengthCompatibilityGraph) -> None:
        """Rebuild the ``H``-dependent bitsets if the edge set changed.

        Refinement only ever *deletes* ``H`` edges, so along one solve's
        trajectory the monotone ``edge_count()`` identifies the edge set
        exactly -- an equal count means nothing moved.
        """
        version = wcg.edge_count()
        if version == self._h_version:
            return
        self._h_version = version
        res_mask = [0] * len(self.op_names)
        for resource in self.resources:
            mask = 0
            rbit = self._cheap_bit[resource]
            for name in wcg.ops_for_resource(resource):
                i = self.op_id[name]
                mask |= 1 << i
                res_mask[i] |= rbit
            self.ops_mask[resource] = mask
        self.res_mask = res_mask

    def names_from_mask(self, mask: int) -> List[str]:
        """Decode an op-id bitset to names, in sorted-name order."""
        names = self.op_names
        out: List[str] = []
        while mask:
            low = mask & -mask
            out.append(names[low.bit_length() - 1])
            mask ^= low
        return out

    def cover_mask(self, ops: Sequence[str]) -> int:
        """Cheap-order bitset of resources covering every op (Eqn. 4)."""
        res_mask = self.res_mask
        op_id = self.op_id
        mask = -1
        for name in ops:
            mask &= res_mask[op_id[name]]
            if not mask:
                return 0
        return mask

    def cheapest_from_mask(self, mask: int) -> Optional[ResourceType]:
        """Cheapest resource in a cheap-order bitset (its lowest set bit)."""
        if not mask:
            return None
        return self.cheap_order[(mask & -mask).bit_length() - 1]


class ChainCache:
    """Memoised :func:`max_chain` results for incremental Bindselect.

    A chain is a pure function of the candidate tuple and the
    candidates' ``(start, L_o)`` values, so a cached chain may be
    replayed *verbatim* whenever those inputs recur -- both across the
    greedy rounds of one ``bindselect`` call (a selected clique leaves
    most other resources' candidate sets untouched) and across outer
    DPAlloc iterations (a refinement changes the schedule region and
    candidate sets of only the affected cone; see
    :class:`repro.core.scheduling.ScheduleWarmStart` for the scheduling
    side of that argument).

    Consistency contract: :meth:`refresh` must be called with the
    current schedule and latency bounds before each ``bindselect`` call.
    It diffs the per-op ``(start, L_o)`` snapshot taken at the previous
    refresh and evicts exactly the entries whose member ops moved;
    candidate-set changes need no eviction because the candidate tuple
    *is* the lookup key.  Cached chains are therefore byte-identical to
    a from-scratch ``max_chain`` -- the ``REPRO_SOLVER=scratch`` parity
    guarantee extends to incremental Bindselect unchanged.
    """

    def __init__(self, max_entries_per_resource: int = 64) -> None:
        self._chains: Dict[
            ResourceType, Dict[Tuple[str, ...], Tuple[str, ...]]
        ] = {}
        # Mask-keyed fast path (key = uncovered-candidate op-id bitset
        # from the BindIndex); lives beside the name-keyed store so the
        # name-based API keeps working without an index.
        self._mask_chains: Dict[ResourceType, Dict[int, Tuple[str, ...]]] = {}
        self._index: Optional[BindIndex] = None
        self._starts: Dict[str, int] = {}
        self._latencies: Dict[str, int] = {}
        self._max_entries = max_entries_per_resource
        self.hits = 0
        self.misses = 0
        self.evicted = 0

    def ensure_index(
        self, wcg: WordlengthCompatibilityGraph, area_model: AreaModel
    ) -> BindIndex:
        """The solve-scoped :class:`BindIndex`, built once and synced.

        The op/resource universe and the area model are fixed for the
        lifetime of one solver state (refinement only deletes ``H``
        edges), so the interning tables are built on first use and only
        the ``H``-dependent bitsets are refreshed.
        """
        if self._index is None:
            self._index = BindIndex(wcg, area_model)
        self._index.sync(wcg)
        return self._index

    def refresh(
        self,
        schedule: Mapping[str, int],
        latencies: Mapping[str, int],
        names: Sequence[str],
    ) -> int:
        """Evict entries whose ops' ``(start, L_o)`` changed; resnapshot.

        Returns the number of evicted entries (for diagnostics).
        """
        changed = {
            n
            for n in names
            if self._starts.get(n) != schedule[n]
            or self._latencies.get(n) != latencies[n]
        }
        dropped = 0
        if changed:
            for chains in self._chains.values():
                stale = [key for key in chains if not changed.isdisjoint(key)]
                for key in stale:
                    del chains[key]
                dropped += len(stale)
            if self._index is not None and self._mask_chains:
                changed_mask = 0
                # reprolint: disable=RL001(order-insensitive: bitwise OR commutes)
                for n in changed:
                    changed_mask |= 1 << self._index.op_id[n]
                for mask_chains in self._mask_chains.values():
                    stale_masks = [key for key in mask_chains if key & changed_mask]
                    for key in stale_masks:
                        del mask_chains[key]
                    dropped += len(stale_masks)
        self._starts = {n: schedule[n] for n in names}
        self._latencies = {n: latencies[n] for n in names}
        self.evicted += dropped
        return dropped

    def chain(
        self,
        resource: ResourceType,
        candidates: Sequence[str],
        schedule: Mapping[str, int],
        latencies: Mapping[str, int],
    ) -> List[str]:
        """The max chain for ``candidates`` on ``resource``, memoised."""
        key = tuple(candidates)
        chains = self._chains.setdefault(resource, {})
        cached = chains.get(key)
        if cached is not None:
            self.hits += 1
            # LRU: re-append so capacity eviction drops cold keys, not
            # the hot full-candidate-set chains that recur every round.
            chains[key] = chains.pop(key)
            return list(cached)
        self.misses += 1
        result = max_chain(candidates, schedule, latencies)
        while len(chains) >= self._max_entries:
            del chains[next(iter(chains))]  # least recently used
            self.evicted += 1
        chains[key] = tuple(result)
        return result

    def chain_for_mask(
        self,
        resource: ResourceType,
        cand_mask: int,
        index: BindIndex,
        schedule: Mapping[str, int],
        latencies: Mapping[str, int],
    ) -> List[str]:
        """Mask-keyed :meth:`chain`: the key is the candidate op-id bitset.

        A bitset over ids in sorted-name order decodes to exactly the
        candidate tuple the name-keyed path would use, so the two paths
        memoise the same pure function; this one skips building the
        tuple (and hashing all its strings) on a hit.
        """
        chains = self._mask_chains.setdefault(resource, {})
        cached = chains.get(cand_mask)
        if cached is not None:
            self.hits += 1
            chains[cand_mask] = chains.pop(cand_mask)  # LRU re-append
            return list(cached)
        self.misses += 1
        result = max_chain(index.names_from_mask(cand_mask), schedule, latencies)
        while len(chains) >= self._max_entries:
            del chains[next(iter(chains))]  # least recently used
            self.evicted += 1
        chains[cand_mask] = tuple(result)
        return result


def _cheapest_covering_resource(
    ops: Sequence[str],
    wcg: WordlengthCompatibilityGraph,
    area_model: AreaModel,
) -> Optional[ResourceType]:
    """Cheapest resource with a current H edge to every op (Eqn. 4).

    Reference formulation, kept for tests and one-off callers; the
    Bindselect hot path uses :meth:`BindIndex.cover_mask` +
    :meth:`BindIndex.cheapest_from_mask`, which computes the same
    ``min`` over the same candidate set (cheap order is exactly
    ``(area, resource)`` order).
    """
    candidates: Optional[Set[ResourceType]] = None
    for name in ops:
        compatible = set(wcg.compatible_resources(name))
        candidates = compatible if candidates is None else candidates & compatible
        if not candidates:
            return None
    assert candidates is not None
    return min(candidates, key=lambda r: (area_model.area(r), r))


def _merge_if_chain(
    left: Sequence[str],
    right: Sequence[str],
    schedule: Mapping[str, int],
    latencies: Mapping[str, int],
) -> Optional[List[str]]:
    """Merge two ``(start, name)``-sorted chains; None if not a chain.

    Equivalent to sorting the concatenation and running the adjacent
    pairwise-compatibility check (:func:`_is_chain`), but linear in the
    union size since both inputs are already sorted.
    """
    merged: List[str] = []
    i = j = 0
    prev: Optional[str] = None
    while i < len(left) or j < len(right):
        if j >= len(right):
            name = left[i]
            i += 1
        elif i >= len(left):
            name = right[j]
            j += 1
        elif (schedule[left[i]], left[i]) <= (schedule[right[j]], right[j]):
            name = left[i]
            i += 1
        else:
            name = right[j]
            j += 1
        if prev is not None and schedule[prev] + latencies[prev] > schedule[name]:
            return None
        merged.append(name)
        prev = name
    return merged


def bindselect(
    wcg: WordlengthCompatibilityGraph,
    schedule: Mapping[str, int],
    latencies: Mapping[str, int],
    area_model: AreaModel,
    grow: bool = True,
    shrink: bool = True,
    chain_cache: Optional[ChainCache] = None,
) -> Binding:
    """Algorithm Bindselect of the paper (section 2.3).

    Implicit weighted unate covering (Eqn. 6) by Chvátal's greedy
    heuristic [1]: at each step pick the resource type whose maximum
    chain of still-uncovered operations maximises ``|clique| / cost``,
    grow the new clique over earlier selections (the paper's
    compensation for greedy short-sightedness), and finally implement
    each clique in the cheapest resource type compatible with all of
    its members (Eqn. 4).

    Args:
        wcg: scheduled wordlength compatibility graph (current ``H``).
        schedule: start step per operation.
        latencies: the latency upper bounds ``L_o`` used for scheduling
            (cliques built with these can never violate the schedule).
        area_model: resource cost for the greedy ratio and Eqn. 5.
        grow: enable the clique-growth compensation step.
        shrink: enable the final cheapest-cover wordlength selection.
        chain_cache: optional :class:`ChainCache` supplying memoised
            max chains (the solver pipeline's incremental Bindselect).
            The caller must have ``refresh``-ed it against ``schedule``
            and ``latencies``; results are byte-identical with or
            without it.

    Returns:
        a :class:`Binding` covering every operation exactly once.
    """
    if chain_cache is not None:
        index = chain_cache.ensure_index(wcg, area_model)
    else:
        index = BindIndex(wcg, area_model)
        index.sync(wcg)
    op_id = index.op_id
    cost_ratio = index.cost_ratio
    uncovered = (1 << len(index.op_names)) - 1
    # Selected cliques carry their covering-resource bitset so the grow
    # step probes (clique, prev) pairs with one AND instead of
    # re-deriving compatible_resources per member per pair.
    selected: List[Tuple[ResourceType, List[str], int]] = []

    while uncovered:
        # Exact greedy criterion: maximise |chain| / cost, tie-break on
        # smaller cost, first resource wins.  With cost == num/den the
        # ratio comparison cross-multiplies to integers, so ties can
        # never depend on float rounding (satisfying the parity
        # contract for any area magnitudes).
        best: Optional[Tuple[int, int, int, ResourceType, List[str]]] = None
        for resource in index.resources:
            cand_mask = index.ops_mask[resource] & uncovered
            if not cand_mask:
                continue
            if chain_cache is not None:
                chain = chain_cache.chain_for_mask(
                    resource, cand_mask, index, schedule, latencies
                )
            else:
                chain = max_chain(
                    index.names_from_mask(cand_mask), schedule, latencies
                )
            num, den = cost_ratio[resource]
            if best is None:
                best = (len(chain), num, den, resource, chain)
                continue
            b_len, b_num, b_den = best[0], best[1], best[2]
            lhs = len(chain) * den * b_num  # ratio = len * den / num
            rhs = b_len * b_den * num
            if lhs > rhs or (lhs == rhs and num * b_den < b_num * den):
                best = (len(chain), num, den, resource, chain)
        if best is None:
            missing = index.names_from_mask(uncovered)
            raise RuntimeError(f"operations without any compatible resource: {missing}")
        _, _, _, resource, clique = best
        clique_rmask = index.cover_mask(clique)
        for name in clique:
            uncovered &= ~(1 << op_id[name])

        if grow:
            survivors: List[Tuple[ResourceType, List[str], int]] = []
            for prev_resource, prev_ops, prev_rmask in selected:
                union_rmask = clique_rmask & prev_rmask
                merged = (
                    _merge_if_chain(clique, prev_ops, schedule, latencies)
                    if union_rmask
                    else None
                )
                if merged is not None:
                    clique = merged
                    clique_rmask = union_rmask
                    resource = index.cheap_order[
                        (union_rmask & -union_rmask).bit_length() - 1
                    ]
                else:
                    survivors.append((prev_resource, prev_ops, prev_rmask))
            selected = survivors
        selected.append(
            (resource, sorted(clique, key=lambda n: (schedule[n], n)), clique_rmask)
        )

    if shrink:
        selected = [
            (index.cheapest_from_mask(rmask) or resource, ops, rmask)
            for resource, ops, rmask in selected
        ]

    cliques = tuple(
        BoundClique(resource, tuple(ops))
        for resource, ops, _ in sorted(
            selected, key=lambda item: (schedule[item[1][0]], item[1])
        )
    )
    return Binding(cliques)
