"""Combined resource binding and wordlength selection (paper section 2.3).

Given a schedule, binding partitions the operations into cliques of the
compatibility graph ``G'(O, C)``; each clique becomes one physical
resource instance whose wordlength must cover every member (Eqn. 4), and
the cost of a binding is the summed area of the cliques' resources
(Eqn. 5).  This is weighted unate covering (Eqn. 6), tackled with an
*implicit* adaptation of Chvátal's greedy heuristic [1]:

* columns (cliques) are never enumerated -- at each step only the
  maximum clique per resource type matters, because all cliques of a
  type cost the same and the greedy criterion is |clique| / cost;
* ``C`` is an interval order (derived from the schedule with latency
  upper bounds), so ``G'(O,C)`` restricted to ``O(r)`` is transitively
  oriented and a maximum clique is a maximum *chain*, found by dynamic
  programming in near-linear time (Golumbic [11]);
* after each selection the new clique is *grown* over previously selected
  cliques: if the union is still a chain and coverable by a single
  resource type, the earlier clique's unit is deleted -- the paper's
  compensation for greedy short-sightedness.

A final wordlength-selection pass implements each clique in the cheapest
resource type compatible (via current ``H`` edges) with all members;
``H`` membership guarantees the resource is never slower than the latency
upper bounds used by the scheduler, so the schedule remains valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..resources.area import AreaModel
from ..resources.types import ResourceType
from .wcg import WordlengthCompatibilityGraph

__all__ = ["BoundClique", "Binding", "max_chain", "bindselect"]


@dataclass(frozen=True)
class BoundClique:
    """One physical resource instance and the operations bound to it."""

    resource: ResourceType
    ops: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.ops)


@dataclass(frozen=True)
class Binding:
    """A complete binding: cliques plus convenience lookups."""

    cliques: Tuple[BoundClique, ...]

    def resource_of(self, name: str) -> ResourceType:
        for clique in self.cliques:
            if name in clique.ops:
                return clique.resource
        raise KeyError(f"operation {name!r} is not bound")

    def instance_of(self, name: str) -> int:
        for index, clique in enumerate(self.cliques):
            if name in clique.ops:
                return index
        raise KeyError(f"operation {name!r} is not bound")

    def area(self, area_model: AreaModel) -> float:
        """Total implementation area (paper Eqn. 5)."""
        return sum(area_model.area(c.resource) for c in self.cliques)

    def bound_latencies(
        self, wcg: WordlengthCompatibilityGraph
    ) -> Dict[str, int]:
        """Per-op latency of the resource each op is bound to (ℓ(o))."""
        latencies: Dict[str, int] = {}
        for clique in self.cliques:
            cycles = wcg.latency(clique.resource)
            for name in clique.ops:
                latencies[name] = cycles
        return latencies

    def bound_latencies_from(
        self, latency_of: Mapping[ResourceType, int]
    ) -> Dict[str, int]:
        """Like :meth:`bound_latencies` but from a plain latency mapping."""
        latencies: Dict[str, int] = {}
        for clique in self.cliques:
            cycles = latency_of[clique.resource]
            for name in clique.ops:
                latencies[name] = cycles
        return latencies

    def __len__(self) -> int:
        return len(self.cliques)


def _is_chain(
    ops: Sequence[str],
    schedule: Mapping[str, int],
    latencies: Mapping[str, int],
) -> bool:
    """Whether the ops are pairwise time-compatible (form a chain in C)."""
    ordered = sorted(ops, key=lambda n: (schedule[n], n))
    for a, b in zip(ordered, ordered[1:]):
        if schedule[a] + latencies[a] > schedule[b]:
            return False
    return True


def max_chain(
    candidates: Sequence[str],
    schedule: Mapping[str, int],
    latencies: Mapping[str, int],
) -> List[str]:
    """Maximum chain (pairwise sequential ops) among ``candidates``.

    The compatibility relation "finishes no later than the other starts"
    is an interval order; a maximum clique of the comparability graph is
    a longest chain, computed by DP over ops sorted by start time.
    Deterministic: ties prefer lexicographically smaller predecessors.
    """
    if not candidates:
        return []
    ordered = sorted(candidates, key=lambda n: (schedule[n], n))
    best_len: Dict[str, int] = {}
    best_pred: Dict[str, Optional[str]] = {}
    for i, name in enumerate(ordered):
        best_len[name] = 1
        best_pred[name] = None
        for prev in ordered[:i]:
            if schedule[prev] + latencies[prev] <= schedule[name]:
                if best_len[prev] + 1 > best_len[name]:
                    best_len[name] = best_len[prev] + 1
                    best_pred[name] = prev
    tail = max(ordered, key=lambda n: (best_len[n], n))
    chain: List[str] = []
    cursor: Optional[str] = tail
    while cursor is not None:
        chain.append(cursor)
        cursor = best_pred[cursor]
    chain.reverse()
    return chain


def _cheapest_covering_resource(
    ops: Sequence[str],
    wcg: WordlengthCompatibilityGraph,
    area_model: AreaModel,
) -> Optional[ResourceType]:
    """Cheapest resource with a current H edge to every op (Eqn. 4)."""
    candidates: Optional[Set[ResourceType]] = None
    for name in ops:
        compatible = set(wcg.compatible_resources(name))
        candidates = compatible if candidates is None else candidates & compatible
        if not candidates:
            return None
    assert candidates is not None
    return min(candidates, key=lambda r: (area_model.area(r), r))


def bindselect(
    wcg: WordlengthCompatibilityGraph,
    schedule: Mapping[str, int],
    latencies: Mapping[str, int],
    area_model: AreaModel,
    grow: bool = True,
    shrink: bool = True,
) -> Binding:
    """Algorithm Bindselect of the paper.

    Args:
        wcg: scheduled wordlength compatibility graph (current ``H``).
        schedule: start step per operation.
        latencies: the latency upper bounds ``L_o`` used for scheduling
            (cliques built with these can never violate the schedule).
        area_model: resource cost for the greedy ratio and Eqn. 5.
        grow: enable the clique-growth compensation step.
        shrink: enable the final cheapest-cover wordlength selection.

    Returns:
        a :class:`Binding` covering every operation exactly once.
    """
    uncovered: Set[str] = {op.name for op in wcg.operations}
    selected: List[Tuple[ResourceType, List[str]]] = []

    while uncovered:
        best: Optional[Tuple[float, float, ResourceType, List[str]]] = None
        for resource in wcg.resources:
            candidates = [
                name for name in wcg.ops_for_resource(resource) if name in uncovered
            ]
            if not candidates:
                continue
            chain = max_chain(candidates, schedule, latencies)
            cost = area_model.area(resource)
            key = (len(chain) / cost, -cost)
            if best is None or key > (best[0], best[1]):
                best = (key[0], key[1], resource, chain)
        if best is None:
            missing = sorted(uncovered)
            raise RuntimeError(f"operations without any compatible resource: {missing}")
        _, _, resource, clique = best
        uncovered -= set(clique)

        if grow:
            survivors: List[Tuple[ResourceType, List[str]]] = []
            for prev_resource, prev_ops in selected:
                union = clique + prev_ops
                cover = _cheapest_covering_resource(union, wcg, area_model)
                if cover is not None and _is_chain(union, schedule, latencies):
                    clique = sorted(union, key=lambda n: (schedule[n], n))
                    resource = cover
                else:
                    survivors.append((prev_resource, prev_ops))
            selected = survivors
        selected.append((resource, sorted(clique, key=lambda n: (schedule[n], n))))

    if shrink:
        shrunk: List[Tuple[ResourceType, List[str]]] = []
        for resource, ops in selected:
            cover = _cheapest_covering_resource(ops, wcg, area_model)
            shrunk.append((cover if cover is not None else resource, ops))
        selected = shrunk

    cliques = tuple(
        BoundClique(resource, tuple(ops))
        for resource, ops in sorted(
            selected, key=lambda item: (schedule[item[1][0]], item[1])
        )
    )
    return Binding(cliques)
