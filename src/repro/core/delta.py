"""Delta solves: the edit model and the verified replay walk.

``Engine.run_delta`` re-solves an *edited* problem by reusing the
recorded iteration stream of a previously solved base problem (see
:class:`repro.core.solver.ReplayRecorder`).  This module supplies the
two halves that make the reuse sound:

**The edit model.**  An edit is one of

* :class:`DeadlineEdit` -- change the latency constraint ``lambda``;
* :class:`WordlengthEdit` -- change one operation's operand widths;
* :class:`ConstraintEdit` -- set/clear one resource kind's ``N_y``.

Each edit has a *footprint* (:func:`edit_footprint`): the operations
and resource kinds it touches, mapped onto the solver's dirtiness
channels (:data:`repro.core.solver.REUSE_CHANNELS`).  A wordlength or
constraint edit dirties the WCG channels, which iteration 1 of any
solve already consumes -- the channel-disjoint replay prefix is empty
and the engine falls back to a scratch solve.  A deadline edit dirties
*no* channel: every pipeline product of an iteration (bounds, covers,
schedule, binding, makespan, area) is independent of ``lambda``, which
enters the solve only through the feasibility check and through the
``W = {o in Q_b : start(o) + L_o <= lambda}`` candidate threshold.
That makes the whole recorded iteration stream a candidate replay
prefix -- but only *verified* iteration by iteration, because the new
deadline can flip the feasibility check or shift the ``W`` pool.

**The verified replay walk** (:func:`replay_solve`).  Walk the recorded
iterations, mutating a replayed WCG move-by-move, and at each recorded
iteration decide from recorded data alone what a cold solve of the
edited problem would do:

* recorded makespan now meets the new deadline -> the cold solve
  accepts here; stop and recompute this iteration's datapath;
* the simulated refine choice under the new deadline (recorded ``Q_b``
  + finish times thresholded against the new ``lambda``, replayed WCG,
  recorded bound-latency tie-break) deviates from the recorded move ->
  **divergence detected**; stop;
* recorded accept whose makespan meets the new deadline, with every
  earlier iteration verified -> **full replay**: the base datapath *is*
  the cold solve of the edited problem, byte-for-byte.

On any stop short of full replay the walk fast-forwards a fresh
:class:`~repro.core.solver.SolverState` through the verified prefix
(:func:`~repro.core.solver.forward_state`) and resumes the ordinary
solve loop from there; scratch-vs-incremental byte parity guarantees
the continuation equals a cold solve that took the same moves.  The
differential fuzz harness (``tools/fuzz_delta.py``) enforces the
parity contract end to end: every ``run_delta`` envelope is asserted
canonical-byte-identical to a cold solve of the edited problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..ir.ops import Operation
from ..ir.seqgraph import SequencingGraph
from .problem import Problem
from .refinement import choose_refinement_op
from .solution import Datapath
from .solver import (
    REUSE_CHANNELS,
    DPAllocOptions,
    ReplayRecorder,
    forward_state,
    solve_loop,
)
from .wcg import WordlengthCompatibilityGraph

__all__ = [
    "ConstraintEdit",
    "DeadlineEdit",
    "Edit",
    "EditFootprint",
    "ReplayOutcome",
    "WordlengthEdit",
    "apply_edits",
    "edit_footprint",
    "edits_footprint",
    "replay_solve",
]


# ----------------------------------------------------------------------
# the edit model
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DeadlineEdit:
    """Change the overall latency constraint ``lambda``."""

    latency: int


@dataclass(frozen=True)
class WordlengthEdit:
    """Replace one operation's operand wordlengths."""

    operation: str
    widths: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "widths", tuple(int(w) for w in self.widths))


@dataclass(frozen=True)
class ConstraintEdit:
    """Set (or with ``limit=None`` clear) one kind's ``N_y`` ceiling."""

    kind: str
    limit: Optional[int]


Edit = Union[DeadlineEdit, WordlengthEdit, ConstraintEdit]


@dataclass(frozen=True)
class EditFootprint:
    """What an edit (sequence) touches, in solver-dirtiness terms."""

    ops: FrozenSet[str] = frozenset()
    kinds: FrozenSet[str] = frozenset()
    deadline: bool = False

    def union(self, other: "EditFootprint") -> "EditFootprint":
        return EditFootprint(
            ops=self.ops | other.ops,
            kinds=self.kinds | other.kinds,
            deadline=self.deadline or other.deadline,
        )

    def dirtied_channels(self) -> FrozenSet[str]:
        """Dirtiness channels (:data:`REUSE_CHANNELS`) the edit touches.

        Touched operations or resource kinds invalidate the WCG itself,
        so every WCG-keyed channel is dirty and no recorded iteration
        survives -- iteration 1 consumes them all.  A pure deadline
        move dirties nothing: the recorded iterations remain a valid
        (verification-pending) replay prefix.
        """
        if self.ops or self.kinds:
            return frozenset(REUSE_CHANNELS["wcg"])
        return frozenset()

    @property
    def replayable(self) -> bool:
        """True when the recorded iteration stream can be replayed."""
        return not self.dirtied_channels()


def edit_footprint(edit: Edit, problem: Problem) -> EditFootprint:
    """Footprint of one edit against ``problem`` (the pre-edit base)."""
    if isinstance(edit, DeadlineEdit):
        return EditFootprint(deadline=True)
    if isinstance(edit, WordlengthEdit):
        op = problem.graph.operation(edit.operation)
        return EditFootprint(
            ops=frozenset({edit.operation}),
            kinds=frozenset({op.resource_kind}),
        )
    if isinstance(edit, ConstraintEdit):
        return EditFootprint(kinds=frozenset({edit.kind}))
    raise TypeError(f"not an edit: {edit!r}")


def edits_footprint(
    edits: Sequence[Edit], problem: Problem
) -> EditFootprint:
    """Union footprint of an edit sequence applied to ``problem``.

    Footprints are computed against the *base* problem: edits never add
    or remove operations, so the touched names/kinds are stable across
    the sequence.
    """
    footprint = EditFootprint()
    for edit in edits:
        footprint = footprint.union(edit_footprint(edit, problem))
    return footprint


def _with_operation_widths(
    graph: SequencingGraph, name: str, widths: Tuple[int, ...]
) -> SequencingGraph:
    """A copy of ``graph`` with one operation's operand widths replaced."""
    graph.operation(name)  # raises KeyError for unknown names
    edited = SequencingGraph()
    for op in graph.operations:
        if op.name == name:
            edited.add_operation(Operation(op.name, op.kind, widths))
        else:
            edited.add_operation(op)
    for producer, consumer in graph.edges():
        edited.add_dependency(producer, consumer)
    return edited


def apply_edits(problem: Problem, edits: Sequence[Edit]) -> Problem:
    """The edited problem: ``edits`` applied to ``problem`` in order.

    Raises ``KeyError`` for unknown operation names and ``ValueError``
    for invalid values (widths/latency/limits), mirroring the
    constructors' own validation.
    """
    edited = problem
    for edit in edits:
        if isinstance(edit, DeadlineEdit):
            edited = edited.with_latency_constraint(int(edit.latency))
        elif isinstance(edit, WordlengthEdit):
            edited = replace(
                edited,
                graph=_with_operation_widths(
                    edited.graph, edit.operation, edit.widths
                ),
            )
        elif isinstance(edit, ConstraintEdit):
            constraints = dict(edited.resource_constraints or {})
            if edit.limit is None:
                constraints.pop(edit.kind, None)
            else:
                constraints[edit.kind] = int(edit.limit)
            edited = replace(
                edited,
                # Normalise empty to None: both fingerprint and the
                # solver treat "no dict" and "empty dict" as
                # unconstrained, and the fingerprint must not fork.
                resource_constraints=constraints or None,
            )
        else:
            raise TypeError(f"not an edit: {edit!r}")
    return edited


# ----------------------------------------------------------------------
# the verified replay walk
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ReplayOutcome:
    """Result of replaying a recorded solve under an edited deadline.

    Attributes:
        strategy: ``"replay"`` (full replay; the base datapath is the
            answer), ``"resumed"`` (the new deadline flipped a
            feasibility check; re-solved from the verified prefix) or
            ``"diverged"`` (the divergence detector caught a refine
            choice shifting under the new deadline; re-solved from the
            last verified iteration).
        datapath: the continuation's datapath (``None`` for
            ``"replay"`` -- reuse the base envelope -- and for an
            infeasible continuation).
        error: the continuation's ``InfeasibleError`` message, if any.
        verified_iterations: length of the verified replay prefix.
        resumed_iterations: pipeline iterations actually executed.
        records: replay records for the *edited* problem (prefix +
            continuation), so successive edits chain warmly; ``None``
            when the continuation failed.
    """

    strategy: str
    datapath: Optional[Datapath] = None
    error: Optional[str] = None
    verified_iterations: int = 0
    resumed_iterations: int = 0
    records: Optional[List[Dict[str, Any]]] = field(default=None)


def _simulate_primary(
    wcg: WordlengthCompatibilityGraph,
    names: Tuple[str, ...],
    record: Mapping[str, Any],
    latency_constraint: int,
    options: DPAllocOptions,
) -> Optional[Tuple[str, str]]:
    """The ``(pool, op)`` the primary refine step would pick now.

    Re-evaluates the refine pass's primary pool sequence under the
    edited ``lambda`` from recorded data: ``W`` thresholds the recorded
    ``Q_b`` finish times against the new constraint, ``Qb``/``any`` are
    deadline-independent, and the min-edge-loss tie-break gets the
    recorded bound-resource latencies in place of a live binding.
    """
    bound_lat: Mapping[str, int] = record["bound_lat"]
    if options.blind_refinement:
        pools: Tuple[str, ...] = ("any",)
    else:
        pools = ("W", "Qb")
    q_b: Set[str] = set(record.get("qb") or ())
    finish: Mapping[str, int] = record.get("finish") or {}
    for pool in pools:
        if pool == "W":
            candidates = {
                name
                for name in sorted(q_b)
                if finish[name] <= latency_constraint
            }
        elif pool == "Qb":
            candidates = set(q_b)
        else:
            candidates = set(names)
        chosen = choose_refinement_op(
            wcg,
            candidates,
            binding=None,
            selector=options.selector,
            bound_faster=bound_lat,
        )
        if chosen is not None:
            return pool, chosen
    return None


def _verify_record(
    wcg: WordlengthCompatibilityGraph,
    names: Tuple[str, ...],
    record: Mapping[str, Any],
    latency_constraint: int,
    options: DPAllocOptions,
) -> bool:
    """Would a cold solve under ``latency_constraint`` take this move?"""
    primary = _simulate_primary(wcg, names, record, latency_constraint, options)
    move, target, pool = record["move"], record["target"], record["pool"]
    if move == "bump":
        # With the primary pools empty, the bump branch sees exactly the
        # recorded (deadline-independent) state: same bumpable set, same
        # bottleneck kind, hence the same move.
        return primary is None
    if move != "refine":
        return False
    if options.blind_refinement or pool in ("W", "Qb"):
        return primary == (pool, target)
    if pool == "any":
        # Last-resort refinement: reached only when the primary pools
        # and the bump branch both came up empty.  The bump branch and
        # the any-pool choice are deadline-independent, so the recorded
        # move stands iff the primary pools are still empty.
        if primary is not None:
            return False
        chosen = choose_refinement_op(
            wcg,
            set(names),
            binding=None,
            selector=options.selector,
            bound_faster=record["bound_lat"],
        )
        return chosen == target
    return False


def replay_solve(
    problem: Problem,
    options: Optional[DPAllocOptions],
    mode: Optional[str],
    records: Sequence[Mapping[str, Any]],
) -> ReplayOutcome:
    """Solve ``problem`` by replaying a recorded base solve.

    ``problem`` is the *edited* problem; it must differ from the
    recorded base only in ``latency_constraint`` (the caller gates on
    :meth:`EditFootprint.replayable`).  ``records`` is the base solve's
    :class:`~repro.core.solver.ReplayRecorder` stream.

    Raises nothing for infeasible continuations -- the error message a
    cold solve would raise comes back in :attr:`ReplayOutcome.error`.
    """
    from .problem import InfeasibleError
    from .solver import resolve_solver_mode

    opts = options or DPAllocOptions()
    incremental = resolve_solver_mode(mode) == "incremental"
    lam = problem.latency_constraint
    names = problem.graph.names
    wcg = WordlengthCompatibilityGraph(
        problem.graph.operations, problem.resource_set(), problem.latency_model
    )

    prefix: List[Dict[str, Any]] = []
    strategy = "resumed"
    for record in records:
        if record["move"] == "accept":
            if int(record["makespan"]) <= lam:
                # Every earlier iteration verified and the recorded
                # accept still meets the edited deadline: the base
                # solve *is* the cold solve of the edited problem.
                return ReplayOutcome(
                    strategy="replay",
                    verified_iterations=len(prefix) + 1,
                    records=[dict(r) for r in records],
                )
            # Deadline tightened past the recorded accept: the cold
            # solve keeps refining where the base stopped.
            break
        if int(record["makespan"]) <= lam:
            # Relaxed deadline: the cold solve accepts at this
            # iteration instead of taking the recorded move.  One
            # pipeline iteration recomputes the datapath the recorder
            # did not capture.
            break
        if not _verify_record(wcg, names, record, lam, opts):
            strategy = "diverged"
            break
        if record["move"] == "refine":
            wcg.refine(record["target"])
        prefix.append(dict(record))

    state = forward_state(problem, opts, incremental, prefix)
    recorder = ReplayRecorder()
    try:
        datapath = solve_loop(state, recorder)
    except InfeasibleError as exc:
        return ReplayOutcome(
            strategy=strategy,
            error=str(exc),
            verified_iterations=len(prefix),
            resumed_iterations=state.iteration - len(prefix),
        )
    return ReplayOutcome(
        strategy=strategy,
        datapath=datapath,
        verified_iterations=len(prefix),
        resumed_iterations=datapath.iterations - len(prefix),
        records=prefix + recorder.records,
    )
