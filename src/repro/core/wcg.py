"""The wordlength compatibility graph ``G(V, E)`` (paper section 2.1).

``V = O ∪ R``: operations and resource-wordlength types.
``E = C ∪ H``:

* ``H`` -- undirected edges ``{o, r}`` meaning operation ``o`` can be
  executed by resource type ``r``.  Initially these are exactly the
  coverage edges (same resource kind, sufficient wordlength); Algorithm
  DPAlloc *refines* wordlength information by deleting the edges to an
  operation's slowest compatible resources, which lowers that operation's
  latency upper bound ``L_o``.
* ``C`` -- directed edges ``(o1, o2)`` meaning ``o1`` is scheduled to
  complete before ``o2`` starts.  ``C`` is derived from a schedule (see
  :meth:`compatibility_edges`) and forms a transitive orientation of the
  subgraph ``G'(O, C)`` -- the property that lets binding find maximum
  cliques in linear time (Golumbic [11]).

This class owns the mutable ``H`` edge set plus the latency quantities
derived from it, and computes the *scheduling set* ``S`` (minimum subset
of ``R`` covering all operations) required by the Eqn. 3 constraint.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from ..ir.ops import Operation
from ..resources.latency import LatencyModel
from ..resources.types import ResourceType
from ..utils.covering import min_cardinality_cover

__all__ = ["WordlengthCompatibilityGraph"]


class WordlengthCompatibilityGraph:
    """Operations, resource types, and the mutable ``H`` edge set."""

    def __init__(
        self,
        ops: Iterable[Operation],
        resources: Iterable[ResourceType],
        latency_model: LatencyModel,
        h_edges: Optional[Mapping[str, Iterable[ResourceType]]] = None,
    ) -> None:
        self._ops: Dict[str, Operation] = {op.name: op for op in ops}
        self._resources: Tuple[ResourceType, ...] = tuple(sorted(set(resources)))
        self._latency_model = latency_model
        self._latency_cache: Dict[ResourceType, int] = {
            r: latency_model.latency(r) for r in self._resources
        }

        if h_edges is None:
            self._h: Dict[str, Set[ResourceType]] = {
                name: {r for r in self._resources if r.covers(op)}
                for name, op in self._ops.items()
            }
        else:
            self._h = {
                name: set(h_edges.get(name, ())) for name in self._ops
            }
        for name, compatible in self._h.items():
            if not compatible:
                raise ValueError(
                    f"operation {name!r} has no compatible resource type"
                )
            for r in compatible:
                if not r.covers(self._ops[name]):
                    raise ValueError(f"edge {{{name}, {r}}} is not a coverage edge")
        # Reverse H index (resource -> op names), maintained under
        # refinement so O(r) lookups never rescan the whole edge set.
        self._ops_by_resource: Dict[ResourceType, Set[str]] = {
            r: set() for r in self._resources
        }
        for name, compatible in self._h.items():
            for r in compatible:
                self._ops_by_resource[r].add(name)
        # Sorted-neighbourhood caches; refinement drops the refined
        # op's entry (and its victims' reverse entries) only.
        self._sorted_h: Dict[str, Tuple[ResourceType, ...]] = {}
        self._sorted_ops: Dict[ResourceType, Tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def operations(self) -> Tuple[Operation, ...]:
        return tuple(self._ops.values())

    @property
    def resources(self) -> Tuple[ResourceType, ...]:
        return self._resources

    def operation(self, name: str) -> Operation:
        return self._ops[name]

    def latency(self, resource: ResourceType) -> int:
        """Cycles needed by one execution on ``resource``."""
        return self._latency_cache[resource]

    # passaudit: const(lazy sort memo; refine() drops the entry)
    def compatible_resources(self, name: str) -> Tuple[ResourceType, ...]:
        """Current ``H`` neighbours of operation ``name``, sorted."""
        cached = self._sorted_h.get(name)
        if cached is None:
            cached = tuple(sorted(self._h[name]))
            self._sorted_h[name] = cached
        return cached

    # passaudit: const(lazy sort memo; refine() drops affected entries)
    def ops_for_resource(self, resource: ResourceType) -> Tuple[str, ...]:
        """``O(r)``: operations with a current ``H`` edge to ``resource``."""
        members = self._ops_by_resource.get(resource)
        if members is None:
            return ()
        cached = self._sorted_ops.get(resource)
        if cached is None:
            cached = tuple(sorted(members))
            self._sorted_ops[resource] = cached
        return cached

    def has_edge(self, name: str, resource: ResourceType) -> bool:
        return resource in self._h[name]

    def edge_count(self) -> int:
        """Total number of ``H`` edges (monotone under refinement)."""
        return sum(len(res) for res in self._h.values())

    # ------------------------------------------------------------------
    # latency bounds (Table 1: L_o and the per-resource latencies)
    # ------------------------------------------------------------------
    def upper_bound_latency(self, name: str) -> int:
        """``L_o``: slowest compatible resource of operation ``name``."""
        return max(self._latency_cache[r] for r in self._h[name])

    def min_latency(self, name: str) -> int:
        """Fastest compatible resource of operation ``name``."""
        return min(self._latency_cache[r] for r in self._h[name])

    def upper_bound_latencies(self) -> Dict[str, int]:
        """``L_o`` for every operation."""
        return {name: self.upper_bound_latency(name) for name in self._ops}

    def can_refine(self, name: str) -> bool:
        """Whether deleting the slowest edges would leave the op coverable."""
        latencies = {self._latency_cache[r] for r in self._h[name]}
        return len(latencies) > 1

    def refine(self, name: str) -> List[ResourceType]:
        """Delete all edges ``{name, r}`` with ``latency(r) == L_name``.

        Paper section 2.4, final step.  Returns the deleted resource
        types.  Raises ``ValueError`` if the operation cannot be refined
        (all its compatible resources share one latency).
        """
        if not self.can_refine(name):
            raise ValueError(f"operation {name!r} cannot be refined further")
        bound = self.upper_bound_latency(name)
        victims = sorted(
            r for r in self._h[name] if self._latency_cache[r] == bound
        )
        self._h[name] -= set(victims)
        self._sorted_h.pop(name, None)
        for r in victims:
            self._ops_by_resource[r].discard(name)
            self._sorted_ops.pop(r, None)
        return victims

    # ------------------------------------------------------------------
    # scheduling set (section 2.2)
    # ------------------------------------------------------------------
    def kinds(self) -> Tuple[str, ...]:
        """Resource kinds present in the operation set, sorted."""
        return tuple(sorted({op.resource_kind for op in self._ops.values()}))

    def kind_cover(self, kind: str) -> Tuple[ResourceType, ...]:
        """Minimum-cardinality cover of the operations of one kind.

        Coverage edges never cross kinds (``ResourceType.covers``
        requires kind equality, and the constructor validates every
        ``H`` edge is a coverage edge), so the scheduling-set problem
        decomposes exactly into independent per-kind covers.  This is
        the unit of incremental recomputation: refining an operation
        invalidates only its own kind's cover.
        """
        universe: Set[str] = {
            name
            for name, op in self._ops.items()
            if op.resource_kind == kind
        }
        sets = {
            r: self._ops_by_resource[r] & universe
            for r in self._resources
            if r.kind == kind
        }
        cover = min_cardinality_cover(universe, sets)
        return tuple(sorted(cover))

    def scheduling_set(self) -> Tuple[ResourceType, ...]:
        """Minimum-cardinality ``S ⊆ R`` with an ``H`` edge to every op.

        Computed per resource kind (:meth:`kind_cover`) and merged; the
        decomposition is exact because ``H`` edges never cross kinds.
        """
        members: List[ResourceType] = []
        for kind in self.kinds():
            members.extend(self.kind_cover(kind))
        return tuple(sorted(members))

    def members_covering(
        self, name: str, scheduling_set: Iterable[ResourceType]
    ) -> Tuple[ResourceType, ...]:
        """``S(o)``: scheduling-set members with an ``H`` edge to ``name``."""
        return tuple(sorted(s for s in scheduling_set if s in self._h[name]))

    # ------------------------------------------------------------------
    # compatibility edges C (derived from a schedule)
    # ------------------------------------------------------------------
    def compatibility_edges(
        self, schedule: Mapping[str, int], latencies: Mapping[str, int]
    ) -> Set[Tuple[str, str]]:
        """``C``: pairs ``(o1, o2)`` with ``o1`` finishing before ``o2`` starts.

        Using the latency upper bounds here guarantees any binding derived
        from these cliques never violates the schedule (section 2.3).
        The relation is an interval order, hence transitively closed.
        """
        names = sorted(self._ops)
        edges: Set[Tuple[str, str]] = set()
        for o1 in names:
            finish = schedule[o1] + latencies[o1]
            for o2 in names:
                if o1 != o2 and finish <= schedule[o2]:
                    edges.add((o1, o2))
        return edges

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def h_snapshot(self) -> Dict[str, FrozenSet[ResourceType]]:
        """Immutable snapshot of the current ``H`` edges (for traces)."""
        return {name: frozenset(res) for name, res in self._h.items()}

    def copy(self) -> "WordlengthCompatibilityGraph":
        return WordlengthCompatibilityGraph(
            self.operations,
            self._resources,
            self._latency_model,
            h_edges={name: set(res) for name, res in self._h.items()},
        )

    def __repr__(self) -> str:
        return (
            f"WordlengthCompatibilityGraph(|O|={len(self._ops)}, "
            f"|R|={len(self._resources)}, |H|={self.edge_count()})"
        )
