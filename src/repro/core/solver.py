"""The DPAlloc solver core: an incremental pass pipeline.

The paper's Algorithm DPAlloc is an iterative refine-and-reschedule
loop.  This module factors one outer-loop iteration into explicit
passes over a shared :class:`SolverState`::

    bounds -> schedule -> bind -> check -> refine/bump

driven by :func:`run_pipeline`.  The state tracks *dirtiness* between
iterations so each pass reuses whatever a refinement provably did not
touch:

* **bounds** -- deleting the ``H`` edges of one operation changes only
  that operation's latency upper bound ``L_o``; every other bound is
  reused.
* **schedule** -- the scheduling set decomposes exactly into per-kind
  covers (``H`` edges never cross kinds), so only the refined
  operation's kind is re-covered; and the greedy list schedule is
  resumed from the last placement that provably cannot have changed
  (see :class:`repro.core.scheduling.ScheduleWarmStart` for the
  argument) instead of being rebuilt from control step 0.
* **bind / check** -- Bindselect's greedy runs every iteration, but its
  max-chain kernel is memoised in a :class:`~repro.core.binding.ChainCache`:
  chains whose candidate sets and members' ``(start, L_o)`` values did
  not move since the previous iteration are replayed verbatim.
* **refine** -- the bound critical path ``Q_b`` is maintained by a
  :class:`~repro.core.refinement.BoundPathEngine`: ASAP/ALAP longest
  paths over the augmented DAG are repaired per added/deleted binding
  edge and per changed bound latency instead of being rebuilt.

Setting ``REPRO_SOLVER=scratch`` (or passing ``mode="scratch"``)
disables every reuse: all pass products are recomputed from scratch
each iteration.  Scratch and incremental solves are **byte-identical**
in canonical JSON -- the escape hatch exists precisely so that parity
can be enforced by tests and CI over the full experiment sweep.

Each iteration also emits a :class:`~repro.core.solution.TraceEvent`
(move taken, makespan, area, scheduling-set size); with
``DPAllocOptions(trace=True)`` the trace is attached to the returned
:class:`~repro.core.solution.Datapath` and flows through the engine
envelope, JSON round-trips, and the ``repro trace`` CLI summarizer.
"""

from __future__ import annotations

import os
import time
from collections import Counter
from dataclasses import dataclass, replace
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..resources.types import ResourceType
from .binding import Binding, ChainCache, bindselect
from .problem import InfeasibleError, Problem
from .refinement import (
    BoundPathEngine,
    RefinementStep,
    bound_critical_path,
    refine_once,
)
from .scheduling import (
    ScheduleWarmStart,
    critical_path_priorities,
    list_schedule_outcome,
)
from .solution import Datapath, TraceEvent
from .wcg import WordlengthCompatibilityGraph

__all__ = [
    "DPAllocOptions",
    "ReplayRecorder",
    "SOLVER_ENV",
    "SOLVER_MODES",
    "Pass",
    "SolverState",
    "forward_state",
    "resolve_solver_mode",
    "run_pipeline",
    "solve_loop",
]

SOLVER_ENV = "REPRO_SOLVER"
SOLVER_MODES = ("incremental", "scratch")

# The incremental-reuse protocol, declared as literals so reprolint's
# RL007 can check it statically (see docs/static-analysis.md):
#
# * ``REUSE_CHANNELS``: a pass whose effects write the key field must
#   also write every listed dirtiness channel -- downstream passes
#   consult those channels to decide which derived products survive.
# * ``REUSE_MEMOS``: a pass that reads a memo structure must also
#   refresh it; memos are never trusted stale across iterations.
REUSE_CHANNELS: Dict[str, Tuple[str, ...]] = {
    "wcg": ("pending_bound_ops", "pending_refined_ops", "dirty_cover_kinds"),
}
REUSE_MEMOS: Tuple[str, ...] = ("chain_cache", "bound_path")

_MODES = ("min-units", "asap", "best")
_CONSTRAINTS = ("eqn3", "eqn2")
_SELECTORS = ("min-edge-loss", "name-order")


def resolve_solver_mode(requested: Optional[str] = None) -> str:
    """Solver recomputation mode: argument > ``REPRO_SOLVER`` env > default.

    ``"incremental"`` (default) reuses unaffected per-iteration work;
    ``"scratch"`` recomputes every pass product each iteration.  The
    two are guaranteed byte-identical in canonical output.
    """
    value = requested or os.environ.get(SOLVER_ENV) or "incremental"
    if value not in SOLVER_MODES:
        raise ValueError(
            f"solver mode must be one of {SOLVER_MODES}, got {value!r}"
        )
    return value


@dataclass(frozen=True)
class DPAllocOptions:
    """Tunable knobs of the heuristic (defaults = the paper's algorithm).

    A frozen dataclass: option sets hash, compare, serialise
    (``dataclasses.asdict``) and derive (``dataclasses.replace``) without
    hand-copied field lists.

    Attributes:
        grow: enable Bindselect's clique-growth compensation.
        shrink: enable the final cheapest-cover wordlength selection.
        constraint: scheduling bound, ``"eqn3"`` (paper) or ``"eqn2"``
            (naive ablation).
        mode: ``"min-units"`` (paper: schedule under the minimal derived
            unit counts ``N_y = |S_y|``), ``"asap"`` (ablation: no
            derived constraints; only user-specified ``N_y`` apply), or
            ``"best"`` (extension: run both and keep the smaller-area
            feasible datapath -- the ablation study shows each reading
            wins on a sizeable fraction of instances).
        selector: refinement candidate rule, ``"min-edge-loss"`` (paper)
            or ``"name-order"`` (ablation).
        blind_refinement: ablation -- skip the bound-critical-path
            analysis and refine from the whole operation set.
        max_iterations: optional hard cap on outer-loop iterations
            (under ``mode="best"`` the cap applies to each sub-mode).
        trace: attach the per-iteration :class:`TraceEvent` sequence to
            the returned datapath.
    """

    grow: bool = True
    shrink: bool = True
    constraint: str = "eqn3"
    mode: str = "min-units"
    selector: str = "min-edge-loss"
    blind_refinement: bool = False
    max_iterations: Optional[int] = None
    trace: bool = False

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.constraint not in _CONSTRAINTS:
            raise ValueError(f"unknown constraint {self.constraint!r}")
        if self.selector not in _SELECTORS:
            raise ValueError(f"unknown selector {self.selector!r}")


def _bottleneck_kind(
    problem: Problem,
    schedule: Dict[str, int],
    bound_latencies: Dict[str, int],
) -> str:
    """Resource kind of the last-finishing operation (deterministic).

    Ties among equally-late finishers resolve to the lexicographically
    *smallest* operation name, matching every other deterministic
    choice in the solver.
    """
    last_finish = max(schedule[n] + bound_latencies[n] for n in schedule)
    name = min(
        n for n in schedule if schedule[n] + bound_latencies[n] == last_finish
    )
    return problem.graph.operation(name).resource_kind


class SolverState:
    """Everything one DPAlloc solve owns, shared by the passes.

    Holds the problem, the mutable WCG, the derived constraints, the
    current schedule/binding, the refinement and trace records, and the
    dirtiness bookkeeping that lets incremental runs reuse unaffected
    per-iteration work.  ``incremental=False`` (the ``REPRO_SOLVER=
    scratch`` escape hatch) makes every pass recompute from scratch.
    """

    def __init__(
        self, problem: Problem, options: DPAllocOptions, incremental: bool
    ) -> None:
        self.problem = problem
        self.options = options
        self.incremental = incremental

        graph = problem.graph
        self.graph = graph
        self.names: Tuple[str, ...] = graph.names
        self.edges = graph.edges()
        self.kind_of: Dict[str, str] = {
            op.name: op.resource_kind for op in graph.operations
        }
        self.ops_per_kind: Dict[str, int] = dict(
            Counter(self.kind_of.values())
        )
        self.ops_of_kind: Dict[str, Tuple[str, ...]] = {
            kind: tuple(n for n in self.names if self.kind_of[n] == kind)
            for kind in self.ops_per_kind
        }
        self.user_kinds: Set[str] = set(problem.resource_constraints or {})

        self.wcg = WordlengthCompatibilityGraph(
            graph.operations, problem.resource_set(), problem.latency_model
        )

        # Refinements delete >= 1 H edge each; bumps add >= 1 unit each.
        self.iteration_cap = (
            self.wcg.edge_count() - len(self.names) + 1
        ) + sum(self.ops_per_kind.values())
        if options.max_iterations is not None:
            self.iteration_cap = min(self.iteration_cap, options.max_iterations)

        self.iteration = 0
        self.bumps: Dict[str, int] = {}
        self.refinements: List[RefinementStep] = []
        self.trace: List[TraceEvent] = []

        # Pass products (None until first computed).
        self.upper_bounds: Optional[Dict[str, int]] = None
        self.kind_covers: Optional[Dict[str, Tuple[ResourceType, ...]]] = None
        self.scheduling_set: Tuple[ResourceType, ...] = ()
        self.constraints: Dict[str, int] = {}
        self.schedule: Optional[Dict[str, int]] = None
        self.schedule_greedy = False
        self.binding: Optional[Binding] = None
        self.bound_latencies: Dict[str, int] = {}
        self.makespan = 0
        self.area = 0.0
        self.feasible = False

        # Dirtiness between iterations.  ``pending_bound_ops`` feeds the
        # bounds pass; ``pending_refined_ops`` feeds the schedule pass's
        # affected-cone computation; cover kinds feed the per-kind
        # scheduling-set cache.
        self.pending_bound_ops: Set[str] = set()
        self.pending_refined_ops: Set[str] = set()
        self.dirty_cover_kinds: Set[str] = set()

        # Previous-iteration snapshots consumed by warm starts.
        self.prev_kind_covers: Dict[str, Tuple[ResourceType, ...]] = {}
        self.prev_constraints: Dict[str, int] = {}
        self.scheduled_bounds: Dict[str, int] = {}
        self.prev_priorities: Dict[str, int] = {}
        self.prev_first_rejects: Dict[str, int] = {}

        # Cross-iteration reuse state of the bind and refine passes
        # (incremental runs only): memoised Bindselect max chains and
        # the maintained bound-critical-path engine.
        self.chain_cache: Optional[ChainCache] = (
            ChainCache() if incremental else None
        )
        self.bound_path: Optional[BoundPathEngine] = None

    # ------------------------------------------------------------------
    def record_refinement(self, step: RefinementStep) -> None:
        """Bookkeeping for one accepted refinement move."""
        self.refinements.append(step)
        self.pending_bound_ops.add(step.operation)
        self.pending_refined_ops.add(step.operation)
        self.dirty_cover_kinds.add(self.kind_of[step.operation])
        self.trace.append(
            TraceEvent(
                iteration=self.iteration,
                move="refine",
                target=step.operation,
                pool=step.source,
                makespan=self.makespan,
                area=self.area,
                scheduling_set_size=len(self.scheduling_set),
            )
        )

    def record_bump(self, kind: str) -> None:
        """Bookkeeping for one unit-count bump move."""
        self.bumps[kind] = self.bumps.get(kind, 0) + 1
        self.trace.append(
            TraceEvent(
                iteration=self.iteration,
                move="bump",
                target=kind,
                pool=None,
                makespan=self.makespan,
                area=self.area,
                scheduling_set_size=len(self.scheduling_set),
            )
        )

    def record_accept(self) -> None:
        self.trace.append(
            TraceEvent(
                iteration=self.iteration,
                move="accept",
                target=None,
                pool=None,
                makespan=self.makespan,
                area=self.area,
                scheduling_set_size=len(self.scheduling_set),
            )
        )

    def to_datapath(self) -> Datapath:
        assert self.schedule is not None and self.binding is not None
        assert self.upper_bounds is not None
        return Datapath(
            schedule=dict(self.schedule),
            binding=self.binding,
            upper_bounds=dict(self.upper_bounds),
            bound_latencies=dict(self.bound_latencies),
            makespan=self.makespan,
            area=self.area,
            iterations=self.iteration,
            refinements=tuple(self.refinements),
            trace=tuple(self.trace) if self.options.trace else (),
        )


class Pass:
    """One stage of the DPAlloc pipeline, operating on a SolverState.

    Every concrete pass declares its effect contract: ``reads`` and
    ``writes`` are literal frozensets of the ``SolverState`` field
    names ``run`` may touch (directly or through helpers).  The
    contracts are machine-checked against the inferred effects by
    reprolint rule RL006, so a pass growing a new dependency without
    updating its declaration fails CI.
    """

    name = "pass"
    reads: FrozenSet[str]
    writes: FrozenSet[str]

    def run(self, state: SolverState) -> None:
        raise NotImplementedError


class BoundsPass(Pass):
    """Latency upper bounds ``L_o`` (paper Table 1).

    Incremental: an ``H``-edge deletion changes only the refined
    operation's bound, so only the pending dirty ops are recomputed.
    """

    name = "bounds"
    reads = frozenset({
        "incremental", "pending_bound_ops", "upper_bounds", "wcg",
    })
    writes = frozenset({"pending_bound_ops", "upper_bounds"})

    def run(self, state: SolverState) -> None:
        if state.incremental and state.upper_bounds is not None:
            for name in sorted(state.pending_bound_ops):
                state.upper_bounds[name] = state.wcg.upper_bound_latency(name)
        else:
            state.upper_bounds = state.wcg.upper_bound_latencies()
        state.pending_bound_ops.clear()


class SchedulePass(Pass):
    """Scheduling set, derived constraints, and the list schedule.

    Incremental: only the refined operation's kind is re-covered (the
    cover problem is kind-separable), and the greedy list schedule is
    warm-started past the placements that provably cannot have changed.
    """

    name = "schedule"
    reads = frozenset({
        "bumps", "dirty_cover_kinds", "graph", "incremental",
        "kind_covers", "ops_of_kind", "ops_per_kind", "options",
        "pending_refined_ops", "prev_constraints", "prev_first_rejects",
        "prev_kind_covers", "prev_priorities", "problem", "schedule",
        "schedule_greedy", "scheduled_bounds", "upper_bounds", "wcg",
    })
    writes = frozenset({
        "constraints", "dirty_cover_kinds", "kind_covers",
        "pending_refined_ops", "prev_constraints", "prev_first_rejects",
        "prev_kind_covers", "prev_priorities", "schedule",
        "schedule_greedy", "scheduled_bounds", "scheduling_set",
    })

    def run(self, state: SolverState) -> None:
        opts = state.options
        wcg = state.wcg

        if state.incremental and state.kind_covers is not None:
            for kind in sorted(state.dirty_cover_kinds):
                state.kind_covers[kind] = wcg.kind_cover(kind)
        else:
            state.kind_covers = {
                kind: wcg.kind_cover(kind) for kind in wcg.kinds()
            }
        scheduling_set = tuple(
            sorted(
                member
                for cover in state.kind_covers.values()
                for member in cover
            )
        )

        if opts.mode == "min-units":
            constraints = self._derived_constraints(state)
        else:
            constraints = dict(state.problem.resource_constraints or {})

        assert state.upper_bounds is not None
        priorities = critical_path_priorities(state.graph, state.upper_bounds)
        warm = self._warm_start(state, priorities, constraints)
        outcome = list_schedule_outcome(
            state.graph,
            wcg,
            state.upper_bounds,
            resource_constraints=constraints,
            constraint=opts.constraint,
            scheduling_set=scheduling_set,
            warm=warm,
            priorities=priorities,
        )

        state.schedule = outcome.starts
        state.schedule_greedy = outcome.greedy
        state.scheduling_set = scheduling_set
        state.constraints = constraints
        state.prev_kind_covers = dict(state.kind_covers)
        state.prev_constraints = dict(constraints)
        state.scheduled_bounds = dict(state.upper_bounds)
        state.prev_priorities = priorities
        state.prev_first_rejects = dict(outcome.first_rejects)
        state.pending_refined_ops = set()
        state.dirty_cover_kinds = set()

    @staticmethod
    def _derived_constraints(state: SolverState) -> Dict[str, int]:
        """Effective ``N_y``: user ceilings where given, else ``|S_y| + bump``."""
        assert state.kind_covers is not None
        user = dict(state.problem.resource_constraints or {})
        constraints: Dict[str, int] = {}
        for kind, total in state.ops_per_kind.items():
            if kind in user:
                constraints[kind] = user[kind]
            else:
                derived = len(state.kind_covers.get(kind, ())) + state.bumps.get(
                    kind, 0
                )
                constraints[kind] = min(max(derived, 1), total)
        return constraints

    @staticmethod
    def _warm_start(
        state: SolverState,
        priorities: Dict[str, int],
        constraints: Dict[str, int],
    ) -> Optional[ScheduleWarmStart]:
        """Divergence inputs for resuming last iteration's greedy schedule.

        Release-based *affected* ops = the refined ops (latency and
        Eqn.-3 share changes) plus every op whose critical-path priority
        value actually moved (latency changes only propagate upward, and
        usually die out where another successor chain dominates) plus
        every op of a kind whose scheduling-set cover changed or whose
        constraint moved non-monotonically.  A kind whose constraint
        merely *increased* (cover unchanged) cannot flip a decision
        before the previous run's first rejection of that kind, which
        becomes the ``t0_cap`` bound instead of dragging the whole kind
        into the affected set.
        """
        if not state.incremental or state.schedule is None:
            return None
        if not state.schedule_greedy:
            # The serial fallback is not a greedy event trace; the
            # prefix-reuse proof does not apply to it.
            return None
        affected: Set[str] = set(state.pending_refined_ops)
        affected.update(
            name
            for name, value in priorities.items()
            if state.prev_priorities.get(name) != value
        )
        assert state.kind_covers is not None
        t0_cap: Optional[int] = None
        for kind in state.ops_per_kind:
            cover_same = state.prev_kind_covers.get(kind) == state.kind_covers.get(
                kind
            )
            prev_limit = state.prev_constraints.get(kind)
            new_limit = constraints.get(kind)
            if cover_same and prev_limit == new_limit:
                continue
            if (
                cover_same
                and prev_limit is not None
                and new_limit is not None
                and new_limit > prev_limit
            ):
                # Monotone admission: every previous grant still holds.
                first = state.prev_first_rejects.get(kind)
                if first is not None:
                    t0_cap = first if t0_cap is None else min(t0_cap, first)
                continue
            affected.update(state.ops_of_kind[kind])
        return ScheduleWarmStart(
            prev_starts=state.schedule,
            prev_latencies=state.scheduled_bounds,
            affected=frozenset(affected),
            t0_cap=t0_cap,
            prev_first_rejects=state.prev_first_rejects,
        )


class BindPass(Pass):
    """Combined binding and wordlength selection (Algorithm Bindselect).

    The greedy clique cover is a global decision, so the greedy loop
    itself runs every iteration in both modes -- but its dominant cost,
    the per-resource max-chain computation, is a pure function of the
    candidate tuple and its members' ``(start, L_o)`` values.
    Incremental: a persistent :class:`ChainCache` replays chains whose
    inputs did not move; ``refresh`` evicts exactly the chains touching
    operations the last refinement's schedule/bounds diff actually
    changed.  Scratch: every chain is recomputed.  Both are
    byte-identical by construction.
    """

    name = "bind"
    reads = frozenset({
        "chain_cache", "names", "options", "problem", "schedule",
        "upper_bounds", "wcg",
    })
    writes = frozenset({"binding", "chain_cache"})

    def run(self, state: SolverState) -> None:
        assert state.schedule is not None and state.upper_bounds is not None
        cache = state.chain_cache
        if cache is not None:
            cache.refresh(state.schedule, state.upper_bounds, state.names)
        state.binding = bindselect(
            state.wcg,
            state.schedule,
            state.upper_bounds,
            state.problem.area_model,
            grow=state.options.grow,
            shrink=state.options.shrink,
            chain_cache=cache,
        )


class CheckPass(Pass):
    """Evaluate the bound datapath against the latency constraint."""

    name = "check"
    reads = frozenset({
        "binding", "bound_latencies", "makespan", "names", "problem",
        "schedule", "wcg",
    })
    writes = frozenset({
        "area", "bound_latencies", "feasible", "makespan",
    })

    def run(self, state: SolverState) -> None:
        assert state.schedule is not None and state.binding is not None
        state.bound_latencies = state.binding.bound_latencies(state.wcg)
        state.makespan = max(
            state.schedule[n] + state.bound_latencies[n] for n in state.names
        )
        state.area = state.binding.area(state.problem.area_model)
        state.feasible = state.makespan <= state.problem.latency_constraint


class RefinePass(Pass):
    """Pick the iteration's move: refine an op or bump a unit count.

    Mirrors the paper's section 2.4 plus the two documented completions
    (unit duplication when the bound critical path is unrefinable, and
    a last-resort whole-set refinement).  Incremental: the bound
    critical path ``Q_b`` comes from the maintained
    :class:`BoundPathEngine` (exact single-edge/latency updates to the
    augmented-DAG ASAP/ALAP longest paths) instead of a from-scratch
    rebuild; the set is provably identical.  Raises ``InfeasibleError``
    when no move exists or the iteration cap is hit.
    """

    name = "refine"
    reads = frozenset({
        "area", "binding", "bound_latencies", "bound_path", "bumps",
        "constraints", "dirty_cover_kinds", "edges", "incremental",
        "iteration", "iteration_cap", "kind_of", "makespan", "names",
        "ops_per_kind", "options", "pending_bound_ops",
        "pending_refined_ops", "problem", "refinements", "schedule",
        "scheduling_set", "trace", "upper_bounds", "user_kinds", "wcg",
    })
    writes = frozenset({
        "bound_path", "bumps", "dirty_cover_kinds", "pending_bound_ops",
        "pending_refined_ops", "refinements", "trace", "wcg",
    })

    def run(self, state: SolverState) -> None:
        opts = state.options
        problem = state.problem
        if state.iteration >= state.iteration_cap:
            raise InfeasibleError(
                f"DPAlloc exceeded its iteration bound ({state.iteration_cap}) "
                f"without meeting latency {problem.latency_constraint} "
                f"(best makespan {state.makespan})"
            )

        assert state.schedule is not None and state.binding is not None
        q_b = None
        if state.incremental and not opts.blind_refinement:
            if state.bound_path is None:
                state.bound_path = BoundPathEngine(state.names, state.edges)
            q_b = state.bound_path.critical_ops(
                state.schedule, state.binding, state.bound_latencies
            )
        # Preferred move: refine a bound-critical operation (paper §2.4).
        primary_pools = ("any",) if opts.blind_refinement else ("W", "Qb")
        try:
            step = refine_once(
                state.wcg,
                state.names,
                state.edges,
                state.schedule,
                state.binding,
                problem.latency_constraint,
                pools=primary_pools,
                selector=opts.selector,
                bound_latencies=state.bound_latencies,
                upper_bounds=state.upper_bounds,
                q_b=q_b,
            )
            state.record_refinement(step)
            return
        except InfeasibleError:
            pass

        # The bound critical path is unrefinable.  In min-units mode the
        # principled move is to duplicate a unit of the bottleneck kind,
        # directly relieving the serialisation that limits the makespan.
        if opts.mode == "min-units":
            bumpable = sorted(
                kind
                for kind, limit in state.constraints.items()
                if kind not in state.user_kinds
                and limit < state.ops_per_kind[kind]
            )
            if bumpable:
                preferred = _bottleneck_kind(
                    problem, state.schedule, state.bound_latencies
                )
                kind = preferred if preferred in bumpable else bumpable[0]
                state.record_bump(kind)
                return

        # Last resort: refine any refinable operation (it may still grow
        # the scheduling set and unlock parallelism).
        try:
            step = refine_once(
                state.wcg,
                state.names,
                state.edges,
                state.schedule,
                state.binding,
                problem.latency_constraint,
                pools=("any",),
                selector=opts.selector,
                bound_latencies=state.bound_latencies,
                upper_bounds=state.upper_bounds,
            )
            state.record_refinement(step)
        except InfeasibleError:
            raise InfeasibleError(
                f"latency constraint {problem.latency_constraint} unreachable "
                f"even with fully refined wordlengths and duplicated units "
                f"(best makespan {state.makespan})"
            ) from None


PIPELINE: Tuple[Pass, ...] = (BoundsPass(), SchedulePass(), BindPass(), CheckPass())
_REFINE = RefinePass()


def _now_ms() -> float:
    """Wall clock for perf telemetry (non-canonical by construction).

    The readings land only in the ``compare=False`` telemetry fields of
    :class:`TraceEvent`, which equality ignores and the canonical JSON
    serializer never emits -- so the parity contract is untouched.
    """
    return time.perf_counter() * 1e3  # reprolint: disable=RL002(telemetry only: compare=False TraceEvent fields, never serialized canonically)


def _attach_perf(
    state: SolverState,
    pass_ms: Dict[str, float],
    cache_base: Optional[Tuple[int, int, int]],
) -> None:
    """Fold the iteration's perf telemetry into its trace event.

    ``run_pipeline`` is not a :class:`Pass`, so decorating the event it
    just appended keeps the RL006 pass effect contracts unchanged.
    """
    if not state.trace:
        return
    cache = state.chain_cache
    hits = misses = evicted = None
    if cache is not None and cache_base is not None:
        hits = cache.hits - cache_base[0]
        misses = cache.misses - cache_base[1]
        evicted = cache.evicted - cache_base[2]
    state.trace[-1] = replace(
        state.trace[-1],
        pass_ms=dict(pass_ms),
        cache_hits=hits,
        cache_misses=misses,
        cache_evicted=evicted,
    )


class ReplayRecorder:
    """Opt-in capture of the per-iteration data a delta replay needs.

    Lives outside the :class:`Pass` effect contracts: ``solve_loop``
    feeds it after each iteration, exactly like :func:`_attach_perf`
    decorates the trace, so the RL006 pass maps stay unchanged and
    un-recorded solves (the default, including every benchmark) pay
    nothing.

    Each record holds the iteration's move (from the trace event the
    passes just appended) plus the three pieces a later solve under a
    *different deadline* cannot recompute from the replayed WCG alone:
    the bound critical path ``Q_b``, its members' scheduled finish times
    ``start + L_o`` (what the ``W`` pool thresholds against the
    deadline), and every operation's bound-resource latency (the
    min-edge-loss tie-break input).  All of it is
    deadline-independent -- see :mod:`repro.core.delta` for the
    argument -- which is what makes a recorded solve replayable under
    any edited latency constraint.
    """

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def record_iteration(self, state: SolverState) -> None:
        """Capture the iteration whose move ``state.trace[-1]`` records."""
        event = state.trace[-1]
        record: Dict[str, Any] = {
            "move": event.move,
            "target": event.target,
            "pool": event.pool,
            "makespan": event.makespan,
            "area": event.area,
            "sss": event.scheduling_set_size,
        }
        if event.move != "accept":
            assert state.schedule is not None and state.binding is not None
            assert state.upper_bounds is not None
            record["bound_lat"] = dict(state.bound_latencies)
            if not state.options.blind_refinement:
                # Q_b depends on schedule/binding/bound latencies only --
                # none of which the refine/bump move just taken touched --
                # so recomputing it here yields exactly the set the
                # refine pass chose from.  ``state.upper_bounds`` still
                # holds the pre-move values (the bounds pass refreshes
                # the refined op only next iteration), so the finish
                # times are the ones the ``W`` threshold actually used.
                q_b = bound_critical_path(
                    state.names,
                    state.edges,
                    state.schedule,
                    state.binding,
                    state.bound_latencies,
                )
                record["qb"] = sorted(q_b)
                record["finish"] = {
                    name: state.schedule[name] + state.upper_bounds[name]
                    for name in sorted(q_b)
                }
        self.records.append(record)


def forward_state(
    problem: Problem,
    options: DPAllocOptions,
    incremental: bool,
    records: List[Dict[str, Any]],
) -> SolverState:
    """A fresh :class:`SolverState` fast-forwarded through recorded moves.

    Applies each recorded refine/bump without running any pass: the WCG
    is mutated move-by-move (deterministic -- ``wcg.refine`` returns the
    same victims the original solve deleted), counters and the trace are
    rebuilt from the recorded deadline-independent fields, and every
    pass product is left ``None``/empty so the next ``solve_loop``
    iteration recomputes them from scratch.  Scratch-vs-incremental
    byte parity then guarantees the continuation matches a cold solve
    that took the same moves.
    """
    state = SolverState(problem, options, incremental=incremental)
    for record in records:
        assert record["move"] != "accept"
        state.iteration += 1
        target = record["target"]
        if record["move"] == "refine":
            deleted = tuple(state.wcg.refine(target))
            state.refinements.append(
                RefinementStep(target, deleted, record["pool"])
            )
            state.pending_bound_ops.add(target)
            state.pending_refined_ops.add(target)
            state.dirty_cover_kinds.add(state.kind_of[target])
        else:
            state.bumps[target] = state.bumps.get(target, 0) + 1
        state.trace.append(
            TraceEvent(
                iteration=state.iteration,
                move=record["move"],
                target=target,
                pool=record["pool"],
                makespan=int(record["makespan"]),
                area=float(record["area"]),
                scheduling_set_size=int(record["sss"]),
            )
        )
    return state


def solve_loop(
    state: SolverState, recorder: Optional[ReplayRecorder] = None
) -> Datapath:
    """Drive the pass pipeline to acceptance (or infeasibility).

    The outer loop of Algorithm DPAlloc, shared by cold solves
    (:func:`run_pipeline`) and delta-replay continuations
    (:func:`repro.core.delta`), which enter it with a state
    fast-forwarded past the verified replay prefix.
    """
    while True:
        state.iteration += 1
        pass_ms: Dict[str, float] = {}
        cache = state.chain_cache
        cache_base = (
            (cache.hits, cache.misses, cache.evicted)
            if cache is not None
            else None
        )
        for stage in PIPELINE:
            begin = _now_ms()
            stage.run(state)
            pass_ms[stage.name] = _now_ms() - begin
        if state.feasible:
            state.record_accept()
            _attach_perf(state, pass_ms, cache_base)
            if recorder is not None:
                recorder.record_iteration(state)
            return state.to_datapath()
        begin = _now_ms()
        _REFINE.run(state)
        pass_ms[_REFINE.name] = _now_ms() - begin
        _attach_perf(state, pass_ms, cache_base)
        if recorder is not None:
            recorder.record_iteration(state)


def run_pipeline(
    problem: Problem,
    options: Optional[DPAllocOptions] = None,
    mode: Optional[str] = None,
    recorder: Optional[ReplayRecorder] = None,
) -> Datapath:
    """Run the DPAlloc pass pipeline on a concrete scheduling mode.

    Args:
        problem: the allocation problem.
        options: heuristic knobs; ``mode="best"`` is a meta-mode handled
            by :func:`repro.core.dpalloc.allocate`, not here.
        mode: ``"incremental"`` / ``"scratch"`` recomputation mode;
            ``None`` resolves via the ``REPRO_SOLVER`` environment
            variable.  Both modes produce byte-identical canonical
            results.
        recorder: optional :class:`ReplayRecorder` capturing the
            per-iteration replay records that make this solve a warm
            base for ``Engine.run_delta`` (see
            :mod:`repro.core.delta`).  ``None`` (the default) records
            nothing and adds no per-iteration work.

    Raises:
        InfeasibleError: the latency constraint is below the fully
            refined critical path, or the resource-count constraints can
            never be satisfied.
    """
    opts = options or DPAllocOptions()
    if opts.mode == "best":
        raise ValueError(
            "mode='best' is a meta-mode; use repro.core.dpalloc.allocate"
        )
    incremental = resolve_solver_mode(mode) == "incremental"
    state = SolverState(problem, opts, incremental=incremental)
    if not state.names:
        return Datapath(
            schedule={},
            binding=Binding(()),
            upper_bounds={},
            bound_latencies={},
            makespan=0,
            area=0.0,
            iterations=0,
        )

    return solve_loop(state, recorder)
