"""Datapath solutions: the output of DPAlloc and of every baseline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..resources.area import AreaModel
from ..resources.types import ResourceType
from .binding import Binding, BoundClique
from .refinement import RefinementStep

__all__ = ["Datapath"]


@dataclass(frozen=True)
class Datapath:
    """A scheduled, bound, wordlength-selected datapath.

    Attributes:
        schedule: start control step per operation.
        binding: clique partition; one clique per physical unit.
        upper_bounds: the latency upper bounds ``L_o`` in force when the
            schedule was built (what the scheduler reserved).
        bound_latencies: actual latency of each op on its bound resource.
        makespan: completion time of the slowest op under the bound
            latencies -- the achieved overall latency.
        area: total unit area (paper Eqn. 5).
        iterations: DPAlloc outer-loop iterations (1 for one-shot
            baselines).
        refinements: the refinement trace (empty for baselines).
        method: identifier of the producing algorithm.
    """

    schedule: Dict[str, int]
    binding: Binding
    upper_bounds: Dict[str, int]
    bound_latencies: Dict[str, int]
    makespan: int
    area: float
    iterations: int = 1
    refinements: Tuple[RefinementStep, ...] = ()
    method: str = "dpalloc"

    @property
    def cliques(self) -> Tuple[BoundClique, ...]:
        return self.binding.cliques

    def unit_count(self, kind: str = "") -> int:
        """Number of physical units (optionally of one resource kind)."""
        if not kind:
            return len(self.binding.cliques)
        return sum(1 for c in self.binding.cliques if c.resource.kind == kind)

    def units_by_kind(self) -> Dict[str, List[ResourceType]]:
        grouped: Dict[str, List[ResourceType]] = {}
        for clique in self.binding.cliques:
            grouped.setdefault(clique.resource.kind, []).append(clique.resource)
        return {k: sorted(v) for k, v in sorted(grouped.items())}

    def recompute_area(self, area_model: AreaModel) -> float:
        return self.binding.area(area_model)

    def summary(self) -> str:
        """Human-readable allocation report (used by the examples)."""
        lines = [
            f"method         : {self.method}",
            f"achieved latency: {self.makespan} cycles",
            f"area           : {self.area:g}",
            f"units          : {self.unit_count()}",
        ]
        for index, clique in enumerate(self.binding.cliques):
            ops = ", ".join(
                f"{name}@{self.schedule[name]}" for name in clique.ops
            )
            lines.append(f"  unit {index}: {clique.resource}  <- {ops}")
        return "\n".join(lines)
