"""Datapath solutions: the output of DPAlloc and of every baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..resources.area import AreaModel
from ..resources.types import ResourceType
from .binding import Binding, BoundClique
from .refinement import RefinementStep

__all__ = ["Datapath", "TraceEvent"]


@dataclass(frozen=True)
class TraceEvent:
    """One outer-loop iteration of the solver pipeline.

    Emitted by :mod:`repro.core.solver` after each check pass: the move
    the iteration ended with (``"refine"``, ``"bump"`` or -- on the
    final, feasible iteration -- ``"accept"``), plus the quantities that
    characterise convergence.

    Attributes:
        iteration: 1-based outer-loop iteration number.
        move: ``"refine"`` | ``"bump"`` | ``"accept"``.
        target: refined operation name, bumped resource kind, or ``None``
            for the accepting iteration.
        pool: refinement candidate pool that supplied the op (``"W"``,
            ``"Qb"`` or ``"any"``); ``None`` for bump/accept moves.
        makespan: achieved makespan of this iteration's schedule+binding.
        area: bound area of this iteration (paper Eqn. 5).
        scheduling_set_size: ``|S|`` of the scheduling set in force.
        pass_ms: per-pass wall time of the iteration, in milliseconds,
            keyed by pass name.  Telemetry only: ``compare=False`` (so
            incremental-vs-scratch trace equality ignores it) and never
            serialized into the canonical JSON envelope -- wall-clock
            bytes would break the parity contract.
        cache_hits: :class:`~repro.core.binding.ChainCache` hits this
            iteration (telemetry, same caveats; ``None`` outside the
            incremental mode).
        cache_misses: ChainCache misses this iteration (telemetry).
        cache_evicted: ChainCache evictions this iteration (telemetry).
    """

    iteration: int
    move: str
    target: Optional[str]
    pool: Optional[str]
    makespan: int
    area: float
    scheduling_set_size: int
    pass_ms: Optional[Dict[str, float]] = field(default=None, compare=False)
    cache_hits: Optional[int] = field(default=None, compare=False)
    cache_misses: Optional[int] = field(default=None, compare=False)
    cache_evicted: Optional[int] = field(default=None, compare=False)


@dataclass(frozen=True)
class Datapath:
    """A scheduled, bound, wordlength-selected datapath.

    Attributes:
        schedule: start control step per operation.
        binding: clique partition; one clique per physical unit.
        upper_bounds: the latency upper bounds ``L_o`` in force when the
            schedule was built (what the scheduler reserved).
        bound_latencies: actual latency of each op on its bound resource.
        makespan: completion time of the slowest op under the bound
            latencies -- the achieved overall latency.
        area: total unit area (paper Eqn. 5).
        iterations: DPAlloc outer-loop iterations (1 for one-shot
            baselines).
        refinements: the refinement trace (empty for baselines).
        method: identifier of the producing algorithm.
        trace: optional per-iteration :class:`TraceEvent` sequence
            (populated when DPAlloc runs with ``DPAllocOptions(trace=
            True)``; empty for baselines and untraced runs).
    """

    schedule: Dict[str, int]
    binding: Binding
    upper_bounds: Dict[str, int]
    bound_latencies: Dict[str, int]
    makespan: int
    area: float
    iterations: int = 1
    refinements: Tuple[RefinementStep, ...] = ()
    method: str = "dpalloc"
    trace: Tuple[TraceEvent, ...] = ()

    @property
    def cliques(self) -> Tuple[BoundClique, ...]:
        return self.binding.cliques

    def unit_count(self, kind: str = "") -> int:
        """Number of physical units (optionally of one resource kind)."""
        if not kind:
            return len(self.binding.cliques)
        return sum(1 for c in self.binding.cliques if c.resource.kind == kind)

    def units_by_kind(self) -> Dict[str, List[ResourceType]]:
        grouped: Dict[str, List[ResourceType]] = {}
        for clique in self.binding.cliques:
            grouped.setdefault(clique.resource.kind, []).append(clique.resource)
        return {k: sorted(v) for k, v in sorted(grouped.items())}

    def recompute_area(self, area_model: AreaModel) -> float:
        return self.binding.area(area_model)

    def summary(self) -> str:
        """Human-readable allocation report (used by the examples)."""
        lines = [
            f"method         : {self.method}",
            f"achieved latency: {self.makespan} cycles",
            f"area           : {self.area:g}",
            f"units          : {self.unit_count()}",
        ]
        for index, clique in enumerate(self.binding.cliques):
            ops = ", ".join(
                f"{name}@{self.schedule[name]}" for name in clique.ops
            )
            lines.append(f"  unit {index}: {clique.resource}  <- {ops}")
        return "\n".join(lines)
