"""Refining wordlength information (paper section 2.4).

When the scheduled-and-bound datapath misses the user latency constraint,
Algorithm DPAlloc tightens the latency upper bound of exactly one
operation by deleting its ``H`` edges to its slowest compatible
resources.  The operation is picked from the **bound critical path**:

* the sequencing edge set ``S`` is augmented with ``S_b`` -- pairs of
  operations bound to the *same* resource instance back-to-back
  (``start(o1) + l(o1) == start(o2)``, ``l`` being the bound resource's
  latency, Eqn. 7);
* the bound critical path ``Q_b`` holds the zero-slack operations of the
  augmented graph (equal ASAP and ALAP times);
* the candidate subset ``W = {o in Q_b : start(o) + L_o <= lambda}``
  (as printed in the paper) is preferred; among candidates the paper
  selects the operation losing the smallest *proportion* of edges in
  ``{{o1, r} in H : exists {o, r} in H}``, breaking ties in favour of
  operations currently bound to a resource faster than their upper bound.

We add deterministic final tie-breaking (operation name) and fallbacks
(refinable members of ``Q_b``, then any refinable operation) so the outer
loop always makes progress or reports infeasibility.

**Exact incremental critical path** (see ``docs/architecture.md``): the
augmented DAG changes only where the last iteration's refinement moved
the schedule or rebound a clique, so the solver pipeline maintains a
:class:`BoundPathEngine` -- persistent ASAP/ALAP longest-path state
updated per added/deleted binding edge and per changed bound latency --
instead of rebuilding the graph from scratch each iteration.  Longest
paths on a DAG are unique, so the maintained ``Q_b`` is *exactly* the
from-scratch :func:`bound_critical_path` set; ``REPRO_SOLVER=scratch``
keeps using the from-scratch function and the CI parity sweep enforces
byte-identical results.  Both paths are pure python: networkx is no
longer needed on the solver's per-iteration hot path.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..resources.types import ResourceType
from .binding import Binding
from .problem import InfeasibleError
from .wcg import WordlengthCompatibilityGraph

__all__ = [
    "augmented_edges",
    "bound_critical_path",
    "BoundPathEngine",
    "candidate_set",
    "choose_refinement_op",
    "RefinementStep",
    "refine_once",
]


def augmented_edges(
    graph_edges: Tuple[Tuple[str, str], ...],
    schedule: Mapping[str, int],
    binding: Binding,
    bound_latencies: Mapping[str, int],
) -> Set[Tuple[str, str]]:
    """Sequencing edges plus the binding edges ``S_b`` of Eqn. 7."""
    edges: Set[Tuple[str, str]] = set(graph_edges)
    for clique in binding.cliques:
        for o1 in clique.ops:
            finish = schedule[o1] + bound_latencies[o1]
            for o2 in clique.ops:
                if o1 != o2 and finish == schedule[o2]:
                    edges.add((o1, o2))
    return edges


def _topological_order(
    names: Iterable[str],
    preds: Mapping[str, Set[str]],
    succs: Mapping[str, Set[str]],
) -> List[str]:
    """Deterministic (lexicographic-Kahn) topological order, pure python."""
    indegree = {n: len(preds[n]) for n in names}
    heap = [n for n in indegree if indegree[n] == 0]
    heapq.heapify(heap)
    order: List[str] = []
    while heap:
        name = heapq.heappop(heap)
        order.append(name)
        for s in succs[name]:
            indegree[s] -= 1
            if indegree[s] == 0:
                heapq.heappush(heap, s)
    if len(order) != len(indegree):
        raise ValueError("augmented sequencing graph contains a cycle")
    return order


def bound_critical_path(
    names: Tuple[str, ...],
    graph_edges: Tuple[Tuple[str, str], ...],
    schedule: Mapping[str, int],
    binding: Binding,
    bound_latencies: Mapping[str, int],
) -> Set[str]:
    """``Q_b``: zero-slack operations of the augmented sequencing graph.

    The from-scratch reference (paper section 2.4): build the augmented
    DAG ``P(O, S ∪ S_b)``, run one forward ASAP and one backward ALAP
    longest-path pass with the *bound* latencies, and return the ops
    whose ASAP and ALAP times coincide.  Longest-path values on a DAG
    are independent of the topological order used, so this is exactly
    the set the incremental :class:`BoundPathEngine` maintains.
    """
    if not names:
        return set()
    edges = augmented_edges(graph_edges, schedule, binding, bound_latencies)
    preds: Dict[str, Set[str]] = {n: set() for n in names}
    succs: Dict[str, Set[str]] = {n: set() for n in names}
    for u, v in sorted(edges):
        succs[u].add(v)
        preds[v].add(u)
    order = _topological_order(names, preds, succs)

    asap: Dict[str, int] = {}
    for name in order:
        asap[name] = max(
            (asap[p] + bound_latencies[p] for p in preds[name]), default=0
        )
    deadline = max(asap[n] + bound_latencies[n] for n in names)

    alap: Dict[str, int] = {}
    for name in reversed(order):
        finish = min((alap[s] for s in succs[name]), default=deadline)
        alap[name] = finish - bound_latencies[name]

    return {n for n in names if asap[n] == alap[n]}


class BoundPathEngine:
    """Maintained ASAP/ALAP longest paths over the augmented DAG.

    One engine lives for one DPAlloc solve (owned by
    :class:`repro.core.solver.SolverState`).  Between iterations the
    augmented DAG ``P(O, S ∪ S_b)`` changes only by

    * **binding-edge deletions/insertions** -- rebinding moves ``S_b``
      pairs (Eqn. 7); the static sequencing edges ``S`` never change --
      and
    * **bound-latency changes** -- a refined (or rebound) operation may
      run on a different resource.

    :meth:`critical_ops` diffs both against the previous iteration and
    repairs the stored ASAP/ALAP values with worklist updates seeded
    only at the endpoints of changed edges and the successors/holders of
    changed latencies; untouched regions of the DAG are never revisited.
    When the overall deadline moved, the backward (ALAP) pass falls back
    to one full pure-python sweep -- the deadline shifts every sink's
    anchor, so no sub-linear repair exists.

    Ordering invariant: every augmented edge ``(u, v)`` satisfies
    ``start(u) + l(u) <= start(v)`` with ``l(u) >= 1`` (schedules are
    built with the latency upper bounds ``L_o >= l(o)``, and ``S_b``
    edges are back-to-back by construction), so sorting operations by
    ``(start, name)`` is a valid topological order and the worklists can
    be keyed directly on schedule start times.

    Parity: longest-path values on a DAG are unique, so the maintained
    zero-slack set equals :func:`bound_critical_path` exactly -- the
    ``REPRO_SOLVER=scratch`` byte-parity guarantee is preserved.
    """

    def __init__(
        self,
        names: Tuple[str, ...],
        graph_edges: Tuple[Tuple[str, str], ...],
    ) -> None:
        self._names = tuple(names)
        self._base_edges = frozenset(graph_edges)
        self._preds: Dict[str, Set[str]] = {n: set() for n in self._names}
        self._succs: Dict[str, Set[str]] = {n: set() for n in self._names}
        for u, v in sorted(self._base_edges):
            self._succs[u].add(v)
            self._preds[v].add(u)
        self._bind_edges: Set[Tuple[str, str]] = set()
        self._lat: Dict[str, int] = {}
        self._asap: Dict[str, int] = {}
        self._alap: Dict[str, int] = {}
        self._deadline = 0
        self._ready = False
        # Diagnostics (benchmarks/tests): how often each path ran.
        self.full_passes = 0
        self.incremental_updates = 0
        self.alap_rebuilds = 0

    # ------------------------------------------------------------------
    def critical_ops(
        self,
        schedule: Mapping[str, int],
        binding: Binding,
        bound_latencies: Mapping[str, int],
    ) -> Set[str]:
        """``Q_b`` for the current iteration, updated incrementally."""
        new_bind = self._binding_edges(schedule, binding, bound_latencies)
        added = new_bind - self._bind_edges
        removed = self._bind_edges - new_bind
        lat_changed = {
            n for n in self._names if self._lat.get(n) != bound_latencies[n]
        }
        for u, v in removed:  # reprolint: disable=RL001(commutative set updates; iteration order cannot reach results)
            self._succs[u].discard(v)
            self._preds[v].discard(u)
        for u, v in added:  # reprolint: disable=RL001(commutative set updates; iteration order cannot reach results)
            self._succs[u].add(v)
            self._preds[v].add(u)
        self._bind_edges = new_bind
        self._lat = {n: bound_latencies[n] for n in self._names}

        if not self._ready:
            self._full_asap(schedule)
            self._deadline = self._finish_time()
            self._full_alap(schedule)
            self._ready = True
            self.full_passes += 1
        else:
            self.incremental_updates += 1
            self._update_asap(schedule, added, removed, lat_changed)
            deadline = self._finish_time()
            if deadline != self._deadline:
                self._deadline = deadline
                self._full_alap(schedule)
                self.alap_rebuilds += 1
            else:
                self._update_alap(schedule, added, removed, lat_changed)

        asap, alap = self._asap, self._alap
        return {n for n in self._names if asap[n] == alap[n]}

    # ------------------------------------------------------------------
    def _binding_edges(
        self,
        schedule: Mapping[str, int],
        binding: Binding,
        bound_latencies: Mapping[str, int],
    ) -> Set[Tuple[str, str]]:
        """The ``S_b`` edges of Eqn. 7 that are not already in ``S``.

        Delegates to :func:`augmented_edges` with an empty base edge
        set (which then yields exactly ``S_b``) so the Eqn.-7
        enumeration has a single source of truth shared with the
        scratch path.
        """
        return (
            augmented_edges((), schedule, binding, bound_latencies)
            - self._base_edges
        )

    def _finish_time(self) -> int:
        return max(
            (self._asap[n] + self._lat[n] for n in self._names), default=0
        )

    def _full_asap(self, schedule: Mapping[str, int]) -> None:
        asap: Dict[str, int] = {}
        lat, preds = self._lat, self._preds
        for name in sorted(self._names, key=lambda n: (schedule[n], n)):
            asap[name] = max(
                (asap[p] + lat[p] for p in preds[name]), default=0
            )
        self._asap = asap

    def _full_alap(self, schedule: Mapping[str, int]) -> None:
        alap: Dict[str, int] = {}
        lat, succs, deadline = self._lat, self._succs, self._deadline
        for name in sorted(
            self._names, key=lambda n: (schedule[n], n), reverse=True
        ):
            finish = min((alap[s] for s in succs[name]), default=deadline)
            alap[name] = finish - lat[name]
        self._alap = alap

    def _update_asap(
        self,
        schedule: Mapping[str, int],
        added: Set[Tuple[str, str]],
        removed: Set[Tuple[str, str]],
        lat_changed: Set[str],
    ) -> None:
        """Repair ASAP values forward from everything that changed.

        Seeds: targets of changed edges, successors of latency changes.
        The worklist is a min-heap on ``(start, name)`` -- a topological
        order of the augmented DAG (see class docstring) -- so each
        operation is finalised after all of its predecessors.
        """
        seeds = {v for _, v in added} | {v for _, v in removed}
        for p in lat_changed:
            seeds.update(self._succs[p])
        asap, lat, preds, succs = self._asap, self._lat, self._preds, self._succs
        heap = [(schedule[n], n) for n in sorted(seeds)]
        heapq.heapify(heap)
        queued = set(seeds)
        while heap:
            _, name = heapq.heappop(heap)
            queued.discard(name)
            value = max(
                (asap[p] + lat[p] for p in preds[name]), default=0
            )
            if value != asap[name]:
                asap[name] = value
                for s in succs[name]:
                    if s not in queued:
                        queued.add(s)
                        heapq.heappush(heap, (schedule[s], s))

    def _update_alap(
        self,
        schedule: Mapping[str, int],
        added: Set[Tuple[str, str]],
        removed: Set[Tuple[str, str]],
        lat_changed: Set[str],
    ) -> None:
        """Repair ALAP values backward; only valid while the deadline held."""
        seeds = {u for u, _ in added} | {u for u, _ in removed}
        seeds.update(lat_changed)
        alap, lat, preds, succs = self._alap, self._lat, self._preds, self._succs
        deadline = self._deadline
        heap = [(-schedule[n], n) for n in sorted(seeds)]
        heapq.heapify(heap)
        queued = set(seeds)
        while heap:
            _, name = heapq.heappop(heap)
            queued.discard(name)
            finish = min((alap[s] for s in succs[name]), default=deadline)
            value = finish - lat[name]
            if value != alap[name]:
                alap[name] = value
                for p in preds[name]:
                    if p not in queued:
                        queued.add(p)
                        heapq.heappush(heap, (-schedule[p], p))


def candidate_set(
    q_b: Set[str],
    schedule: Mapping[str, int],
    upper_bounds: Mapping[str, int],
    latency_constraint: int,
) -> Set[str]:
    """``W``: bound-critical ops finishing before the constraint."""
    return {
        name
        for name in q_b
        if schedule[name] + upper_bounds[name] <= latency_constraint
    }


def _edge_loss_proportion(
    wcg: WordlengthCompatibilityGraph, name: str
) -> float:
    """Fraction of neighbourhood ``H`` edges a refinement of ``name`` deletes.

    Numerator: edges ``{name, r}`` with ``latency(r) == L_name`` (the ones
    the refinement deletes).  Denominator: all ``H`` edges incident to
    resources compatible with ``name`` -- the paper's
    ``{{o1, r} in H : exists {o, r} in H}``.
    """
    bound = wcg.upper_bound_latency(name)
    compatible = wcg.compatible_resources(name)
    deleted = sum(1 for r in compatible if wcg.latency(r) == bound)
    neighbourhood = sum(len(wcg.ops_for_resource(r)) for r in compatible)
    assert neighbourhood > 0
    return deleted / neighbourhood


def choose_refinement_op(
    wcg: WordlengthCompatibilityGraph,
    candidates: Set[str],
    binding: Optional[Binding],
    selector: str = "min-edge-loss",
    bound_faster: Optional[Mapping[str, int]] = None,
) -> Optional[str]:
    """Pick the candidate whose refinement loses the smallest edge share.

    The paper's section 2.4 selection rule.  Ties favour operations
    bound to a resource strictly faster than their latency upper bound
    (their binding never used the latency headroom, so removing it is
    free); remaining ties break on the name.  Returns ``None`` when no
    candidate is refinable.

    ``selector="name-order"`` replaces the paper's min-edge-loss rule by
    plain name order (ablation of the selection heuristic).

    ``bound_faster`` replaces the live ``binding`` in the tie-break with
    a recorded map of each operation's *bound resource latency* -- the
    delta-replay walk (:mod:`repro.core.delta`) has no binding for past
    iterations, only the recorded latencies, and the upper bounds come
    from the replayed ``wcg``.  When given, ``binding`` is ignored.
    """
    refinable = sorted(n for n in candidates if wcg.can_refine(n))
    if not refinable:
        return None
    if selector == "name-order":
        return refinable[0]
    if selector != "min-edge-loss":
        raise ValueError(f"unknown selector {selector!r}")

    def sort_key(name: str) -> Tuple[float, int, str]:
        proportion = _edge_loss_proportion(wcg, name)
        faster = 0
        if bound_faster is not None:
            latency = bound_faster.get(name)
            if latency is not None and latency < wcg.upper_bound_latency(name):
                faster = -1  # preferred
        elif binding is not None:
            try:
                resource = binding.resource_of(name)
                if wcg.latency(resource) < wcg.upper_bound_latency(name):
                    faster = -1  # preferred
            except KeyError:
                pass
        return (proportion, faster, name)

    return min(refinable, key=sort_key)


@dataclass(frozen=True)
class RefinementStep:
    """Record of one refinement: which op, which edges were deleted."""

    operation: str
    deleted: Tuple[ResourceType, ...]
    source: str  # "W", "Qb" or "any" -- which candidate pool supplied the op


def refine_once(
    wcg: WordlengthCompatibilityGraph,
    names: Tuple[str, ...],
    graph_edges: Tuple[Tuple[str, str], ...],
    schedule: Mapping[str, int],
    binding: Binding,
    latency_constraint: int,
    pools: Tuple[str, ...] = ("W", "Qb", "any"),
    selector: str = "min-edge-loss",
    bound_latencies: Optional[Mapping[str, int]] = None,
    upper_bounds: Optional[Mapping[str, int]] = None,
    q_b: Optional[Set[str]] = None,
) -> RefinementStep:
    """One full refinement step of Algorithm DPAlloc.

    Tries the paper's candidate set ``W`` first, then the rest of the
    bound critical path, then (by default) any refinable operation.
    The ``pools`` argument lets the caller stop earlier -- DPAlloc uses
    ``("W", "Qb")`` so that when the bound critical path is unrefinable
    it can duplicate a unit instead of refining an unrelated operation.
    ``bound_latencies``/``upper_bounds`` accept the caller's already
    computed values (the solver pipeline derives both every iteration),
    and ``q_b`` accepts an already computed bound critical path (the
    pipeline's :class:`BoundPathEngine` maintains it incrementally);
    omitted, each is recomputed here -- and ``Q_b`` only when a
    requested pool actually needs it.  Mutates ``wcg``.

    Raises:
        InfeasibleError: none of the requested pools contains a
            refinable operation.
    """
    if bound_latencies is None:
        bound_latencies = binding.bound_latencies(wcg)
    if upper_bounds is None:
        upper_bounds = wcg.upper_bound_latencies()
    if q_b is None and any(pool in ("W", "Qb") for pool in pools):
        q_b = bound_critical_path(
            names, graph_edges, schedule, binding, bound_latencies
        )

    for source in pools:
        if source == "any":
            candidates = set(names)
        elif source == "Qb":
            candidates = q_b if q_b is not None else set()
        elif source == "W":
            candidates = candidate_set(
                q_b if q_b is not None else set(),
                schedule,
                upper_bounds,
                latency_constraint,
            )
        else:
            raise ValueError(f"unknown candidate pool {source!r}")
        chosen = choose_refinement_op(wcg, candidates, binding, selector)
        if chosen is not None:
            deleted = tuple(wcg.refine(chosen))
            return RefinementStep(chosen, deleted, source)

    raise InfeasibleError(
        f"latency constraint {latency_constraint} unreachable: no operation "
        f"in pools {pools} has refinable wordlength information left"
    )
