"""Refining wordlength information (paper section 2.4).

When the scheduled-and-bound datapath misses the user latency constraint,
Algorithm DPAlloc tightens the latency upper bound of exactly one
operation by deleting its ``H`` edges to its slowest compatible
resources.  The operation is picked from the **bound critical path**:

* the sequencing edge set ``S`` is augmented with ``S_b`` -- pairs of
  operations bound to the *same* resource instance back-to-back
  (``start(o1) + l(o1) == start(o2)``, ``l`` being the bound resource's
  latency, Eqn. 7);
* the bound critical path ``Q_b`` holds the zero-slack operations of the
  augmented graph (equal ASAP and ALAP times);
* the candidate subset ``W = {o in Q_b : start(o) + L_o <= lambda}``
  (as printed in the paper) is preferred; among candidates the paper
  selects the operation losing the smallest *proportion* of edges in
  ``{{o1, r} in H : exists {o, r} in H}``, breaking ties in favour of
  operations currently bound to a resource faster than their upper bound.

We add deterministic final tie-breaking (operation name) and fallbacks
(refinable members of ``Q_b``, then any refinable operation) so the outer
loop always makes progress or reports infeasibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Set, Tuple

import networkx as nx

from ..resources.types import ResourceType
from .binding import Binding
from .problem import InfeasibleError
from .wcg import WordlengthCompatibilityGraph

__all__ = [
    "augmented_edges",
    "bound_critical_path",
    "candidate_set",
    "choose_refinement_op",
    "RefinementStep",
    "refine_once",
]


def augmented_edges(
    graph_edges: Tuple[Tuple[str, str], ...],
    schedule: Mapping[str, int],
    binding: Binding,
    bound_latencies: Mapping[str, int],
) -> Set[Tuple[str, str]]:
    """Sequencing edges plus the binding edges ``S_b`` of Eqn. 7."""
    edges: Set[Tuple[str, str]] = set(graph_edges)
    for clique in binding.cliques:
        for o1 in clique.ops:
            finish = schedule[o1] + bound_latencies[o1]
            for o2 in clique.ops:
                if o1 != o2 and finish == schedule[o2]:
                    edges.add((o1, o2))
    return edges


def bound_critical_path(
    names: Tuple[str, ...],
    graph_edges: Tuple[Tuple[str, str], ...],
    schedule: Mapping[str, int],
    binding: Binding,
    bound_latencies: Mapping[str, int],
) -> Set[str]:
    """``Q_b``: zero-slack operations of the augmented sequencing graph."""
    dag = nx.DiGraph()
    dag.add_nodes_from(names)
    dag.add_edges_from(
        augmented_edges(graph_edges, schedule, binding, bound_latencies)
    )
    order = list(nx.lexicographical_topological_sort(dag))

    asap: Dict[str, int] = {}
    for name in order:
        asap[name] = max(
            (asap[p] + bound_latencies[p] for p in dag.predecessors(name)),
            default=0,
        )
    if not names:
        return set()
    deadline = max(asap[n] + bound_latencies[n] for n in names)

    alap: Dict[str, int] = {}
    for name in reversed(order):
        finish = min((alap[s] for s in dag.successors(name)), default=deadline)
        alap[name] = finish - bound_latencies[name]

    return {n for n in names if asap[n] == alap[n]}


def candidate_set(
    q_b: Set[str],
    schedule: Mapping[str, int],
    upper_bounds: Mapping[str, int],
    latency_constraint: int,
) -> Set[str]:
    """``W``: bound-critical ops finishing before the constraint."""
    return {
        name
        for name in q_b
        if schedule[name] + upper_bounds[name] <= latency_constraint
    }


def _edge_loss_proportion(
    wcg: WordlengthCompatibilityGraph, name: str
) -> float:
    """Fraction of neighbourhood ``H`` edges a refinement of ``name`` deletes.

    Numerator: edges ``{name, r}`` with ``latency(r) == L_name`` (the ones
    the refinement deletes).  Denominator: all ``H`` edges incident to
    resources compatible with ``name`` -- the paper's
    ``{{o1, r} in H : exists {o, r} in H}``.
    """
    bound = wcg.upper_bound_latency(name)
    compatible = wcg.compatible_resources(name)
    deleted = sum(1 for r in compatible if wcg.latency(r) == bound)
    neighbourhood = sum(len(wcg.ops_for_resource(r)) for r in compatible)
    assert neighbourhood > 0
    return deleted / neighbourhood


def choose_refinement_op(
    wcg: WordlengthCompatibilityGraph,
    candidates: Set[str],
    binding: Optional[Binding],
    selector: str = "min-edge-loss",
) -> Optional[str]:
    """Pick the candidate whose refinement loses the smallest edge share.

    Ties favour operations bound to a resource strictly faster than their
    latency upper bound (their binding never used the latency headroom,
    so removing it is free); remaining ties break on the name.
    Returns ``None`` when no candidate is refinable.

    ``selector="name-order"`` replaces the paper's min-edge-loss rule by
    plain name order (ablation of the selection heuristic).
    """
    refinable = sorted(n for n in candidates if wcg.can_refine(n))
    if not refinable:
        return None
    if selector == "name-order":
        return refinable[0]
    if selector != "min-edge-loss":
        raise ValueError(f"unknown selector {selector!r}")

    def sort_key(name: str) -> Tuple[float, int, str]:
        proportion = _edge_loss_proportion(wcg, name)
        bound_faster = 0
        if binding is not None:
            try:
                resource = binding.resource_of(name)
                if wcg.latency(resource) < wcg.upper_bound_latency(name):
                    bound_faster = -1  # preferred
            except KeyError:
                pass
        return (proportion, bound_faster, name)

    return min(refinable, key=sort_key)


@dataclass(frozen=True)
class RefinementStep:
    """Record of one refinement: which op, which edges were deleted."""

    operation: str
    deleted: Tuple[ResourceType, ...]
    source: str  # "W", "Qb" or "any" -- which candidate pool supplied the op


def refine_once(
    wcg: WordlengthCompatibilityGraph,
    names: Tuple[str, ...],
    graph_edges: Tuple[Tuple[str, str], ...],
    schedule: Mapping[str, int],
    binding: Binding,
    latency_constraint: int,
    pools: Tuple[str, ...] = ("W", "Qb", "any"),
    selector: str = "min-edge-loss",
    bound_latencies: Optional[Mapping[str, int]] = None,
    upper_bounds: Optional[Mapping[str, int]] = None,
) -> RefinementStep:
    """One full refinement step of Algorithm DPAlloc.

    Tries the paper's candidate set ``W`` first, then the rest of the
    bound critical path, then (by default) any refinable operation.
    The ``pools`` argument lets the caller stop earlier -- DPAlloc uses
    ``("W", "Qb")`` so that when the bound critical path is unrefinable
    it can duplicate a unit instead of refining an unrelated operation.
    ``bound_latencies``/``upper_bounds`` accept the caller's already
    computed values (the solver pipeline derives both every iteration);
    omitted, they are recomputed here.  Mutates ``wcg``.

    Raises:
        InfeasibleError: none of the requested pools contains a
            refinable operation.
    """
    if bound_latencies is None:
        bound_latencies = binding.bound_latencies(wcg)
    if upper_bounds is None:
        upper_bounds = wcg.upper_bound_latencies()
    q_b = bound_critical_path(names, graph_edges, schedule, binding, bound_latencies)
    w = candidate_set(q_b, schedule, upper_bounds, latency_constraint)
    available = {"W": w, "Qb": q_b, "any": set(names)}

    for source in pools:
        chosen = choose_refinement_op(wcg, available[source], binding, selector)
        if chosen is not None:
            deleted = tuple(wcg.refine(chosen))
            return RefinementStep(chosen, deleted, source)

    raise InfeasibleError(
        f"latency constraint {latency_constraint} unreachable: no operation "
        f"in pools {pools} has refinable wordlength information left"
    )
