"""Scheduling with incomplete wordlength information (paper section 2.2).

The scheduler is a resource-constrained list scheduler whose per-type
constraint is the paper's Eqn. 3.  The scan of the paper loses the body
of the equation; the reconstruction implemented here (see DESIGN.md §4.2)
is, for every operation type ``y``::

    sum_{s in S∩R_y}  max_{t in T}  sum_{o in O(s)}  x_{o,t} / |S(o)|   <=  N_y

where ``S`` is the minimum-cardinality *scheduling set* covering all
operations, ``O(s)`` the ops with an ``H`` edge to ``s``, and ``S(o)``
the scheduling-set members compatible with ``o``.  Properties (each is
unit-tested):

* **At least as strict as Eqn. 2** (classic per-step counting): at any
  step the fractional shares of the executing type-``y`` ops sum to the
  number of executing ops, and a sum of per-member peaks dominates any
  single-step total.
* **Degenerates to Eqn. 2 when |S| = |Y|**: one member per type receives
  every op with share 1, so the LHS is the peak per-step concurrency.
* **Exact when |S(o)| = 1 for all o**: each member accumulates the exact
  peak demand of the ops that can only run on it.
* **Rejects the paper's Fig. 2 scenario**: two ops forced onto different
  resource-wordlengths of one type contribute two separate peaks even if
  they are serialised in time, so ``N_y = 1`` is correctly refused --
  the situation Eqn. 2 misses.

With no resource constraints (the paper's area-minimisation experiments)
the list scheduler degenerates to ASAP with the latency upper bounds,
exactly what Algorithm DPAlloc requires.

An Eqn. 2 tracker is provided for the ablation benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from ..ir.seqgraph import SequencingGraph
from ..resources.types import ResourceType
from .problem import InfeasibleError
from .wcg import WordlengthCompatibilityGraph

__all__ = [
    "Eqn2Tracker",
    "Eqn3Tracker",
    "Eqn3TrackerReference",
    "ScheduleOutcome",
    "ScheduleWarmStart",
    "critical_path_priorities",
    "list_schedule",
    "list_schedule_outcome",
]


def critical_path_priorities(
    graph: SequencingGraph, latencies: Mapping[str, int]
) -> Dict[str, int]:
    """Longest path from each op to a sink (inclusive), the list priority."""
    priority: Dict[str, int] = {}
    for name in reversed(graph.topological_order()):
        succ = graph.successors(name)
        priority[name] = latencies[name] + max(
            (priority[s] for s in succ), default=0
        )
    return priority


class Eqn3Tracker:
    """Incremental evaluation of the Eqn. 3 resource bound (scaled integers).

    The bound is *time-monotone*: placing an operation at a fresh control
    step (where all current loads are zero) raises each of its members'
    peaks to at least the op's share.  Hence if an op fails the check
    even at a fresh step it can never be scheduled -- the stuck-state
    test used by the list scheduler.

    **Shared-denominator invariant.**  Every quantity in Eqn. 3 is a sum
    of equal shares ``1/|S(o)|``, so with ``D = lcm(|S(o)|)`` over all
    operations -- knowable at construction -- every load, peak and LHS is
    an exact multiple of ``1/D``.  The tracker therefore stores *scaled
    integers* (value times ``D``): each op's share is ``D // |S(o)|``,
    per-member load rows are flat integer vectors indexed by control
    step, per-member peaks and per-kind peak sums are maintained
    incrementally, and the constraint test compares against ``N_y * D``.
    All comparisons are exact integer comparisons -- byte-identical to
    the retained :class:`Eqn3TrackerReference` (``fractions.Fraction``),
    which the equivalence test suite enforces.  Python integers never
    overflow, so arbitrarily large denominators stay exact.
    """

    def __init__(
        self,
        wcg: WordlengthCompatibilityGraph,
        constraints: Mapping[str, int],
        scheduling_set: Optional[Tuple[ResourceType, ...]] = None,
    ) -> None:
        self._constraints = dict(constraints)
        self._scheduling_set = (
            scheduling_set if scheduling_set is not None else wcg.scheduling_set()
        )
        member_id = {s: i for i, s in enumerate(self._scheduling_set)}
        # S(o) per op, and the shared denominator D = lcm over |S(o)|.
        self._members_of: Dict[str, Tuple[ResourceType, ...]] = {}
        for op in wcg.operations:
            members = wcg.members_covering(op.name, self._scheduling_set)
            if not members:
                raise InfeasibleError(
                    f"operation {op.name!r} not covered by the scheduling set"
                )
            self._members_of[op.name] = members
        self._denominator = math.lcm(
            *(len(m) for m in self._members_of.values())
        ) if self._members_of else 1
        d = self._denominator
        # Scaled equal shares (section 2.2): share(o) = D / |S(o)|, exact.
        self._share_scaled: Dict[str, int] = {
            name: d // len(members)
            for name, members in self._members_of.items()
        }
        self._member_ids_of: Dict[str, Tuple[int, ...]] = {
            name: tuple(member_id[s] for s in members)
            for name, members in self._members_of.items()
        }
        # H edges never cross kinds, so an op's kind is its members' kind.
        self._kind_of_op: Dict[str, str] = {
            name: members[0].kind
            for name, members in self._members_of.items()
        }
        # Per member: flat scaled-integer load vector (index = control
        # step, grown on demand) and its running peak; per kind: the
        # maintained sum of member peaks (the committed LHS of Eqn. 3).
        self._loads: List[List[int]] = [[] for _ in self._scheduling_set]
        self._peaks: List[int] = [0] * len(self._scheduling_set)
        self._kind_peak_sum: Dict[str, int] = {
            s.kind: 0 for s in self._scheduling_set
        }
        self._limit_scaled: Dict[str, int] = {
            kind: limit * d for kind, limit in self._constraints.items()
        }

    @property
    def scheduling_set(self) -> Tuple[ResourceType, ...]:
        return self._scheduling_set

    @property
    def denominator(self) -> int:
        """The shared denominator ``D = lcm(|S(o)|)`` of every share."""
        return self._denominator

    def members_of(self, name: str) -> Tuple[ResourceType, ...]:
        return self._members_of[name]

    def share(self, name: str) -> Fraction:
        """The op's equal share ``1/|S(o)|`` (exact)."""
        return Fraction(self._share_scaled[name], self._denominator)

    def _limit(self, kind: str) -> Optional[int]:
        return self._constraints.get(kind)

    def _hypothetical_scaled(self, name: str, start: int, duration: int) -> int:
        """Scaled LHS of Eqn. 3 for the op's kind if placed at ``start``.

        Starts from the maintained per-kind peak sum and adjusts only the
        involved members' peaks by their hypothetical increase over the
        placement window; steps beyond a member's stored load vector
        carry zero load, so their hypothetical load is just the share.
        """
        share = self._share_scaled[name]
        total = self._kind_peak_sum[self._kind_of_op[name]]
        end = start + duration
        for m in self._member_ids_of[name]:
            peak = self._peaks[m]
            loads = self._loads[m]
            new_peak = peak
            for t in range(start, min(len(loads), end)):
                v = loads[t] + share
                if v > new_peak:
                    new_peak = v
            if end > len(loads) and share > new_peak:
                new_peak = share
            total += new_peak - peak
        return total

    def admits(self, name: str, start: int, duration: int) -> bool:
        """Whether placing ``name`` at ``start`` keeps Eqn. 3 satisfied."""
        limit = self._limit_scaled.get(self._kind_of_op[name])
        if limit is None:
            return True
        return self._hypothetical_scaled(name, start, duration) <= limit

    def ever_admittable(self, name: str, duration: int) -> bool:
        """Fresh-step feasibility: if this fails, the op can never be placed."""
        limit = self._limit_scaled.get(self._kind_of_op[name])
        if limit is None:
            return True
        share = self._share_scaled[name]
        total = self._kind_peak_sum[self._kind_of_op[name]]
        for m in self._member_ids_of[name]:
            if share > self._peaks[m]:
                total += share - self._peaks[m]
        return total <= limit

    def place(self, name: str, start: int, duration: int) -> None:
        """Commit the placement of an operation."""
        share = self._share_scaled[name]
        end = start + duration
        gained = 0
        for m in self._member_ids_of[name]:
            loads = self._loads[m]
            if len(loads) < end:
                loads.extend([0] * (end - len(loads)))
            peak = self._peaks[m]
            base = peak
            for t in range(start, end):
                v = loads[t] + share
                loads[t] = v
                if v > peak:
                    peak = v
            if peak != base:
                self._peaks[m] = peak
                gained += peak - base
        if gained:
            self._kind_peak_sum[self._kind_of_op[name]] += gained

    def lhs(self, kind: str) -> Fraction:
        """Current LHS of Eqn. 3 for one resource kind (exact)."""
        return Fraction(self._kind_peak_sum.get(kind, 0), self._denominator)


class Eqn3TrackerReference:
    """Reference ``Fraction`` implementation of the Eqn. 3 tracker.

    The pre-PR-8 implementation, retained verbatim as the oracle for the
    scaled-integer :class:`Eqn3Tracker`: the randomized equivalence
    suite drives both trackers through identical placement streams and
    asserts ``admits``/``ever_admittable``/``lhs`` agree exactly.  Not
    used on any hot path.
    """

    def __init__(
        self,
        wcg: WordlengthCompatibilityGraph,
        constraints: Mapping[str, int],
        scheduling_set: Optional[Tuple[ResourceType, ...]] = None,
    ) -> None:
        self._constraints = dict(constraints)
        self._scheduling_set = (
            scheduling_set if scheduling_set is not None else wcg.scheduling_set()
        )
        self._members_by_kind: Dict[str, List[ResourceType]] = {}
        for s in self._scheduling_set:
            self._members_by_kind.setdefault(s.kind, []).append(s)
        # S(o) and the equal-sharing fractions of section 2.2.
        self._share: Dict[str, Fraction] = {}
        self._members_of: Dict[str, Tuple[ResourceType, ...]] = {}
        for op in wcg.operations:
            members = wcg.members_covering(op.name, self._scheduling_set)
            if not members:
                raise InfeasibleError(
                    f"operation {op.name!r} not covered by the scheduling set"
                )
            self._members_of[op.name] = members
            self._share[op.name] = Fraction(1, len(members))
        # Per member: per-step fractional load and its running peak.
        self._load: Dict[ResourceType, Dict[int, Fraction]] = {
            s: {} for s in self._scheduling_set
        }
        self._peak: Dict[ResourceType, Fraction] = {
            s: Fraction(0) for s in self._scheduling_set
        }

    @property
    def scheduling_set(self) -> Tuple[ResourceType, ...]:
        return self._scheduling_set

    def members_of(self, name: str) -> Tuple[ResourceType, ...]:
        return self._members_of[name]

    def share(self, name: str) -> Fraction:
        """The op's equal share ``1/|S(o)|``."""
        return self._share[name]

    def _limit(self, kind: str) -> Optional[int]:
        return self._constraints.get(kind)

    def _hypothetical_lhs(self, name: str, start: int, duration: int) -> Fraction:
        """LHS of Eqn. 3 for the op's kind if it were placed at ``start``."""
        kind = next(iter(self._members_of[name])).kind
        share = self._share[name]
        involved = set(self._members_of[name])
        total = Fraction(0)
        for s in self._members_by_kind.get(kind, []):
            peak = self._peak[s]
            if s in involved:
                loads = self._load[s]
                for t in range(start, start + duration):
                    peak = max(peak, loads.get(t, Fraction(0)) + share)
            total += peak
        return total

    def admits(self, name: str, start: int, duration: int) -> bool:
        """Whether placing ``name`` at ``start`` keeps Eqn. 3 satisfied."""
        kind = next(iter(self._members_of[name])).kind
        limit = self._limit(kind)
        if limit is None:
            return True
        return self._hypothetical_lhs(name, start, duration) <= limit

    def ever_admittable(self, name: str, duration: int) -> bool:
        """Fresh-step feasibility: if this fails, the op can never be placed."""
        kind = next(iter(self._members_of[name])).kind
        limit = self._limit(kind)
        if limit is None:
            return True
        share = self._share[name]
        total = Fraction(0)
        for s in self._members_by_kind.get(kind, []):
            peak = self._peak[s]
            if s in self._members_of[name]:
                peak = max(peak, share)
            total += peak
        return total <= limit

    def place(self, name: str, start: int, duration: int) -> None:
        """Commit the placement of an operation."""
        share = self._share[name]
        for s in self._members_of[name]:
            loads = self._load[s]
            for t in range(start, start + duration):
                loads[t] = loads.get(t, Fraction(0)) + share
                if loads[t] > self._peak[s]:
                    self._peak[s] = loads[t]

    def lhs(self, kind: str) -> Fraction:
        """Current LHS of Eqn. 3 for one resource kind."""
        return sum(
            (self._peak[s] for s in self._members_by_kind.get(kind, [])),
            Fraction(0),
        )


class Eqn2Tracker:
    """Classic per-step resource counting (paper Eqn. 2) -- ablation only.

    Counts concurrently executing operations per resource kind; blind to
    wordlength incompatibilities, so it can accept schedules that need
    more physical units than ``N_y`` (the defect Eqn. 3 repairs).
    """

    def __init__(
        self,
        wcg: WordlengthCompatibilityGraph,
        constraints: Mapping[str, int],
    ) -> None:
        self._constraints = dict(constraints)
        self._kind_of = {op.name: op.resource_kind for op in wcg.operations}
        self._load: Dict[str, Dict[int, int]] = {}

    def admits(self, name: str, start: int, duration: int) -> bool:
        kind = self._kind_of[name]
        limit = self._constraints.get(kind)
        if limit is None:
            return True
        loads = self._load.setdefault(kind, {})
        return all(
            loads.get(t, 0) + 1 <= limit for t in range(start, start + duration)
        )

    def ever_admittable(self, name: str, duration: int) -> bool:
        kind = self._kind_of[name]
        limit = self._constraints.get(kind)
        return limit is None or limit >= 1

    def place(self, name: str, start: int, duration: int) -> None:
        kind = self._kind_of[name]
        loads = self._load.setdefault(kind, {})
        for t in range(start, start + duration):
            loads[t] = loads.get(t, 0) + 1


@dataclass(frozen=True)
class _Running:
    name: str
    finish: int


class _GreedyWedge(Exception):
    """Internal: the greedy list scheduler blocked itself permanently."""


@dataclass(frozen=True)
class ScheduleWarmStart:
    """Previous-iteration schedule state for incremental rescheduling.

    The greedy list scheduler is deterministic and event-driven: its
    decisions strictly before the earliest time anything *changed* could
    have influenced a decision are provably identical between the
    previous run and a run with the new inputs.  That divergence bound
    ``t0`` is the minimum of

    * the previous release time of every operation in ``affected`` --
      which must contain every op whose latency, list-priority value,
      Eqn.-3 share/members, or (non-monotone) constraint changed; an
      op cannot influence any decision before it first becomes ready;
    * ``t0_cap`` -- a caller-supplied bound covering changes that are
      *monotone admissions*: when a kind's constraint ``N_y`` only
      increased (cover, members and shares unchanged), every admission
      the previous run granted is still granted, so the first decision
      that can flip is the previous run's earliest *rejection* of an op
      of that kind (``ScheduleOutcome.first_rejects``).

    ``prev_starts``/``prev_latencies`` must come from a *greedy* run
    (not the serial fallback): the reuse proof replays the greedy
    event trace.  :func:`list_schedule_outcome` reports which path
    produced a schedule so callers can gate the next warm start.

    Downstream passes reuse the same change-locality: the bind pass's
    :class:`~repro.core.binding.ChainCache` invalidates exactly the
    chains whose ops' ``(start, L_o)`` moved between iterations, and
    the refine pass's :class:`~repro.core.refinement.BoundPathEngine`
    repairs ASAP/ALAP values only around changed binding edges -- see
    ``docs/architecture.md`` for the whole reuse table.
    """

    prev_starts: Mapping[str, int]
    prev_latencies: Mapping[str, int]
    affected: FrozenSet[str]
    t0_cap: Optional[int] = None
    prev_first_rejects: Mapping[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class ScheduleOutcome:
    """A schedule plus the provenance incremental callers need."""

    starts: Dict[str, int]
    greedy: bool  # False when the serial fallback produced the schedule
    # Earliest event time at which an op of each kind failed admission
    # (kinds never rejected are absent).  Feeds the next warm start's
    # monotone-admission bound.
    first_rejects: Mapping[str, int] = field(default_factory=dict)


def serial_schedule(
    graph: SequencingGraph,
    latencies: Mapping[str, int],
    constrained_kinds: Set[str],
) -> Dict[str, int]:
    """Fully serialised fallback schedule (one op of each kind at a time).

    Operations of the kinds in ``constrained_kinds`` are executed one
    after another (per kind); other kinds run ASAP.  Under this schedule
    at most one operation of a constrained kind is active at any step, so
    the Eqn. 3 LHS of kind ``y`` is at most ``|S_y|`` -- the schedule is
    therefore feasible whenever ``N_y >= |S_y|``, which is also a *lower
    bound* on implementable unit counts (any binding uses at least
    ``|S_y|`` distinct covering types).  This removes the wedge states a
    greedy constructive scheduler can talk itself into.
    """
    priority = critical_path_priorities(graph, latencies)
    kind_of = {op.name: op.resource_kind for op in graph.operations}
    horizon: Dict[str, int] = {}
    start: Dict[str, int] = {}
    # Incremental readiness: unplaced-predecessor counts and running
    # release times, so each pick scans only the ready frontier instead
    # of re-deriving readiness for every remaining op.
    preds_left: Dict[str, int] = {}
    release: Dict[str, int] = {}
    frontier: Set[str] = set()
    for n in graph.names:
        preds_left[n] = len(graph.predecessors(n))
        release[n] = 0
        if preds_left[n] == 0:
            frontier.add(n)
    while frontier:
        name = min(frontier, key=lambda n: (-priority[n], n))
        kind = kind_of[name]
        if kind in constrained_kinds:
            begin = max(release[name], horizon.get(kind, 0))
            horizon[kind] = begin + latencies[name]
        else:
            begin = release[name]
        start[name] = begin
        frontier.discard(name)
        finish = begin + latencies[name]
        for succ in graph.successors(name):
            preds_left[succ] -= 1
            if finish > release[succ]:
                release[succ] = finish
            if preds_left[succ] == 0:
                frontier.add(succ)
    return start


def _greedy_schedule(
    graph: SequencingGraph,
    tracker: "Eqn2Tracker | Eqn3Tracker",
    latencies: Mapping[str, int],
    prefix: Optional[Mapping[str, int]] = None,
    resume: int = 0,
    priorities: Optional[Mapping[str, int]] = None,
    kind_of: Optional[Mapping[str, str]] = None,
    first_rejects: Optional[Dict[str, int]] = None,
) -> Dict[str, int]:
    """Greedy constructive list schedule, optionally warm-started.

    ``prefix`` replays already-proven placements (identical in the new
    run by the :class:`ScheduleWarmStart` argument) into the tracker and
    resumes the event loop at ``resume`` -- the latest prefix start, so
    the re-scan at ``resume`` re-rejects exactly the ops the previous
    run rejected there (admission is monotone in committed load, and a
    kind whose limit rose cannot have rejected anything before the
    divergence bound) and the loop continues as a from-scratch run
    would.  ``first_rejects`` (when given, with ``kind_of``) collects
    the earliest rejection event time per resource kind.
    """
    priority = (
        priorities
        if priorities is not None
        else critical_path_priorities(graph, latencies)
    )
    pending: Set[str] = set(graph.names)
    start_times: Dict[str, int] = {}
    running: List[_Running] = []
    now = 0
    if prefix:
        for name in sorted(prefix, key=lambda n: (prefix[n], n)):
            start = prefix[name]
            start_times[name] = start
            tracker.place(name, start, latencies[name])
            if start + latencies[name] > resume:
                running.append(_Running(name, start + latencies[name]))
            pending.discard(name)
        now = resume

    # Incremental readiness: per-op unplaced-predecessor counts and the
    # running max finish of placed predecessors.  Placing an op touches
    # only its successors, so each event scans the released frontier
    # rather than re-deriving readiness for every pending op.  The
    # frontier (preds_left == 0) and release values coincide exactly
    # with the original per-event re-scan, so decision order -- and
    # hence the schedule bytes -- are unchanged.
    preds_left: Dict[str, int] = {}
    release: Dict[str, int] = {}
    frontier: Set[str] = set()
    # reprolint: disable=RL001(order-insensitive: per-op init, no cross-op state)
    for n in pending:
        left = 0
        rel = 0
        for p in graph.predecessors(n):
            if p in start_times:
                finish = start_times[p] + latencies[p]
                if finish > rel:
                    rel = finish
            else:
                left += 1
        preds_left[n] = left
        release[n] = rel
        if left == 0:
            frontier.add(n)

    def _commit(name: str, start: int) -> None:
        start_times[name] = start
        finish = start + latencies[name]
        for succ in graph.successors(name):
            if succ in pending:
                preds_left[succ] -= 1
                if finish > release[succ]:
                    release[succ] = finish
                if preds_left[succ] == 0:
                    frontier.add(succ)

    while pending:
        ready = sorted(
            (n for n in frontier if release[n] <= now),
            key=lambda n: (-priority[n], n),
        )
        for name in ready:
            if tracker.admits(name, now, latencies[name]):
                tracker.place(name, now, latencies[name])
                running.append(_Running(name, now + latencies[name]))
                pending.discard(name)
                frontier.discard(name)
                _commit(name, now)
            elif first_rejects is not None and kind_of is not None:
                first_rejects.setdefault(kind_of[name], now)
        if not pending:
            break

        # Advance time to the next event: a running op finishing or a
        # dependency releasing a new ready op.
        events = [r.finish for r in running if r.finish > now]
        # reprolint: disable=RL001(order-insensitive: every path feeds min)
        for n in frontier:
            if release[n] > now:
                events.append(release[n])
        if events:
            now = min(events)
            running = [r for r in running if r.finish > now]
            continue

        # No future events and nothing placeable now.  With no running
        # ops the current step is fresh, so by time-monotonicity of the
        # bound the remaining ready ops are blocked permanently.
        raise _GreedyWedge(sorted(ready) or sorted(pending))

    return start_times


def _warm_prefix(
    graph: SequencingGraph,
    latencies: Mapping[str, int],
    warm: ScheduleWarmStart,
) -> Optional[Tuple[Dict[str, int], int]]:
    """The provably-reusable placement prefix of a warm start.

    Returns ``(prefix placements, resume time)`` or ``None`` when
    nothing can be reused.  The prefix is every previous placement that
    starts before the divergence bound ``t0`` -- the earliest time
    anything that changed could have influenced a decision (see
    :class:`ScheduleWarmStart`); decisions before that point are
    identical by induction over the event trace.
    """
    prev = warm.prev_starts
    if set(prev) != set(graph.names):
        return None
    t0: Optional[int] = warm.t0_cap
    if warm.affected:
        affected_t0 = min(
            max(
                (
                    prev[p] + warm.prev_latencies[p]
                    for p in graph.predecessors(name)
                ),
                default=0,
            )
            for name in warm.affected
        )
        t0 = affected_t0 if t0 is None else min(t0, affected_t0)
    if t0 is None:
        # Nothing affected: the previous schedule is still exact.
        return dict(prev), max(prev.values(), default=0)
    prefix = {name: start for name, start in prev.items() if start < t0}
    if not prefix:
        return None
    for name in prefix:
        # Affected ops start at/after t0 by construction; a mismatch in
        # replayed latencies would falsify the reuse proof, so fall back.
        if name in warm.affected or warm.prev_latencies[name] != latencies[name]:
            return None
    return prefix, max(prefix.values())


def list_schedule_outcome(
    graph: SequencingGraph,
    wcg: WordlengthCompatibilityGraph,
    latencies: Mapping[str, int],
    resource_constraints: Optional[Mapping[str, int]] = None,
    constraint: str = "eqn3",
    scheduling_set: Optional[Tuple[ResourceType, ...]] = None,
    warm: Optional[ScheduleWarmStart] = None,
    priorities: Optional[Mapping[str, int]] = None,
) -> ScheduleOutcome:
    """Resource-constrained list scheduling with latency upper bounds.

    Args:
        graph: sequencing graph ``P(O, S)``.
        wcg: current wordlength compatibility graph (supplies ``S`` and
            ``O(s)`` for the Eqn. 3 tracker).
        latencies: per-op latencies -- Algorithm DPAlloc passes the upper
            bounds ``L_o`` so that later binding can never violate the
            schedule.
        resource_constraints: ``N_y`` per resource kind; ``None`` or an
            empty mapping yields a pure ASAP schedule.
        constraint: ``"eqn3"`` (paper) or ``"eqn2"`` (ablation).
        scheduling_set: precomputed scheduling set (the solver pipeline
            caches per-kind covers); ``None`` recomputes from ``wcg``.
        warm: previous-iteration state for incremental rescheduling.
            The result is byte-identical to a from-scratch run -- the
            warm start only skips re-deriving the provably unchanged
            placement prefix.
        priorities: precomputed critical-path priorities for
            ``latencies`` (the solver pipeline derives them while
            computing the affected set); ``None`` recomputes them.

    Returns:
        a :class:`ScheduleOutcome` (start step per operation, plus
        whether the greedy pass -- rather than the serial fallback --
        produced it).

    Raises:
        InfeasibleError: some operation can never satisfy the resource
            bound, i.e. ``N_y`` is below the coverage lower bound
            ``|S_y|`` (or, for Eqn. 2, below 1).

    The greedy constructive pass can occasionally wedge itself: committed
    peaks may permanently exhaust the type budget for an op that a
    cleverer schedule would have accommodated.  In that case the
    scheduler falls back to :func:`serial_schedule`, which provably
    satisfies Eqn. 3 whenever ``N_y >= |S_y|``; if even the serial
    schedule fails the check the constraints are genuinely infeasible.
    """
    if not resource_constraints:
        return ScheduleOutcome(graph.asap(latencies), greedy=True)

    def make_tracker() -> "Eqn2Tracker | Eqn3Tracker":
        if constraint == "eqn3":
            return Eqn3Tracker(wcg, resource_constraints, scheduling_set)
        if constraint == "eqn2":
            return Eqn2Tracker(wcg, resource_constraints)
        raise ValueError(f"unknown constraint {constraint!r}")

    prefix: Optional[Dict[str, int]] = None
    resume = 0
    if warm is not None:
        reusable = _warm_prefix(graph, latencies, warm)
        if reusable is not None:
            prefix, resume = reusable

    kind_of = {op.name: op.resource_kind for op in graph.operations}
    observed_rejects: Dict[str, int] = {}
    try:
        starts = _greedy_schedule(
            graph,
            make_tracker(),
            latencies,
            prefix=prefix,
            resume=resume,
            priorities=priorities,
            kind_of=kind_of,
            first_rejects=observed_rejects,
        )
        # A replayed prefix skips the events before ``resume``, but
        # those decisions -- including rejections -- are identical to
        # the previous run's, so its pre-resume rejections carry over.
        first_rejects = dict(observed_rejects)
        if prefix is not None and warm is not None:
            for kind, when in warm.prev_first_rejects.items():
                if when < resume and when < first_rejects.get(kind, when + 1):
                    first_rejects[kind] = when
        return ScheduleOutcome(starts, greedy=True, first_rejects=first_rejects)
    except _GreedyWedge:
        pass

    schedule = serial_schedule(
        graph, latencies, constrained_kinds=set(resource_constraints)
    )
    checker = make_tracker()
    order = sorted(schedule, key=lambda n: (schedule[n], n))
    for name in order:
        if not checker.admits(name, schedule[name], latencies[name]):
            raise InfeasibleError(
                f"resource constraints {dict(resource_constraints)} are "
                f"infeasible (operation {name!r} fails even under the "
                f"serialised schedule)"
            )
        checker.place(name, schedule[name], latencies[name])
    return ScheduleOutcome(schedule, greedy=False)


def list_schedule(
    graph: SequencingGraph,
    wcg: WordlengthCompatibilityGraph,
    latencies: Mapping[str, int],
    resource_constraints: Optional[Mapping[str, int]] = None,
    constraint: str = "eqn3",
) -> Dict[str, int]:
    """From-scratch list scheduling; see :func:`list_schedule_outcome`."""
    return list_schedule_outcome(
        graph, wcg, latencies, resource_constraints, constraint
    ).starts
