"""Algorithm DPAlloc -- the paper's top-level heuristic (section 2).

Pseudo-code from the paper::

    while( no feasible solution ) do
        calculate resource set covering each operation;
        find upper-bounds L_o on latency of each operation o in O;
        schedule P(O, S) using latency upper-bounds L_o;
        perform binding and wordlength selection;
        if( solution violates latency constraint )
            refine wordlength information;
        else
            record this as a feasible solution;
    end while;

The intuition (paper section 2): "using the largest possible range of
latencies at the start allows the greatest possible resource sharing".
Concretely, scheduling runs under the Eqn. 3 resource bound with the
*minimum* unit counts implied by the wordlength information: one unit per
scheduling-set member (``N_y = |S_y|``).  Initially the scheduling set has
a single member per kind -- the whole graph is scheduled "using one
multiplier", exactly the situation the paper's Fig. 2 discussion
describes -- which maximally serialises operations and thus maximises
sharing.  When the resulting makespan misses the user constraint,
wordlength refinement deletes the slowest ``H`` edges of one
bound-critical operation: ops get faster *and* the scheduling set may
grow, adding parallelism, until the constraint is met.

Two completions of the paper's under-specified corners (documented in
DESIGN.md §5):

* when no operation is refinable but the constraint is still violated,
  the derived unit count of the bottleneck kind is incremented (pure
  duplication of units -- needed e.g. for many identical parallel ops
  under a tight constraint);
* scheduling with upper bounds guarantees the later binding never
  violates the schedule, and the achieved makespan is evaluated with the
  *bound-resource* latencies (results are ready no later than the
  reserved upper bounds).

Termination: every iteration deletes an ``H`` edge or increments a unit
count, both bounded, so the loop is polynomial; if neither is possible
the problem is infeasible (lambda below the fully-refined critical path,
or user resource constraints below the coverage lower bound).

Architecture (since the pass-pipeline refactor): the loop body lives in
:mod:`repro.core.solver` as explicit passes (bounds -> schedule -> bind
-> check -> refine/bump) over a :class:`~repro.core.solver.SolverState`;
:func:`allocate` is a thin wrapper that adds the ``mode="best"``
meta-mode on top of :func:`~repro.core.solver.run_pipeline`.  The state
tracks dirtiness per operation, so by default an iteration recomputes
only what the previous refinement actually invalidated (the refined
op's upper bound, its kind's scheduling-set cover, the affected cone of
the list schedule).  ``REPRO_SOLVER=scratch`` disables all reuse and is
guaranteed -- by tests and a CI parity job over the full experiment
sweep -- to produce byte-identical canonical results.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from .problem import InfeasibleError, Problem
from .solution import Datapath
from .solver import DPAllocOptions, run_pipeline

__all__ = ["allocate", "DPAllocOptions"]


def allocate(problem: Problem, options: Optional[DPAllocOptions] = None) -> Datapath:
    """Run Algorithm DPAlloc on ``problem``; return the first feasible datapath.

    Raises:
        InfeasibleError: the latency constraint is below the fully
            refined critical path, or the resource-count constraints can
            never be satisfied.
    """
    opts = options or DPAllocOptions()

    if opts.mode == "best":
        # Run both concrete scheduling modes under the same option set
        # (including any max_iterations cap) and keep the smaller-area
        # feasible datapath; its recorded iterations/refinements/trace
        # are the winning variant's own.
        candidates: List[Datapath] = []
        for mode in ("min-units", "asap"):
            variant = replace(opts, mode=mode)
            try:
                candidates.append(allocate(problem, variant))
            except InfeasibleError:
                continue
        if not candidates:
            raise InfeasibleError(
                f"latency constraint {problem.latency_constraint} unreachable "
                f"under both scheduling modes"
            )
        return min(candidates, key=lambda dp: (dp.area, dp.makespan))

    return run_pipeline(problem, opts)
