"""Algorithm DPAlloc -- the paper's top-level heuristic (section 2).

Pseudo-code from the paper::

    while( no feasible solution ) do
        calculate resource set covering each operation;
        find upper-bounds L_o on latency of each operation o in O;
        schedule P(O, S) using latency upper-bounds L_o;
        perform binding and wordlength selection;
        if( solution violates latency constraint )
            refine wordlength information;
        else
            record this as a feasible solution;
    end while;

The intuition (paper section 2): "using the largest possible range of
latencies at the start allows the greatest possible resource sharing".
Concretely, scheduling runs under the Eqn. 3 resource bound with the
*minimum* unit counts implied by the wordlength information: one unit per
scheduling-set member (``N_y = |S_y|``).  Initially the scheduling set has
a single member per kind -- the whole graph is scheduled "using one
multiplier", exactly the situation the paper's Fig. 2 discussion
describes -- which maximally serialises operations and thus maximises
sharing.  When the resulting makespan misses the user constraint,
wordlength refinement deletes the slowest ``H`` edges of one
bound-critical operation: ops get faster *and* the scheduling set may
grow, adding parallelism, until the constraint is met.

Two completions of the paper's under-specified corners (documented in
DESIGN.md §5):

* when no operation is refinable but the constraint is still violated,
  the derived unit count of the bottleneck kind is incremented (pure
  duplication of units -- needed e.g. for many identical parallel ops
  under a tight constraint);
* scheduling with upper bounds guarantees the later binding never
  violates the schedule, and the achieved makespan is evaluated with the
  *bound-resource* latencies (results are ready no later than the
  reserved upper bounds).

Termination: every iteration deletes an ``H`` edge or increments a unit
count, both bounded, so the loop is polynomial; if neither is possible
the problem is infeasible (lambda below the fully-refined critical path,
or user resource constraints below the coverage lower bound).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from .binding import Binding, bindselect
from .problem import InfeasibleError, Problem
from .refinement import RefinementStep, refine_once
from .scheduling import list_schedule
from .solution import Datapath
from .wcg import WordlengthCompatibilityGraph

__all__ = ["allocate", "DPAllocOptions"]


@dataclass(frozen=True)
class DPAllocOptions:
    """Tunable knobs of the heuristic (defaults = the paper's algorithm).

    A frozen dataclass: option sets hash, compare, serialise
    (``dataclasses.asdict``) and derive (``dataclasses.replace``) without
    hand-copied field lists.

    Attributes:
        grow: enable Bindselect's clique-growth compensation.
        shrink: enable the final cheapest-cover wordlength selection.
        constraint: scheduling bound, ``"eqn3"`` (paper) or ``"eqn2"``
            (naive ablation).
        mode: ``"min-units"`` (paper: schedule under the minimal derived
            unit counts ``N_y = |S_y|``), ``"asap"`` (ablation: no
            derived constraints; only user-specified ``N_y`` apply), or
            ``"best"`` (extension: run both and keep the smaller-area
            feasible datapath -- the ablation study shows each reading
            wins on a sizeable fraction of instances).
        selector: refinement candidate rule, ``"min-edge-loss"`` (paper)
            or ``"name-order"`` (ablation).
        blind_refinement: ablation -- skip the bound-critical-path
            analysis and refine from the whole operation set.
        max_iterations: optional hard cap on outer-loop iterations.
    """

    grow: bool = True
    shrink: bool = True
    constraint: str = "eqn3"
    mode: str = "min-units"
    selector: str = "min-edge-loss"
    blind_refinement: bool = False
    max_iterations: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in ("min-units", "asap", "best"):
            raise ValueError(f"unknown mode {self.mode!r}")


def _empty_datapath() -> Datapath:
    return Datapath(
        schedule={},
        binding=Binding(()),
        upper_bounds={},
        bound_latencies={},
        makespan=0,
        area=0.0,
        iterations=0,
    )


def _derived_constraints(
    wcg: WordlengthCompatibilityGraph,
    problem: Problem,
    bumps: Dict[str, int],
    ops_per_kind: Dict[str, int],
) -> Dict[str, int]:
    """Effective ``N_y``: user ceilings where given, else ``|S_y| + bump``."""
    scheduling_set = wcg.scheduling_set()
    member_counts = Counter(s.kind for s in scheduling_set)
    user = dict(problem.resource_constraints or {})
    constraints: Dict[str, int] = {}
    for kind, total in ops_per_kind.items():
        if kind in user:
            constraints[kind] = user[kind]
        else:
            derived = member_counts.get(kind, 0) + bumps.get(kind, 0)
            constraints[kind] = min(max(derived, 1), total)
    return constraints


def _bottleneck_kind(
    problem: Problem,
    schedule: Dict[str, int],
    bound_latencies: Dict[str, int],
) -> str:
    """Resource kind of the last-finishing operation (deterministic)."""
    name = max(
        schedule,
        key=lambda n: (schedule[n] + bound_latencies[n], n),
    )
    return problem.graph.operation(name).resource_kind


def allocate(problem: Problem, options: Optional[DPAllocOptions] = None) -> Datapath:
    """Run Algorithm DPAlloc on ``problem``; return the first feasible datapath.

    Raises:
        InfeasibleError: the latency constraint is below the fully
            refined critical path, or the resource-count constraints can
            never be satisfied.
    """
    opts = options or DPAllocOptions()
    graph = problem.graph
    ops = graph.operations
    if not ops:
        return _empty_datapath()

    if opts.mode == "best":
        candidates: List[Datapath] = []
        for mode in ("min-units", "asap"):
            variant = replace(opts, mode=mode)
            try:
                candidates.append(allocate(problem, variant))
            except InfeasibleError:
                continue
        if not candidates:
            raise InfeasibleError(
                f"latency constraint {problem.latency_constraint} unreachable "
                f"under both scheduling modes"
            )
        return min(candidates, key=lambda dp: (dp.area, dp.makespan))

    resources = problem.resource_set()
    wcg = WordlengthCompatibilityGraph(ops, resources, problem.latency_model)
    names = graph.names
    edges = graph.edges()
    ops_per_kind = dict(Counter(op.resource_kind for op in ops))
    user_kinds = set(problem.resource_constraints or {})

    # Refinements delete >= 1 H edge each; bumps add >= 1 unit each.
    iteration_cap = (wcg.edge_count() - len(ops) + 1) + sum(ops_per_kind.values())
    if opts.max_iterations is not None:
        iteration_cap = min(iteration_cap, opts.max_iterations)

    bumps: Dict[str, int] = {}
    refinements: List[RefinementStep] = []
    iteration = 0
    while True:
        iteration += 1
        upper_bounds = wcg.upper_bound_latencies()
        if opts.mode == "min-units":
            constraints = _derived_constraints(wcg, problem, bumps, ops_per_kind)
        else:
            constraints = dict(problem.resource_constraints or {})
        schedule = list_schedule(
            graph,
            wcg,
            upper_bounds,
            resource_constraints=constraints,
            constraint=opts.constraint,
        )
        binding = bindselect(
            wcg,
            schedule,
            upper_bounds,
            problem.area_model,
            grow=opts.grow,
            shrink=opts.shrink,
        )
        bound_latencies = binding.bound_latencies(wcg)
        makespan = max(schedule[n] + bound_latencies[n] for n in names)

        if makespan <= problem.latency_constraint:
            return Datapath(
                schedule=dict(schedule),
                binding=binding,
                upper_bounds=upper_bounds,
                bound_latencies=bound_latencies,
                makespan=makespan,
                area=binding.area(problem.area_model),
                iterations=iteration,
                refinements=tuple(refinements),
            )

        if iteration >= iteration_cap:
            raise InfeasibleError(
                f"DPAlloc exceeded its iteration bound ({iteration_cap}) "
                f"without meeting latency {problem.latency_constraint} "
                f"(best makespan {makespan})"
            )

        # Preferred move: refine a bound-critical operation (paper §2.4).
        primary_pools = ("any",) if opts.blind_refinement else ("W", "Qb")
        try:
            step = refine_once(
                wcg, names, edges, schedule, binding,
                problem.latency_constraint, pools=primary_pools,
                selector=opts.selector,
            )
            refinements.append(step)
            continue
        except InfeasibleError:
            pass

        # The bound critical path is unrefinable.  In min-units mode the
        # principled move is to duplicate a unit of the bottleneck kind,
        # directly relieving the serialisation that limits the makespan.
        if opts.mode == "min-units":
            bumpable = sorted(
                kind
                for kind, limit in _derived_constraints(
                    wcg, problem, bumps, ops_per_kind
                ).items()
                if kind not in user_kinds and limit < ops_per_kind[kind]
            )
            if bumpable:
                preferred = _bottleneck_kind(problem, schedule, bound_latencies)
                kind = preferred if preferred in bumpable else bumpable[0]
                bumps[kind] = bumps.get(kind, 0) + 1
                continue

        # Last resort: refine any refinable operation (it may still grow
        # the scheduling set and unlock parallelism).
        try:
            step = refine_once(
                wcg, names, edges, schedule, binding,
                problem.latency_constraint, pools=("any",),
                selector=opts.selector,
            )
            refinements.append(step)
            continue
        except InfeasibleError:
            raise InfeasibleError(
                f"latency constraint {problem.latency_constraint} unreachable "
                f"even with fully refined wordlengths and duplicated units "
                f"(best makespan {makespan})"
            ) from None