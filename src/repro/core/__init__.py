"""Core allocation algorithms: the paper's primary contribution."""

from .binding import Binding, BoundClique, bindselect, max_chain
from .dpalloc import DPAllocOptions, allocate
from .problem import InfeasibleError, Problem
from .refinement import (
    RefinementStep,
    bound_critical_path,
    candidate_set,
    choose_refinement_op,
    refine_once,
)
from .scheduling import (
    Eqn2Tracker,
    Eqn3Tracker,
    critical_path_priorities,
    list_schedule,
)
from .solution import Datapath
from .wcg import WordlengthCompatibilityGraph

__all__ = [
    "Binding",
    "BoundClique",
    "Datapath",
    "DPAllocOptions",
    "Eqn2Tracker",
    "Eqn3Tracker",
    "InfeasibleError",
    "Problem",
    "RefinementStep",
    "WordlengthCompatibilityGraph",
    "allocate",
    "bindselect",
    "bound_critical_path",
    "candidate_set",
    "choose_refinement_op",
    "critical_path_priorities",
    "list_schedule",
    "max_chain",
    "refine_once",
]
