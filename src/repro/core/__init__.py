"""Core allocation algorithms: the paper's primary contribution."""

from .binding import Binding, BoundClique, bindselect, max_chain
from .dpalloc import DPAllocOptions, allocate
from .problem import InfeasibleError, Problem
from .refinement import (
    RefinementStep,
    bound_critical_path,
    candidate_set,
    choose_refinement_op,
    refine_once,
)
from .scheduling import (
    Eqn2Tracker,
    Eqn3Tracker,
    ScheduleOutcome,
    ScheduleWarmStart,
    critical_path_priorities,
    list_schedule,
    list_schedule_outcome,
)
from .solution import Datapath, TraceEvent
from .solver import (
    SOLVER_ENV,
    SOLVER_MODES,
    SolverState,
    resolve_solver_mode,
    run_pipeline,
)
from .wcg import WordlengthCompatibilityGraph

__all__ = [
    "Binding",
    "BoundClique",
    "Datapath",
    "DPAllocOptions",
    "Eqn2Tracker",
    "Eqn3Tracker",
    "InfeasibleError",
    "Problem",
    "RefinementStep",
    "SOLVER_ENV",
    "SOLVER_MODES",
    "ScheduleOutcome",
    "ScheduleWarmStart",
    "SolverState",
    "TraceEvent",
    "WordlengthCompatibilityGraph",
    "allocate",
    "bindselect",
    "bound_critical_path",
    "candidate_set",
    "choose_refinement_op",
    "critical_path_priorities",
    "list_schedule",
    "list_schedule_outcome",
    "max_chain",
    "refine_once",
    "resolve_solver_mode",
    "run_pipeline",
]
