"""Error-driven wordlength derivation (a Synoptix-style front-end).

The paper takes each operation's wordlength as given "either by hand or
from output-error specification by a further design automation tool such
as Synoptix [3, 6]", and names the interaction between that derivation
and high-level synthesis as future work.  This module closes the loop
with a small, self-contained front-end in the spirit of refs. [3, 6]:

**Noise model.**  Signals are fixed-point fractions with ``w`` fraction
bits.  Truncating a signal from its natural (full-precision) width
``w_nat`` down to ``w`` bits injects quantisation noise of variance
``(2^(-2w) - 2^(-2 w_nat)) / 12`` at that point.  Noise propagates to
each kernel output with a conservative unit gain per path (coefficients
are assumed scaled below one, the DSP convention), so an output's noise
variance is the path-count-weighted sum of all injected variances.
Correlation between recombining paths is ignored, which only
*over*-estimates the noise -- the bound stays safe.

**Optimisation.**  Starting from the netlist's declared widths, a greedy
trimmer repeatedly removes one fraction bit from the signal offering the
best estimated area saving, as long as every output stays within its
error budget.  Primary inputs are fixed (their precision is given by the
environment); constants and operation results are optimisable.

The result is a new :class:`~repro.sim.netlist.Netlist` (and sequencing
graph) with the derived wordlengths, ready for :func:`repro.allocate` --
see ``examples/wordlength_flow.py`` for the full front-end-to-datapath
flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..ir.builder import DFGBuilder
from ..ir.seqgraph import SequencingGraph
from ..sim.netlist import Netlist

__all__ = [
    "WordlengthResult",
    "natural_width",
    "injected_variance",
    "path_counts",
    "output_noise",
    "optimize_wordlengths",
    "rebuild_netlist",
]


def natural_width(kind: str, operand_widths: Tuple[int, ...]) -> int:
    """Full-precision result width of one operation."""
    a, b = operand_widths
    if kind == "mul":
        return a + b
    if kind in ("add", "sub"):
        return max(a, b) + 1
    raise KeyError(f"no width rule for kind {kind!r}")


def injected_variance(width: int, nat: int) -> float:
    """Quantisation noise variance injected by truncating nat -> width bits."""
    if width >= nat:
        return 0.0
    return (2.0 ** (-2 * width) - 2.0 ** (-2 * nat)) / 12.0


def path_counts(netlist: Netlist) -> Dict[str, Dict[str, int]]:
    """``paths[signal][output]``: number of directed paths to each output.

    The conservative per-path gain is 1, so this is also the noise gain.
    Paths are counted per operand *port*: a signal feeding both ports of
    one operation contributes twice, and reconvergent fan-out counts each
    route separately -- over-estimating variance, never under.
    """
    graph = netlist.graph
    outputs = netlist.output_ops()
    # Per-port consumer multiset: signal -> [(consumer op, occurrences)].
    fanout: Dict[str, Dict[str, int]] = {}
    for op_name, sources in netlist.wiring.items():
        for source in sources:
            fanout.setdefault(source, {})
            fanout[source][op_name] = fanout[source].get(op_name, 0) + 1

    counts: Dict[str, Dict[str, int]] = {}
    order = list(graph.topological_order())
    for op_name in reversed(order):
        row: Dict[str, int] = {}
        if op_name in outputs:
            row[op_name] = 1
        for consumer, multiplicity in fanout.get(op_name, {}).items():
            for out, n in counts[consumer].items():
                row[out] = row.get(out, 0) + multiplicity * n
        counts[op_name] = row
    for free in netlist.free_signals():
        row = {}
        for consumer, multiplicity in fanout.get(free, {}).items():
            for out, n in counts[consumer].items():
                row[out] = row.get(out, 0) + multiplicity * n
        counts[free] = row
    return counts


def _natural_widths(
    netlist: Netlist, widths: Mapping[str, int]
) -> Dict[str, int]:
    """Natural (pre-truncation) width of every op result, given signal widths."""
    graph = netlist.graph
    nat: Dict[str, int] = {}
    for op_name in graph.topological_order():
        op = graph.operation(op_name)
        sources = netlist.wiring[op_name]
        nat[op_name] = natural_width(op.kind, tuple(widths[s] for s in sources))
    return nat


def output_noise(
    netlist: Netlist, widths: Mapping[str, int]
) -> Dict[str, float]:
    """Predicted noise variance at every kernel output.

    Sources: truncation of op results below their natural width, and
    quantisation of constants (whose reference is taken as ideal, so a
    ``w``-bit constant injects ``2^(-2w)/12``).
    """
    counts = path_counts(netlist)
    nat = _natural_widths(netlist, widths)
    outputs = netlist.output_ops()
    noise = {out: 0.0 for out in outputs}
    for op_name in netlist.graph.names:
        var = injected_variance(widths[op_name], nat[op_name])
        if var:
            for out, gain in counts[op_name].items():
                noise[out] += gain * var
    for const in netlist.constants:
        var = 2.0 ** (-2 * widths[const]) / 12.0
        for out, gain in counts[const].items():
            noise[out] += gain * var
    return noise


def _area_saving_score(netlist: Netlist, signal: str) -> float:
    """Estimated area saved by removing one bit from ``signal``.

    A multiply consumer shrinks by roughly the partner operand's width;
    an add consumer by one unit; producing one fewer result bit saves a
    register bit.  Only a ranking is needed, not absolute areas.
    """
    graph = netlist.graph
    score = 1.0  # the result/coefficient storage itself
    for consumer in netlist.consumers_of(signal):
        op = graph.operation(consumer)
        if op.kind == "mul":
            partner = [s for s in netlist.wiring[consumer] if s != signal]
            partner_width = (
                netlist.signal_width(partner[0]) if partner else 1
            )
            score += partner_width
        else:
            score += 1.0
    return score


@dataclass(frozen=True)
class WordlengthResult:
    """Outcome of the error-driven wordlength derivation."""

    widths: Dict[str, int]
    predicted_noise: Dict[str, float]
    netlist: Netlist
    trimmed_bits: int

    @property
    def graph(self) -> SequencingGraph:
        return self.netlist.graph


def rebuild_netlist(netlist: Netlist, widths: Mapping[str, int]) -> Netlist:
    """Materialise a netlist with new signal widths (same structure)."""
    builder = DFGBuilder()
    signals = {}
    for name, _ in sorted(netlist.inputs.items()):
        signals[name] = builder.input(name, widths[name])
    for name, _ in sorted(netlist.constants.items()):
        signals[name] = builder.constant(name, widths[name])
    for op_name in netlist.graph.topological_order():
        op = netlist.graph.operation(op_name)
        a, b = (signals[s] for s in netlist.wiring[op_name])
        method = {"mul": builder.mul, "add": builder.add, "sub": builder.sub}[op.kind]
        signals[op_name] = method(a, b, name=op_name, out_width=widths[op_name])
    return Netlist.from_builder(builder)


def optimize_wordlengths(
    netlist: Netlist,
    error_budget: float,
    min_width: int = 2,
    max_trims: Optional[int] = None,
) -> WordlengthResult:
    """Derive wordlengths meeting a per-output noise budget.

    Args:
        netlist: the kernel at its declared (e.g. full) precision.
        error_budget: maximum tolerated noise variance at any output
            (fractions normalised to [0, 1)); e.g. ``2**-16 / 12`` for
            roughly 8 noise-free fraction bits.
        min_width: lower bound on every signal width.
        max_trims: optional cap on trimming steps (testing hook).

    Returns:
        the derived widths, their predicted output noise, and the
        rebuilt netlist.

    Raises:
        ValueError: the starting netlist already violates the budget.
    """
    if error_budget <= 0:
        raise ValueError("error budget must be positive")
    widths: Dict[str, int] = {
        name: netlist.signal_width(name)
        for name in (
            list(netlist.free_signals()) + list(netlist.graph.names)
        )
    }
    noise = output_noise(netlist, widths)
    if any(v > error_budget for v in noise.values()):
        raise ValueError(
            f"declared widths already exceed the error budget: {noise}"
        )

    optimisable = sorted(set(netlist.constants) | set(netlist.graph.names))
    trimmed = 0
    while max_trims is None or trimmed < max_trims:
        best: Optional[Tuple[float, str]] = None
        for signal in optimisable:
            if widths[signal] <= min_width:
                continue
            widths[signal] -= 1
            candidate_noise = output_noise(netlist, widths)
            widths[signal] += 1
            if all(v <= error_budget for v in candidate_noise.values()):
                key = (_area_saving_score(netlist, signal), signal)
                if best is None or key > best:
                    best = key
        if best is None:
            break
        widths[best[1]] -= 1
        trimmed += 1

    final_noise = output_noise(netlist, widths)
    return WordlengthResult(
        widths=dict(widths),
        predicted_noise=final_noise,
        netlist=rebuild_netlist(netlist, widths),
        trimmed_bits=trimmed,
    )
