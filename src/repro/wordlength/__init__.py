"""Error-driven wordlength derivation (Synoptix-style front-end)."""

from .optimizer import (
    WordlengthResult,
    injected_variance,
    natural_width,
    optimize_wordlengths,
    output_noise,
    path_counts,
    rebuild_netlist,
)

__all__ = [
    "WordlengthResult",
    "injected_variance",
    "natural_width",
    "optimize_wordlengths",
    "output_noise",
    "path_counts",
    "rebuild_netlist",
]
