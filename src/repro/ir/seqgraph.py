"""Sequencing graph ``P(O, S)`` -- the data-dependency DAG of the paper.

Nodes are operation names; every node carries an :class:`~repro.ir.ops.Operation`.
Directed edges are data dependencies: an edge ``(o1, o2)`` means ``o2``
consumes the result of ``o1`` and may only start once ``o1`` completes.

The class wraps a :class:`networkx.DiGraph` and offers the schedule
primitives the allocation algorithms need: ASAP / ALAP times for an
arbitrary per-operation latency assignment, critical-path length, and the
minimum feasible overall latency ``lambda_min`` used throughout the
paper's evaluation.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

import networkx as nx

from .ops import Operation

__all__ = ["SequencingGraph", "CycleError"]

LatencyMap = Mapping[str, int]


class CycleError(ValueError):
    """Raised when a sequencing graph is not acyclic."""


class SequencingGraph:
    """A DAG of :class:`Operation` nodes with data-dependency edges."""

    def __init__(self) -> None:
        self._g = nx.DiGraph()
        self._ops: Dict[str, Operation] = {}
        # Derived-structure caches, invalidated on mutation.  The solver
        # pipeline asks for the topological order and sorted
        # neighbourhoods once per iteration on a graph that never
        # changes mid-solve, so these keep networkx off the hot path.
        self._topo_cache: Optional[Tuple[str, ...]] = None
        self._pred_cache: Dict[str, Tuple[str, ...]] = {}
        self._succ_cache: Dict[str, Tuple[str, ...]] = {}

    def _invalidate_caches(self) -> None:
        self._topo_cache = None
        self._pred_cache.clear()
        self._succ_cache.clear()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_operation(self, op: Operation) -> Operation:
        """Add an operation node; names must be unique."""
        if op.name in self._ops:
            raise ValueError(f"duplicate operation name {op.name!r}")
        self._ops[op.name] = op
        self._g.add_node(op.name)
        self._invalidate_caches()
        return op

    def add(self, name: str, kind: str, operand_widths: Iterable[int]) -> Operation:
        """Convenience wrapper: build and add an operation in one call."""
        return self.add_operation(Operation(name, kind, tuple(operand_widths)))

    def add_dependency(self, producer: str, consumer: str) -> None:
        """Add data-dependency edge ``producer -> consumer``."""
        for name in (producer, consumer):
            if name not in self._ops:
                raise KeyError(f"unknown operation {name!r}")
        if producer == consumer:
            raise CycleError(f"self-dependency on {producer!r}")
        self._g.add_edge(producer, consumer)
        if not nx.is_directed_acyclic_graph(self._g):
            self._g.remove_edge(producer, consumer)
            raise CycleError(f"edge {producer!r}->{consumer!r} creates a cycle")
        self._invalidate_caches()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ops)

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops.values())

    @property
    def operations(self) -> Tuple[Operation, ...]:
        """All operations, in insertion order."""
        return tuple(self._ops.values())

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._ops)

    def operation(self, name: str) -> Operation:
        return self._ops[name]

    def edges(self) -> Tuple[Tuple[str, str], ...]:
        """Data-dependency edges as (producer, consumer) name pairs."""
        return tuple(self._g.edges())

    # passaudit: const(lazy adjacency memo; mutators invalidate it)
    def predecessors(self, name: str) -> List[str]:
        cached = self._pred_cache.get(name)
        if cached is None:
            if name not in self._ops:
                raise nx.NetworkXError(
                    f"The node {name} is not in the digraph."
                )
            cached = tuple(sorted(self._g.predecessors(name)))
            self._pred_cache[name] = cached
        return list(cached)

    # passaudit: const(lazy adjacency memo; mutators invalidate it)
    def successors(self, name: str) -> List[str]:
        cached = self._succ_cache.get(name)
        if cached is None:
            if name not in self._ops:
                raise nx.NetworkXError(
                    f"The node {name} is not in the digraph."
                )
            cached = tuple(sorted(self._g.successors(name)))
            self._succ_cache[name] = cached
        return list(cached)

    def sources(self) -> List[str]:
        return sorted(n for n in self._g.nodes if self._g.in_degree(n) == 0)

    def sinks(self) -> List[str]:
        return sorted(n for n in self._g.nodes if self._g.out_degree(n) == 0)

    # passaudit: const(lazy topo-order memo; mutators invalidate it)
    def topological_order(self) -> List[str]:
        """Deterministic topological ordering (lexicographic tie-break)."""
        if self._topo_cache is None:
            self._topo_cache = tuple(
                nx.lexicographical_topological_sort(self._g)
            )
        return list(self._topo_cache)

    def to_networkx(self) -> nx.DiGraph:
        """A copy of the underlying dependency DiGraph."""
        return self._g.copy()

    def copy(self) -> "SequencingGraph":
        clone = SequencingGraph()
        for op in self.operations:
            clone.add_operation(op)
        for u, v in self._g.edges():
            clone.add_dependency(u, v)
        return clone

    # ------------------------------------------------------------------
    # timing primitives
    # ------------------------------------------------------------------
    def _check_latencies(self, latency: LatencyMap) -> None:
        missing = [n for n in self._ops if n not in latency]
        if missing:
            raise KeyError(f"latency missing for operations: {missing}")
        bad = [n for n in self._ops if latency[n] < 1]
        if bad:
            raise ValueError(f"latencies must be >= 1 cycle, offenders: {bad}")

    def asap(self, latency: LatencyMap) -> Dict[str, int]:
        """Earliest start step of every operation for the given latencies."""
        self._check_latencies(latency)
        start: Dict[str, int] = {}
        for name in self.topological_order():
            preds = self._g.predecessors(name)
            start[name] = max((start[p] + latency[p] for p in preds), default=0)
        return start

    def makespan(self, schedule: Mapping[str, int], latency: LatencyMap) -> int:
        """Completion time of the whole graph under ``schedule``."""
        self._check_latencies(latency)
        if not self._ops:
            return 0
        return max(schedule[n] + latency[n] for n in self._ops)

    def alap(self, latency: LatencyMap, deadline: Optional[int] = None) -> Dict[str, int]:
        """Latest start steps meeting ``deadline`` (default: ASAP makespan)."""
        self._check_latencies(latency)
        if deadline is None:
            asap = self.asap(latency)
            deadline = self.makespan(asap, latency)
        start: Dict[str, int] = {}
        for name in reversed(self.topological_order()):
            succs = list(self._g.successors(name))
            finish = min((start[s] for s in succs), default=deadline)
            start[name] = finish - latency[name]
        return start

    def slack(self, latency: LatencyMap, deadline: Optional[int] = None) -> Dict[str, int]:
        """Per-operation scheduling slack: ALAP - ASAP start times."""
        asap = self.asap(latency)
        alap = self.alap(latency, deadline)
        return {n: alap[n] - asap[n] for n in self._ops}

    def critical_path_length(self, latency: LatencyMap) -> int:
        """Length of the longest dependency chain, in cycles."""
        return self.makespan(self.asap(latency), latency)

    def critical_operations(self, latency: LatencyMap) -> List[str]:
        """Operations with zero slack w.r.t. the ASAP makespan."""
        return sorted(n for n, s in self.slack(latency).items() if s == 0)

    def minimum_latency(self, min_latency_of: Callable[[Operation], int]) -> int:
        """``lambda_min``: critical path with every op at its own minimum latency.

        This is the tightest achievable overall latency constraint (with
        unconstrained resources); the paper relaxes it by 0--30% to build
        the Fig. 3 / Table 2 sweeps.
        """
        latency = {op.name: min_latency_of(op) for op in self.operations}
        return self.critical_path_length(latency)

    def validate(self) -> None:
        """Raise if the graph is not a DAG (defensive; edges are checked on add)."""
        if not nx.is_directed_acyclic_graph(self._g):
            raise CycleError("sequencing graph contains a cycle")

    def __repr__(self) -> str:
        return (
            f"SequencingGraph(|O|={len(self._ops)}, "
            f"|S|={self._g.number_of_edges()})"
        )
