"""Intermediate representation: operations, kinds, and sequencing graphs."""

from .builder import DFGBuilder, Signal
from .kinds import KindSpec, get_kind, known_kinds, register_kind, requirement_vector
from .ops import Operation
from .seqgraph import CycleError, SequencingGraph

__all__ = [
    "CycleError",
    "DFGBuilder",
    "KindSpec",
    "Operation",
    "SequencingGraph",
    "Signal",
    "get_kind",
    "known_kinds",
    "register_kind",
    "requirement_vector",
]
