"""Operations of a multiple-wordlength sequencing graph.

An :class:`Operation` is a node of the paper's sequencing graph ``P(O,S)``:
it has a unique name, an operation kind (``add``, ``mul``, ...) and the
wordlengths of its operands.  The *requirement vector* derived from the
operand widths (see :mod:`repro.ir.kinds`) determines which
resource-wordlength types can execute it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from .kinds import get_kind

__all__ = ["Operation"]


@dataclass(frozen=True)
class Operation:
    """A single operation with fixed a-priori operand wordlengths.

    Attributes:
        name: unique identifier within one sequencing graph.
        kind: operation kind name registered in :mod:`repro.ir.kinds`.
        operand_widths: wordlengths (bits) of the operands, in source
            order; canonicalisation is kind-specific.
    """

    name: str
    kind: str
    operand_widths: Tuple[int, ...]
    requirement: Tuple[int, ...] = field(init=False, compare=False)
    resource_kind: str = field(init=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("operation name must be non-empty")
        widths = tuple(int(w) for w in self.operand_widths)
        if any(w <= 0 for w in widths):
            raise ValueError(f"operation {self.name!r}: widths must be positive")
        spec = get_kind(self.kind)
        object.__setattr__(self, "operand_widths", widths)
        object.__setattr__(self, "requirement", spec.requirement_of(widths))
        object.__setattr__(self, "resource_kind", spec.resource_kind)

    def __str__(self) -> str:
        widths = "x".join(str(w) for w in self.operand_widths)
        return f"{self.name}:{self.kind}[{widths}]"
