"""Operation-kind registry for multiple-wordlength datapaths.

The paper (Table 1) works with a set of *operation types* ``Y`` -- in the
examples these are adders and multipliers.  Different operation kinds may
map onto the same *resource kind*: an addition and a subtraction both
execute on an adder/subtractor unit.

Each kind also defines how the operand wordlengths of an operation are
turned into a canonical *requirement vector*, the coordinate system in
which resource coverage is a simple componentwise ``>=`` test:

* multiplication is commutative, so an ``a x b`` multiply is canonicalised
  to ``(max(a, b), min(a, b))``; a multiplier resource ``(n, m)`` with
  ``n >= m`` covers it iff ``n >= max(a, b)`` and ``m >= min(a, b)``;
* addition/subtraction is characterised by a single wordlength, the widest
  operand: an ``n``-bit adder covers any add whose operands are ``<= n``
  bits wide.

New kinds can be registered with :func:`register_kind`, which is how a
user extends the library to, say, MAC units or dividers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

__all__ = [
    "KindSpec",
    "register_kind",
    "get_kind",
    "known_kinds",
    "requirement_vector",
]


def _commutative_pair(widths: Tuple[int, ...]) -> Tuple[int, ...]:
    """Canonical requirement of a commutative two-operand operation."""
    if len(widths) != 2:
        raise ValueError(f"expected exactly two operand widths, got {widths!r}")
    a, b = widths
    return (max(a, b), min(a, b))


def _widest_operand(widths: Tuple[int, ...]) -> Tuple[int, ...]:
    """Canonical requirement of a carry-chain style operation (add/sub)."""
    if not widths:
        raise ValueError("operation must have at least one operand width")
    return (max(widths),)


@dataclass(frozen=True)
class KindSpec:
    """Static description of an operation kind.

    Attributes:
        name: operation-kind name, e.g. ``"mul"``.
        resource_kind: the functional-unit family executing this kind.
        arity: number of requirement-vector components (not operands).
        requirement: maps operand widths to the canonical requirement
            vector of length ``arity``.
    """

    name: str
    resource_kind: str
    arity: int
    requirement: Callable[[Tuple[int, ...]], Tuple[int, ...]]

    def requirement_of(self, operand_widths: Tuple[int, ...]) -> Tuple[int, ...]:
        """Canonical requirement vector of an operation of this kind."""
        vec = tuple(self.requirement(tuple(operand_widths)))
        if len(vec) != self.arity:
            raise ValueError(
                f"kind {self.name!r}: requirement vector {vec!r} has arity "
                f"{len(vec)}, expected {self.arity}"
            )
        if any(w <= 0 for w in vec):
            raise ValueError(f"kind {self.name!r}: non-positive width in {vec!r}")
        return vec


_REGISTRY: Dict[str, KindSpec] = {}


def register_kind(spec: KindSpec, replace: bool = False) -> KindSpec:
    """Register an operation kind; returns the spec for chaining."""
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"operation kind {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_kind(name: str) -> KindSpec:
    """Look up a registered operation kind by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown operation kind {name!r}; known kinds: {sorted(_REGISTRY)}"
        ) from None


def known_kinds() -> Tuple[str, ...]:
    """Names of all registered operation kinds, sorted."""
    return tuple(sorted(_REGISTRY))


def requirement_vector(kind: str, operand_widths: Tuple[int, ...]) -> Tuple[int, ...]:
    """Canonical requirement vector for an operation of ``kind``."""
    return get_kind(kind).requirement_of(operand_widths)


# Built-in kinds: the paper's examples use adders and multipliers; `sub`
# shares the adder resource family.
register_kind(KindSpec("mul", resource_kind="mul", arity=2, requirement=_commutative_pair))
register_kind(KindSpec("add", resource_kind="add", arity=1, requirement=_widest_operand))
register_kind(KindSpec("sub", resource_kind="add", arity=1, requirement=_widest_operand))
