"""Fluent construction of multiple-wordlength data-flow graphs.

The sequencing graph of the paper only models operations and their
dependencies; when describing real DSP kernels it is more natural to think
in terms of *signals* with wordlengths flowing between operations.  The
:class:`DFGBuilder` provides that view and takes care of deriving each
operation's operand widths from its input signals.

Default result-width rules follow full-precision fixed-point arithmetic
(product of ``a`` and ``b`` bits is ``a+b`` bits; sum is ``max(a,b)+1``),
and every operation accepts an explicit ``out_width`` to model the
truncation/rounding a wordlength-optimisation front-end (e.g. the
Synoptix tool referenced by the paper) would have chosen.

Example::

    b = DFGBuilder()
    x = b.input("x", 12)
    c = b.input("c", 8)
    y = b.mul(x, c, out_width=16)
    z = b.add(y, x)
    graph = b.graph()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .ops import Operation
from .seqgraph import SequencingGraph

__all__ = ["Signal", "DFGBuilder"]


@dataclass(frozen=True)
class Signal:
    """A value flowing through the DFG: its width and producing op (if any)."""

    name: str
    width: int
    producer: Optional[str] = None

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"signal {self.name!r}: width must be positive")


class DFGBuilder:
    """Builds a :class:`SequencingGraph` from signal-level descriptions.

    Besides the sequencing graph (the allocation algorithms' input), the
    builder records the full operand *wiring* -- which signal feeds which
    operand port of which operation -- so that the simulation and RTL
    back-ends (:mod:`repro.sim`, :mod:`repro.rtl`) can reconstruct the
    computation, not just its dependence structure.
    """

    def __init__(self) -> None:
        self._graph = SequencingGraph()
        self._counts: Dict[str, int] = {}
        self._signal_widths: Dict[str, int] = {}
        self._inputs: Dict[str, int] = {}
        self._constants: Dict[str, int] = {}
        self._wiring: Dict[str, tuple] = {}  # op name -> operand signal names
        self._out_widths: Dict[str, int] = {}

    def _fresh_name(self, prefix: str) -> str:
        n = self._counts.get(prefix, 0)
        self._counts[prefix] = n + 1
        return f"{prefix}{n}"

    def _register_signal(self, name: str, width: int) -> None:
        if name in self._signal_widths:
            raise ValueError(f"duplicate signal name {name!r}")
        self._signal_widths[name] = width

    def input(self, name: str, width: int) -> Signal:
        """Declare a primary input signal (no producing operation)."""
        self._register_signal(name, width)
        self._inputs[name] = width
        return Signal(name, width)

    def constant(self, name: str, width: int) -> Signal:
        """Declare a constant coefficient signal (no producing operation)."""
        self._register_signal(name, width)
        self._constants[name] = width
        return Signal(name, width)

    def _binary(
        self,
        kind: str,
        a: Signal,
        b: Signal,
        default_width: int,
        name: Optional[str],
        out_width: Optional[int],
    ) -> Signal:
        op_name = name or self._fresh_name(kind)
        op = Operation(op_name, kind, (a.width, b.width))
        self._graph.add_operation(op)
        for operand in (a, b):
            if operand.producer is not None:
                self._graph.add_dependency(operand.producer, op_name)
        result_width = out_width or default_width
        self._register_signal(op_name, result_width)
        self._wiring[op_name] = (a.name, b.name)
        self._out_widths[op_name] = result_width
        return Signal(op_name, result_width, producer=op_name)

    def mul(
        self,
        a: Signal,
        b: Signal,
        name: Optional[str] = None,
        out_width: Optional[int] = None,
    ) -> Signal:
        """Multiply two signals; default result width is full precision."""
        return self._binary("mul", a, b, a.width + b.width, name, out_width)

    def add(
        self,
        a: Signal,
        b: Signal,
        name: Optional[str] = None,
        out_width: Optional[int] = None,
    ) -> Signal:
        """Add two signals; default result width grows by one guard bit."""
        return self._binary("add", a, b, max(a.width, b.width) + 1, name, out_width)

    def sub(
        self,
        a: Signal,
        b: Signal,
        name: Optional[str] = None,
        out_width: Optional[int] = None,
    ) -> Signal:
        """Subtract two signals; executes on the adder resource family."""
        return self._binary("sub", a, b, max(a.width, b.width) + 1, name, out_width)

    def graph(self) -> SequencingGraph:
        """The sequencing graph built so far (live object, not a copy)."""
        return self._graph

    def export_wiring(self) -> Dict[str, object]:
        """Plain-data wiring description for the sim/RTL back-ends.

        Returns a dict with ``inputs`` / ``constants`` (name -> width),
        ``wiring`` (op name -> ordered operand signal names) and
        ``out_widths`` (op name -> result signal width).  Higher layers
        (e.g. :class:`repro.sim.Netlist`) consume this without the IR
        layer depending on them.
        """
        return {
            "inputs": dict(self._inputs),
            "constants": dict(self._constants),
            "wiring": dict(self._wiring),
            "out_widths": dict(self._out_widths),
        }
