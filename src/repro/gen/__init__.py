"""Workload generation: TGFF-style random graphs and named DSP kernels."""

from .tgff import TgffConfig, random_graphs, random_sequencing_graph
from .workloads import (
    complex_multiply,
    complex_multiply_netlist,
    conv3x3,
    conv3x3_netlist,
    dct4,
    dct4_netlist,
    fir_filter,
    fir_filter_netlist,
    iir_biquad,
    iir_biquad_netlist,
    lattice_filter,
    lattice_filter_netlist,
    motivational_example,
    motivational_example_netlist,
    rgb_to_ycbcr,
    rgb_to_ycbcr_netlist,
)

__all__ = [
    "TgffConfig",
    "complex_multiply",
    "complex_multiply_netlist",
    "conv3x3",
    "conv3x3_netlist",
    "dct4",
    "dct4_netlist",
    "fir_filter",
    "fir_filter_netlist",
    "iir_biquad",
    "iir_biquad_netlist",
    "lattice_filter",
    "lattice_filter_netlist",
    "motivational_example",
    "motivational_example_netlist",
    "random_graphs",
    "random_sequencing_graph",
    "rgb_to_ycbcr",
    "rgb_to_ycbcr_netlist",
]
