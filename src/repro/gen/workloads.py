"""Named multiple-wordlength DSP workloads.

The paper motivates multiple-wordlength synthesis with custom fixed-point
DSP designs whose per-signal wordlengths come from an output-error
specification tool (Synoptix, refs. [3, 6]).  These kernels provide
realistic such graphs for the examples, tests, and extra benchmarks:

* :func:`motivational_example` -- a graph in the spirit of the paper's
  Fig. 1 (its exact labels are unreadable in the scanned source): mixed
  wordlength multiplies and adds where latency slack lets small products
  share a larger, slower multiplier.
* :func:`fir_filter` -- direct-form FIR with per-tap coefficient widths.
* :func:`iir_biquad` -- one direct-form-I biquad section.
* :func:`rgb_to_ycbcr` -- 3x3 constant matrix colour-space conversion
  (the SONIC platform's video domain, ref. [12]).
* :func:`dct4` -- 4-point DCT butterfly.
* :func:`lattice_filter` -- normalised lattice stages.
* :func:`conv3x3` -- 3x3 image convolution (one output pixel).
* :func:`complex_multiply` -- one complex multiply (FFT butterfly core).

Every kernel is available in two forms: ``<kernel>()`` returns the
sequencing graph the allocators consume, and ``<kernel>_netlist()``
returns the full :class:`~repro.sim.netlist.Netlist` (operand wiring and
signal widths) that the simulator and RTL back-end need.  All
wordlengths are representative hand-quantised values; each builder
documents its choices.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.builder import DFGBuilder
from ..ir.seqgraph import SequencingGraph
from ..sim.netlist import Netlist

__all__ = [
    "motivational_example",
    "motivational_example_netlist",
    "fir_filter",
    "fir_filter_netlist",
    "iir_biquad",
    "iir_biquad_netlist",
    "rgb_to_ycbcr",
    "rgb_to_ycbcr_netlist",
    "dct4",
    "dct4_netlist",
    "lattice_filter",
    "lattice_filter_netlist",
    "conv3x3",
    "conv3x3_netlist",
    "complex_multiply",
    "complex_multiply_netlist",
]


# ----------------------------------------------------------------------
# motivational example (paper Fig. 1 spirit)
# ----------------------------------------------------------------------

def _motivational_builder() -> DFGBuilder:
    """Two narrow multiplies (8x8, 10x6), one wide (16x12), two adds.

    With latency slack, the narrow products can execute on the wide
    multiplier (latency 4 at SONIC timing) instead of dedicated 2-cycle
    units, saving multiplier area at the cost of schedule length.
    """
    b = DFGBuilder()
    x1, c1 = b.input("x1", 8), b.constant("c1", 8)
    x2, c2 = b.input("x2", 10), b.constant("c2", 6)
    x3, c3 = b.input("x3", 16), b.constant("c3", 12)
    m1 = b.mul(x1, c1, name="m1", out_width=16)
    m2 = b.mul(x2, c2, name="m2", out_width=16)
    m3 = b.mul(x3, c3, name="m3", out_width=20)
    a1 = b.add(m1, m2, name="a1", out_width=20)
    b.add(a1, m3, name="a2", out_width=21)
    return b


def motivational_example() -> SequencingGraph:
    """Sequencing graph of the Fig. 1-style motivational kernel."""
    return _motivational_builder().graph()


def motivational_example_netlist() -> Netlist:
    """Netlist (with wiring) of the motivational kernel."""
    return Netlist.from_builder(_motivational_builder())


# ----------------------------------------------------------------------
# FIR filter
# ----------------------------------------------------------------------

def _fir_builder(
    taps: int = 4,
    data_width: int = 12,
    coeff_widths: Optional[Sequence[int]] = None,
) -> DFGBuilder:
    if taps < 1:
        raise ValueError("taps must be >= 1")
    if coeff_widths is None:
        coeff_widths = [max(4, 12 - 2 * abs(i - taps // 2)) for i in range(taps)]
    if len(coeff_widths) != taps:
        raise ValueError("need one coefficient width per tap")

    b = DFGBuilder()
    acc = None
    out_width = data_width + 4
    for i, c_width in enumerate(coeff_widths):
        x = b.input(f"x{i}", data_width)
        c = b.constant(f"c{i}", c_width)
        product = b.mul(x, c, name=f"mul{i}", out_width=out_width)
        if acc is None:
            acc = product
        else:
            acc = b.add(acc, product, name=f"acc{i}", out_width=out_width + 1)
    return b


def fir_filter(
    taps: int = 4,
    data_width: int = 12,
    coeff_widths: Optional[Sequence[int]] = None,
) -> SequencingGraph:
    """Direct-form FIR: ``y = sum_i c_i * x[n-i]`` with an adder chain.

    Per-tap coefficient widths default to a tapering profile (outer taps
    need fewer bits), the classic source of multiple wordlengths in
    filter design.  Products are truncated to ``data_width + 4`` bits as
    an error-specification front-end would.
    """
    return _fir_builder(taps, data_width, coeff_widths).graph()


def fir_filter_netlist(
    taps: int = 4,
    data_width: int = 12,
    coeff_widths: Optional[Sequence[int]] = None,
) -> Netlist:
    """Netlist form of :func:`fir_filter`."""
    return Netlist.from_builder(_fir_builder(taps, data_width, coeff_widths))


# ----------------------------------------------------------------------
# IIR biquad
# ----------------------------------------------------------------------

def _biquad_builder(
    data_width: int = 12,
    feedforward_widths: Sequence[int] = (10, 8, 10),
    feedback_widths: Sequence[int] = (9, 7),
) -> DFGBuilder:
    if len(feedforward_widths) != 3 or len(feedback_widths) != 2:
        raise ValueError("biquad needs 3 feedforward and 2 feedback widths")
    b = DFGBuilder()
    out_width = data_width + 4
    x0 = b.input("x0", data_width)
    x1 = b.input("x1", data_width)
    x2 = b.input("x2", data_width)
    y1 = b.input("y1", data_width)
    y2 = b.input("y2", data_width)

    b0, b1, b2 = (b.constant(f"b{i}", w) for i, w in enumerate(feedforward_widths))
    a1, a2 = (b.constant(f"a{i+1}", w) for i, w in enumerate(feedback_widths))

    ff0 = b.mul(x0, b0, name="ff0", out_width=out_width)
    ff1 = b.mul(x1, b1, name="ff1", out_width=out_width)
    ff2 = b.mul(x2, b2, name="ff2", out_width=out_width)
    fb1 = b.mul(y1, a1, name="fb1", out_width=out_width)
    fb2 = b.mul(y2, a2, name="fb2", out_width=out_width)

    s1 = b.add(ff0, ff1, name="s1", out_width=out_width + 1)
    s2 = b.add(s1, ff2, name="s2", out_width=out_width + 1)
    s3 = b.add(fb1, fb2, name="s3", out_width=out_width + 1)
    b.sub(s2, s3, name="out", out_width=out_width + 1)
    return b


def iir_biquad(
    data_width: int = 12,
    feedforward_widths: Sequence[int] = (10, 8, 10),
    feedback_widths: Sequence[int] = (9, 7),
) -> SequencingGraph:
    """Direct-form-I biquad: 5 multiplies, 4 adds, mixed widths."""
    return _biquad_builder(data_width, feedforward_widths, feedback_widths).graph()


def iir_biquad_netlist(
    data_width: int = 12,
    feedforward_widths: Sequence[int] = (10, 8, 10),
    feedback_widths: Sequence[int] = (9, 7),
) -> Netlist:
    """Netlist form of :func:`iir_biquad`."""
    return Netlist.from_builder(
        _biquad_builder(data_width, feedforward_widths, feedback_widths)
    )


# ----------------------------------------------------------------------
# RGB -> YCbCr
# ----------------------------------------------------------------------

def _ycbcr_builder(channel_width: int = 8) -> DFGBuilder:
    coeff_widths = [
        (8, 9, 6),  # Y  row
        (6, 7, 8),  # Cb row
        (8, 7, 5),  # Cr row
    ]
    b = DFGBuilder()
    channels = [b.input(c, channel_width) for c in ("r", "g", "bch")]
    for row, widths in enumerate(coeff_widths):
        partial = None
        for col, width in enumerate(widths):
            coeff = b.constant(f"k{row}{col}", width)
            product = b.mul(
                channels[col], coeff,
                name=f"m{row}{col}", out_width=channel_width + 6,
            )
            if partial is None:
                partial = product
            else:
                partial = b.add(
                    partial, product,
                    name=f"s{row}{col}", out_width=channel_width + 7,
                )
    return b


def rgb_to_ycbcr(channel_width: int = 8) -> SequencingGraph:
    """3x3 constant-matrix colour conversion: 9 multiplies, 6 adds.

    Coefficient widths follow the precision each ITU-R BT.601 coefficient
    needs (luma weights wider than chroma).
    """
    return _ycbcr_builder(channel_width).graph()


def rgb_to_ycbcr_netlist(channel_width: int = 8) -> Netlist:
    """Netlist form of :func:`rgb_to_ycbcr`."""
    return Netlist.from_builder(_ycbcr_builder(channel_width))


# ----------------------------------------------------------------------
# 4-point DCT
# ----------------------------------------------------------------------

def _dct4_builder(data_width: int = 10) -> DFGBuilder:
    b = DFGBuilder()
    x = [b.input(f"x{i}", data_width) for i in range(4)]
    s0 = b.add(x[0], x[3], name="bf_s0")
    s1 = b.add(x[1], x[2], name="bf_s1")
    d0 = b.sub(x[0], x[3], name="bf_d0")
    d1 = b.sub(x[1], x[2], name="bf_d1")

    c2 = b.constant("c2", 9)
    c1 = b.constant("c1", 12)
    c3 = b.constant("c3", 7)
    b.add(s0, s1, name="y0")
    b.mul(b.sub(s0, s1, name="bf_d2"), c2, name="y2", out_width=data_width + 6)
    b.mul(d0, c1, name="y1a", out_width=data_width + 8)
    b.mul(d1, c3, name="y3a", out_width=data_width + 5)
    return b


def dct4(data_width: int = 10) -> SequencingGraph:
    """4-point DCT: butterfly adds/subs then coefficient multiplies."""
    return _dct4_builder(data_width).graph()


def dct4_netlist(data_width: int = 10) -> Netlist:
    """Netlist form of :func:`dct4`."""
    return Netlist.from_builder(_dct4_builder(data_width))


# ----------------------------------------------------------------------
# lattice filter
# ----------------------------------------------------------------------

def _lattice_builder(stages: int = 2, data_width: int = 12) -> DFGBuilder:
    if stages < 1:
        raise ValueError("stages must be >= 1")
    b = DFGBuilder()
    forward = b.input("f_in", data_width)
    backward = b.input("b_in", data_width)
    for stage in range(stages):
        k_width = max(4, 10 - 2 * stage)
        k = b.constant(f"k{stage}", k_width)
        mf = b.mul(backward, k, name=f"mf{stage}", out_width=data_width + 3)
        mb = b.mul(forward, k, name=f"mb{stage}", out_width=data_width + 3)
        forward = b.sub(forward, mf, name=f"f{stage}", out_width=data_width + 4)
        backward = b.add(backward, mb, name=f"b{stage}", out_width=data_width + 4)
    return b


def lattice_filter(stages: int = 2, data_width: int = 12) -> SequencingGraph:
    """Normalised lattice filter: per stage 2 multiplies and 2 adds.

    Reflection-coefficient widths shrink with stage index, giving the
    stage-dependent wordlengths typical of lattice realisations.
    """
    return _lattice_builder(stages, data_width).graph()


def lattice_filter_netlist(stages: int = 2, data_width: int = 12) -> Netlist:
    """Netlist form of :func:`lattice_filter`."""
    return Netlist.from_builder(_lattice_builder(stages, data_width))


# ----------------------------------------------------------------------
# 3x3 convolution
# ----------------------------------------------------------------------

def _conv3x3_builder(pixel_width: int = 8) -> DFGBuilder:
    """One output pixel of a 3x3 convolution with a mixed-width kernel.

    Centre coefficient needs the most precision; corners the least --
    the profile of a Gaussian-like blur kernel.
    """
    kernel_widths = [
        [4, 6, 4],
        [6, 8, 6],
        [4, 6, 4],
    ]
    b = DFGBuilder()
    acc = None
    out_width = pixel_width + 8
    for r in range(3):
        for c in range(3):
            pixel = b.input(f"p{r}{c}", pixel_width)
            coeff = b.constant(f"k{r}{c}", kernel_widths[r][c])
            product = b.mul(
                pixel, coeff, name=f"m{r}{c}", out_width=out_width
            )
            if acc is None:
                acc = product
            else:
                acc = b.add(acc, product, name=f"a{r}{c}", out_width=out_width)
    return b


def conv3x3(pixel_width: int = 8) -> SequencingGraph:
    """3x3 convolution (one output pixel): 9 multiplies, 8 adds."""
    return _conv3x3_builder(pixel_width).graph()


def conv3x3_netlist(pixel_width: int = 8) -> Netlist:
    """Netlist form of :func:`conv3x3`."""
    return Netlist.from_builder(_conv3x3_builder(pixel_width))


# ----------------------------------------------------------------------
# complex multiply
# ----------------------------------------------------------------------

def _complex_multiply_builder(
    data_width: int = 10, twiddle_width: int = 8
) -> DFGBuilder:
    """(ar + j*ai) * (wr + j*wi): 4 multiplies, 1 sub, 1 add.

    The core of an FFT butterfly; twiddle factors are quantised more
    coarsely than data, giving asymmetric multiply wordlengths.
    """
    b = DFGBuilder()
    ar, ai = b.input("ar", data_width), b.input("ai", data_width)
    wr, wi = b.constant("wr", twiddle_width), b.constant("wi", twiddle_width)
    out_width = data_width + twiddle_width
    rr = b.mul(ar, wr, name="rr", out_width=out_width)
    ii = b.mul(ai, wi, name="ii", out_width=out_width)
    ri = b.mul(ar, wi, name="ri", out_width=out_width)
    ir = b.mul(ai, wr, name="ir", out_width=out_width)
    b.sub(rr, ii, name="re", out_width=out_width + 1)
    b.add(ri, ir, name="im", out_width=out_width + 1)
    return b


def complex_multiply(
    data_width: int = 10, twiddle_width: int = 8
) -> SequencingGraph:
    """Complex multiply (FFT butterfly core): 4 multiplies, 2 add/subs."""
    return _complex_multiply_builder(data_width, twiddle_width).graph()


def complex_multiply_netlist(
    data_width: int = 10, twiddle_width: int = 8
) -> Netlist:
    """Netlist form of :func:`complex_multiply`."""
    return Netlist.from_builder(
        _complex_multiply_builder(data_width, twiddle_width)
    )
