"""TGFF-style random sequencing graphs (paper section 3, ref. [8]).

The evaluation generates "200 random sequencing graphs for each problem
size |O| between 1 and 24 using an adaptation of the TGFF algorithm"
(Dick, Rhodes & Wolf, *Task Graphs For Free*, CODES 1998).  TGFF grows a
DAG by alternating *fan-out* steps (attach a new node below an existing
one with spare out-degree) and *fan-in* steps (attach a new node fed by
several existing nodes), which produces the series-parallel-ish shapes of
DSP data-flow graphs.

The paper does not publish the adaptation's parameters, so they are
explicit and documented here: operation kinds are multipliers with
probability ``p_mul`` (default 0.5) and adders otherwise; operand
wordlengths are uniform integers on ``[width_low, width_high]``
(default 4..24 bits, the regime of the paper's fixed-point examples).
All draws come from a private ``random.Random(seed)``, so a given
``(num_ops, seed)`` pair always yields the same graph.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..ir.ops import Operation
from ..ir.seqgraph import SequencingGraph

__all__ = ["TgffConfig", "random_sequencing_graph", "random_graphs"]


@dataclass(frozen=True)
class TgffConfig:
    """Parameters of the TGFF adaptation (see module docstring)."""

    p_mul: float = 0.5
    width_low: int = 4
    width_high: int = 24
    max_in_degree: int = 3
    max_out_degree: int = 3
    p_fan_out: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_mul <= 1.0:
            raise ValueError("p_mul must be within [0, 1]")
        if not 1 <= self.width_low <= self.width_high:
            raise ValueError("need 1 <= width_low <= width_high")
        if self.max_in_degree < 1 or self.max_out_degree < 1:
            raise ValueError("degrees must be >= 1")
        if not 0.0 <= self.p_fan_out <= 1.0:
            raise ValueError("p_fan_out must be within [0, 1]")


def _random_operation(
    index: int, rng: random.Random, config: TgffConfig
) -> Operation:
    kind = "mul" if rng.random() < config.p_mul else "add"
    widths = (
        rng.randint(config.width_low, config.width_high),
        rng.randint(config.width_low, config.width_high),
    )
    return Operation(f"o{index}", kind, widths)


def random_sequencing_graph(
    num_ops: int,
    seed: int,
    config: Optional[TgffConfig] = None,
) -> SequencingGraph:
    """Generate one random multiple-wordlength sequencing graph.

    Args:
        num_ops: problem size |O| (>= 1).
        seed: RNG seed; graphs are fully reproducible.
        config: generator parameters (defaults follow the module doc).
    """
    if num_ops < 1:
        raise ValueError("num_ops must be >= 1")
    cfg = config or TgffConfig()
    rng = random.Random(seed)
    graph = SequencingGraph()
    graph.add_operation(_random_operation(0, rng, cfg))
    out_degree = {"o0": 0}

    while len(graph) < num_ops:
        index = len(graph)
        op = _random_operation(index, rng, cfg)
        graph.add_operation(op)
        out_degree[op.name] = 0
        existing = [n for n in graph.names if n != op.name]
        fan_out = rng.random() < cfg.p_fan_out
        if fan_out:
            # Attach the new node below one parent with spare out-degree.
            parents_pool = [
                n for n in existing if out_degree[n] < cfg.max_out_degree
            ]
            parents = [rng.choice(parents_pool)] if parents_pool else []
        else:
            # Fan-in: join several existing results.
            parents_pool = [
                n for n in existing if out_degree[n] < cfg.max_out_degree
            ]
            rng.shuffle(parents_pool)
            count = rng.randint(1, cfg.max_in_degree)
            parents = parents_pool[:count]
        for parent in parents:
            graph.add_dependency(parent, op.name)
            out_degree[parent] += 1
    return graph


def random_graphs(
    num_ops: int,
    samples: int,
    base_seed: int = 2001,
    config: Optional[TgffConfig] = None,
) -> List[SequencingGraph]:
    """A reproducible batch of graphs: seeds ``base_seed*10000 + i``."""
    return [
        random_sequencing_graph(num_ops, base_seed * 10_000 + i, config)
        for i in range(samples)
    ]
