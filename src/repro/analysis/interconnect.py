"""Interconnect cost estimation: multiplexers and registers.

The paper's area model (like ref. [5]'s) counts functional units only.
Resource sharing is not free in real datapaths: every shared unit port
needs a multiplexer over its operand sources, and every value that
crosses a cycle boundary needs register storage.  This module estimates
both so the examples and benches can ask the classic follow-up question:
*does the heuristic's sharing still pay off once interconnect is
charged?* (ref. [4] raises exactly this concern for its own binding).

Models:

* **multiplexers** -- for each unit port, the number of *distinct*
  source signals routed to it; a ``k``-input mux of width ``w`` costs
  ``(k - 1) * w * mux_unit`` (a tree of 2-input muxes);
* **registers** -- two selectable models:
  - ``per-op``: one register per operation result (what the generated
    RTL of :mod:`repro.rtl` instantiates), and
  - ``left-edge``: the classic left-edge register allocation -- values
    whose lifetimes ``[birth, death)`` do not overlap share a register;
    a register costs its widest occupant times ``reg_unit``.

Lifetimes: a value is born when its producer finishes and dies at its
last consumer's start (kernel outputs live until the makespan).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.solution import Datapath
from ..resources.area import AreaModel
from ..sim.netlist import Netlist

__all__ = [
    "ValueLifetime",
    "InterconnectReport",
    "value_lifetimes",
    "left_edge_registers",
    "estimate_interconnect",
]


@dataclass(frozen=True)
class ValueLifetime:
    """Lifetime of one operation's result value."""

    name: str
    birth: int
    death: int
    width: int


@dataclass(frozen=True)
class InterconnectReport:
    """Estimated datapath cost including interconnect."""

    unit_area: float
    mux_area: float
    register_area: float
    register_count: int
    mux_inputs: Dict[Tuple[int, int], int]  # (unit, port) -> distinct sources

    @property
    def total_area(self) -> float:
        return self.unit_area + self.mux_area + self.register_area


def value_lifetimes(netlist: Netlist, datapath: Datapath) -> List[ValueLifetime]:
    """Birth/death of every operation result under the given schedule."""
    graph = netlist.graph
    makespan = datapath.makespan
    lifetimes: List[ValueLifetime] = []
    sinks = set(netlist.output_ops())
    for op_name in graph.names:
        birth = datapath.schedule[op_name] + datapath.bound_latencies[op_name]
        consumer_starts = [
            datapath.schedule[c] for c in netlist.consumers_of(op_name)
        ]
        death = max(consumer_starts, default=birth)
        if op_name in sinks:
            death = max(death, makespan)
        lifetimes.append(
            ValueLifetime(
                name=op_name,
                birth=birth,
                death=max(death, birth),
                width=netlist.out_widths[op_name],
            )
        )
    return sorted(lifetimes, key=lambda lt: (lt.birth, lt.name))


def left_edge_registers(
    lifetimes: List[ValueLifetime],
) -> List[List[ValueLifetime]]:
    """Classic left-edge register allocation.

    Values sorted by birth are packed greedily into the first register
    whose current occupant has died; the result is a minimum-count
    partition of an interval system (interval graphs are perfect).
    Zero-length lifetimes still occupy their birth instant, so two values
    born at the same step never share.
    """
    registers: List[Tuple[int, List[ValueLifetime]]] = []  # (busy-until, vals)
    for lifetime in sorted(lifetimes, key=lambda lt: (lt.birth, lt.name)):
        # A zero-length value [t, t) still needs its register at t.
        effective_death = max(lifetime.death, lifetime.birth + 1)
        placed = False
        for index, (busy_until, values) in enumerate(registers):
            if busy_until <= lifetime.birth:
                values.append(lifetime)
                registers[index] = (effective_death, values)
                placed = True
                break
        if not placed:
            registers.append((effective_death, [lifetime]))
    return [values for _, values in registers]


def _port_sources(
    netlist: Netlist, datapath: Datapath
) -> Dict[Tuple[int, int], set]:
    """Distinct source signals per (unit, operand port)."""
    graph = netlist.graph
    sources: Dict[Tuple[int, int], set] = {}
    for unit, clique in enumerate(datapath.binding.cliques):
        for op_name in clique.ops:
            op = graph.operation(op_name)
            operands = list(netlist.wiring[op_name])
            if clique.resource.kind == "mul":
                # The RTL routes the wider operand to the wider port.
                if op.operand_widths[0] < op.operand_widths[1]:
                    operands.reverse()
            for port, signal in enumerate(operands):
                sources.setdefault((unit, port), set()).add(signal)
    return sources


def estimate_interconnect(
    netlist: Netlist,
    datapath: Datapath,
    area_model: AreaModel,
    mux_unit: float = 1.0,
    reg_unit: float = 1.0,
    register_model: str = "left-edge",
) -> InterconnectReport:
    """Estimate unit + mux + register area of an allocated datapath.

    Args:
        mux_unit: area of one 2-input, 1-bit multiplexer slice.
        reg_unit: area of one register bit.
        register_model: ``"left-edge"`` (shared registers) or
            ``"per-op"`` (one register per result, as in the RTL export).
    """
    unit_area = sum(
        area_model.area(clique.resource) for clique in datapath.binding.cliques
    )

    port_widths: Dict[Tuple[int, int], int] = {}
    for unit, clique in enumerate(datapath.binding.cliques):
        widths = clique.resource.widths
        if clique.resource.kind == "mul":
            port_widths[(unit, 0)] = widths[0]
            port_widths[(unit, 1)] = widths[1]
        else:
            port_widths[(unit, 0)] = widths[0]
            port_widths[(unit, 1)] = widths[0]

    mux_inputs: Dict[Tuple[int, int], int] = {}
    mux_area = 0.0
    for key, signals in _port_sources(netlist, datapath).items():
        mux_inputs[key] = len(signals)
        if len(signals) > 1:
            mux_area += (len(signals) - 1) * port_widths[key] * mux_unit

    lifetimes = value_lifetimes(netlist, datapath)
    if register_model == "per-op":
        register_count = len(lifetimes)
        register_area = reg_unit * sum(lt.width for lt in lifetimes)
    elif register_model == "left-edge":
        registers = left_edge_registers(lifetimes)
        register_count = len(registers)
        register_area = reg_unit * sum(
            max(lt.width for lt in values) for values in registers
        )
    else:
        raise ValueError(f"unknown register model {register_model!r}")

    return InterconnectReport(
        unit_area=unit_area,
        mux_area=mux_area,
        register_area=register_area,
        register_count=register_count,
        mux_inputs=dict(sorted(mux_inputs.items())),
    )
