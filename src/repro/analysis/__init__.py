"""Solution validation, quality metrics, and report formatting."""

from .interconnect import (
    InterconnectReport,
    ValueLifetime,
    estimate_interconnect,
    left_edge_registers,
    value_lifetimes,
)
from .metrics import (
    area_penalty,
    mean,
    percent_increase,
    resource_usage,
    sharing_factor,
    unit_utilisation,
)
from .reporting import format_seconds, format_table, format_trace
from .validate import ValidationError, is_valid, validate_datapath

__all__ = [
    "InterconnectReport",
    "ValidationError",
    "ValueLifetime",
    "area_penalty",
    "estimate_interconnect",
    "format_seconds",
    "format_table",
    "format_trace",
    "is_valid",
    "left_edge_registers",
    "mean",
    "percent_increase",
    "resource_usage",
    "sharing_factor",
    "unit_utilisation",
    "validate_datapath",
    "value_lifetimes",
]
