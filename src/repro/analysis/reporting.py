"""Plain-text table rendering for experiment output.

The benchmark harness regenerates the paper's figures as text tables
(rows/series identical to the published plots); this module renders them
consistently for the CLI, the benchmarks, and EXPERIMENTS.md.  It also
renders solver convergence traces (``repro trace`` and ``allocate
--trace``).
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["format_table", "format_seconds", "format_trace"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table."""
    columns = len(headers)
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} has {len(row)} cells, expected {columns}")
        cells.append([_render(cell) for cell in row])
    widths = [max(len(r[i]) for r in cells) for i in range(columns)]

    def line(row: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(cells[0]))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in cells[1:])
    return "\n".join(parts)


def _render(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_seconds(seconds: float) -> str:
    """``mm:ss.cc`` rendering matching the paper's Table 2."""
    minutes = int(seconds // 60)
    rest = seconds - 60 * minutes
    return f"{minutes}:{rest:05.2f}"


def format_trace(events: Sequence, title: str = "") -> str:
    """Render a solver iteration trace as a convergence table.

    ``events`` is a sequence of :class:`~repro.core.solution.TraceEvent`
    (one per DPAlloc outer-loop iteration).  Each row shows the move
    that ended the iteration, what it targeted, and the makespan / area
    / scheduling-set size the iteration achieved -- the quantities whose
    convergence the refine-and-reschedule loop is steering.
    """
    if not events:
        return (title + "\n" if title else "") + "(no trace events)"
    # Perf telemetry columns appear only when the producing run recorded
    # them (TraceEvent.pass_ms / cache_* are None otherwise, e.g. for
    # traces deserialised from canonical JSON).
    with_perf = any(getattr(e, "pass_ms", None) is not None for e in events)
    rows = []
    for event in events:
        row = [
            event.iteration,
            event.move,
            event.target if event.target is not None else "-",
            event.pool if event.pool is not None else "-",
            event.makespan,
            event.area,
            event.scheduling_set_size,
        ]
        if with_perf:
            pass_ms = getattr(event, "pass_ms", None)
            row.append(f"{sum(pass_ms.values()):.1f}" if pass_ms else "-")
            hits = getattr(event, "cache_hits", None)
            if hits is None:
                row.append("-")
            else:
                row.append(
                    f"{hits}/{event.cache_misses}/{event.cache_evicted}"
                )
        rows.append(row)
    headers = ["iter", "move", "target", "pool", "makespan", "area", "|S|"]
    if with_perf:
        headers += ["ms", "cache h/m/e"]
    return format_table(
        headers,
        rows,
        title=title
        or f"solver trace: {len(events)} iterations, "
           f"final makespan {events[-1].makespan}, area {events[-1].area:g}",
    )
