"""Solution-quality metrics used throughout the evaluation.

The paper reports relative areas: Fig. 3 plots the *area penalty* of the
two-stage approach [4] over the heuristic, and Fig. 4 the *area premium*
of the heuristic over the optimal ILP [5].  Both are percentage
increases; helpers here centralise the convention so every experiment
reports identically.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..core.solution import Datapath

__all__ = [
    "percent_increase",
    "area_penalty",
    "mean",
    "resource_usage",
    "unit_utilisation",
    "sharing_factor",
]


def percent_increase(value: float, baseline: float) -> float:
    """``(value - baseline) / baseline`` as a percentage.

    Zero-area baselines only arise for empty graphs; defined as 0%.
    """
    if baseline == 0:
        return 0.0
    return 100.0 * (value - baseline) / baseline


def area_penalty(candidate: Datapath, reference: Datapath) -> float:
    """Percentage extra area of ``candidate`` over ``reference``."""
    return percent_increase(candidate.area, reference.area)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(values) / len(values) if values else 0.0


def resource_usage(dp: Datapath) -> Dict[str, int]:
    """Number of physical units per resource kind."""
    counts: Dict[str, int] = {}
    for clique in dp.binding.cliques:
        counts[clique.resource.kind] = counts.get(clique.resource.kind, 0) + 1
    return dict(sorted(counts.items()))


def unit_utilisation(dp: Datapath) -> float:
    """Busy cycles divided by available unit-cycles over the makespan."""
    if not dp.binding.cliques or dp.makespan == 0:
        return 0.0
    busy = sum(dp.bound_latencies[n] for n in dp.schedule)
    return busy / (len(dp.binding.cliques) * dp.makespan)


def sharing_factor(dp: Datapath) -> float:
    """Average number of operations per physical unit."""
    if not dp.binding.cliques:
        return 0.0
    return len(dp.schedule) / len(dp.binding.cliques)
