"""Independent validation of datapath solutions.

Every solution produced in this repository -- by DPAlloc or any baseline
-- is checked against the *problem definition only* (never against the
algorithms' internal state):

1. every operation is scheduled at a non-negative integer step;
2. data dependencies are respected under the **bound-resource**
   latencies (what the hardware actually does);
3. every operation's unit covers it (kind + wordlengths);
4. operations sharing a unit occupy it at disjoint times;
5. the achieved makespan meets the latency constraint and matches the
   recorded value;
6. the clique partition covers every operation exactly once;
7. optional per-kind resource-count constraints hold;
8. the recorded area equals the summed unit area.
"""

from __future__ import annotations

from typing import List

from ..core.problem import Problem
from ..core.solution import Datapath

__all__ = ["ValidationError", "validate_datapath", "is_valid"]


class ValidationError(AssertionError):
    """A datapath violates the problem definition."""


def validate_datapath(problem: Problem, dp: Datapath) -> None:
    """Raise :class:`ValidationError` listing every violated property."""
    errors: List[str] = []
    graph = problem.graph
    names = set(graph.names)

    # 1. complete integral schedule
    scheduled = set(dp.schedule)
    if scheduled != names:
        errors.append(
            f"schedule covers {sorted(scheduled ^ names)} incorrectly"
        )
    for name, start in dp.schedule.items():
        if not isinstance(start, int) or start < 0:
            errors.append(f"op {name!r} has invalid start {start!r}")

    # 6. exact clique cover
    bound_ops: List[str] = [n for c in dp.binding.cliques for n in c.ops]
    if sorted(bound_ops) != sorted(names):
        errors.append("clique partition does not cover each op exactly once")

    latency = problem.latency_model
    bound_latency = {}
    for clique in dp.binding.cliques:
        cycles = latency.latency(clique.resource)
        for name in clique.ops:
            bound_latency[name] = cycles

    # 2. precedence under bound latencies
    for producer, consumer in graph.edges():
        if producer in dp.schedule and consumer in dp.schedule:
            available = dp.schedule[producer] + bound_latency.get(producer, 0)
            if dp.schedule[consumer] < available:
                errors.append(
                    f"dependency {producer}->{consumer} violated: result at "
                    f"{available}, consumer starts {dp.schedule[consumer]}"
                )

    # 3. coverage; 4. per-unit exclusivity
    for index, clique in enumerate(dp.binding.cliques):
        for name in clique.ops:
            op = graph.operation(name)
            if not clique.resource.covers(op):
                errors.append(
                    f"unit {index} ({clique.resource}) cannot execute {op}"
                )
        intervals = sorted(
            (dp.schedule[n], dp.schedule[n] + bound_latency[n], n)
            for n in clique.ops
            if n in dp.schedule
        )
        for (s1, f1, n1), (s2, f2, n2) in zip(intervals, intervals[1:]):
            if f1 > s2:
                errors.append(
                    f"unit {index}: ops {n1} [{s1},{f1}) and {n2} [{s2},{f2}) overlap"
                )

    # 5. makespan and latency constraint
    if names and not errors:
        makespan = max(dp.schedule[n] + bound_latency[n] for n in names)
        if makespan != dp.makespan:
            errors.append(
                f"recorded makespan {dp.makespan} != actual {makespan}"
            )
        if makespan > problem.latency_constraint:
            errors.append(
                f"latency constraint {problem.latency_constraint} violated "
                f"(makespan {makespan})"
            )

    # 7. resource-count constraints
    if problem.resource_constraints:
        counts = {}
        for clique in dp.binding.cliques:
            counts[clique.resource.kind] = counts.get(clique.resource.kind, 0) + 1
        for kind, limit in problem.resource_constraints.items():
            if counts.get(kind, 0) > limit:
                errors.append(
                    f"{counts[kind]} units of kind {kind!r} exceed N={limit}"
                )

    # 8. area consistency
    actual_area = dp.binding.area(problem.area_model)
    if abs(actual_area - dp.area) > 1e-9 * max(1.0, abs(actual_area)):
        errors.append(f"recorded area {dp.area} != actual {actual_area}")

    if errors:
        raise ValidationError("; ".join(errors))


def is_valid(problem: Problem, dp: Datapath) -> bool:
    """Boolean wrapper around :func:`validate_datapath`."""
    try:
        validate_datapath(problem, dp)
    except ValidationError:
        return False
    return True
