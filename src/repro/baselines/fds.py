"""Force-directed-style baseline: classical slack exploitation, wordlength-blind.

The paper's two comparison points (refs. [4, 5]) bracket the problem,
but a referee would also ask how the classical *time-constrained*
scheduling answer fares: force-directed scheduling (Paulin & Knight,
1989) spreads operations inside their mobility windows to balance
per-type concurrency, exploiting latency slack **without** any
wordlength awareness.  This baseline completes the picture:

* **Stage 1** -- force-directed-style scheduling at dedicated (minimum)
  latencies: operations are fixed one at a time, each at the start step
  minimising the summed squared distribution graphs
  ``sum_k sum_s DG_k(s)^2`` (the concentration objective force-directed
  scheduling descends; minimising it balances the DGs exactly as the
  classic force formulation intends).  Windows are ASAP/ALAP w.r.t. the
  latency constraint and shrink as neighbours are fixed.
* **Stage 2** -- the same optimal no-latency-increase binding as the
  two-stage baseline (shared code,
  :func:`repro.baselines.two_stage.bind_no_latency_increase`).

Comparing DPAlloc against this baseline isolates the paper's actual
novelty: the win that remains comes from *wordlength-aware* sharing
(small ops on larger, slower units), not merely from using slack to
serialise.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.binding import Binding
from ..core.problem import InfeasibleError, Problem
from ..core.solution import Datapath
from .two_stage import TwoStageReport, bind_no_latency_increase

__all__ = ["allocate_fds", "force_directed_schedule"]


def _distribution_delta(
    window: Tuple[int, int],
    latency: int,
) -> Dict[int, float]:
    """Execution probability per step for a uniformly distributed start."""
    begin, end = window
    slots = end - begin + 1
    probability = 1.0 / slots
    density: Dict[int, float] = {}
    for start in range(begin, end + 1):
        for step in range(start, start + latency):
            density[step] = density.get(step, 0.0) + probability
    return density


def force_directed_schedule(
    problem: Problem,
    latencies: Optional[Dict[str, int]] = None,
) -> Dict[str, int]:
    """Time-constrained schedule balancing per-kind distribution graphs.

    Args:
        problem: supplies the graph and the latency constraint.
        latencies: per-op cycle counts (default: dedicated minimums).

    Raises:
        InfeasibleError: the constraint is below the critical path.
    """
    graph = problem.graph
    lam = problem.latency_constraint
    lat = dict(latencies or problem.min_latencies())
    if not graph.operations:
        return {}

    asap = graph.asap(lat)
    if graph.makespan(asap, lat) > lam:
        raise InfeasibleError(
            f"critical path exceeds lambda={lam} at dedicated latencies"
        )
    alap = graph.alap(lat, deadline=lam)
    window: Dict[str, Tuple[int, int]] = {
        name: (asap[name], alap[name]) for name in graph.names
    }
    kind_of = {op.name: op.resource_kind for op in graph.operations}

    # Distribution graphs per resource kind.
    dg: Dict[str, Dict[int, float]] = {}
    for name in graph.names:
        table = dg.setdefault(kind_of[name], {})
        for step, p in _distribution_delta(window[name], lat[name]).items():
            table[step] = table.get(step, 0.0) + p

    fixed: Dict[str, int] = {}
    pending = set(graph.names)

    def tighten(name: str, bounds: Tuple[int, int]) -> None:
        """Shrink a window, updating the kind's distribution graph."""
        old = window[name]
        new = (max(old[0], bounds[0]), min(old[1], bounds[1]))
        if new == old:
            return
        table = dg[kind_of[name]]
        for step, p in _distribution_delta(old, lat[name]).items():
            table[step] = table.get(step, 0.0) - p
        window[name] = new
        for step, p in _distribution_delta(new, lat[name]).items():
            table[step] = table.get(step, 0.0) + p

    while pending:
        # Most constrained first (smallest mobility), then by name.
        candidates = sorted(
            pending, key=lambda n: (window[n][1] - window[n][0], n)
        )
        name = candidates[0]
        kind = kind_of[name]
        table = dg[kind]
        current = _distribution_delta(window[name], lat[name])

        best: Optional[Tuple[float, int]] = None
        for start in range(window[name][0], window[name][1] + 1):
            # Cost of fixing here: sum of squared DG values after moving
            # this op's probability mass onto [start, start+lat).
            cost = 0.0
            # Sorted: the cost is a float accumulation, and float
            # addition is not associative -- summation order must not
            # depend on set hash order.
            steps = set(current) | set(
                range(start, start + lat[name])
            )
            for step in sorted(steps):
                value = table.get(step, 0.0) - current.get(step, 0.0)
                if start <= step < start + lat[name]:
                    value += 1.0
                cost += value * value
            if best is None or (cost, start) < best:
                best = (cost, start)

        assert best is not None
        start = best[1]
        tighten(name, (start, start))
        fixed[name] = start
        pending.discard(name)

        # Propagate precedence bounds to neighbours.
        for successor in graph.successors(name):
            tighten(successor, (start + lat[name], lam))
        for predecessor in graph.predecessors(name):
            tighten(predecessor, (0, start - lat[predecessor]))

    return fixed


def allocate_fds(
    problem: Problem,
    dp_limit: int = 13,
    node_budget: int = 200_000,
) -> Tuple[Datapath, TwoStageReport]:
    """Force-directed scheduling + optimal no-latency-increase binding.

    Raises:
        InfeasibleError: lambda is below the dedicated-latency critical
            path (like [4], the method cannot slow operations down).
    """
    graph = problem.graph
    if not graph.operations:
        return (
            Datapath(
                schedule={}, binding=Binding(()), upper_bounds={},
                bound_latencies={}, makespan=0, area=0.0, method="fds",
            ),
            TwoStageReport(True, 0, 0),
        )

    min_lat = problem.min_latencies()
    schedule = force_directed_schedule(problem)
    binding, report = bind_no_latency_increase(
        problem, schedule, dp_limit, node_budget
    )
    bound_latencies = binding.bound_latencies_from(
        {c.resource: problem.latency_model.latency(c.resource)
         for c in binding.cliques}
    )
    datapath = Datapath(
        schedule=dict(schedule),
        binding=binding,
        upper_bounds=dict(min_lat),
        bound_latencies=bound_latencies,
        makespan=max(schedule[n] + bound_latencies[n] for n in schedule),
        area=binding.area(problem.area_model),
        method="fds",
    )
    return datapath, report
