"""Descending-wordlength clique partitioning baseline (ref. [14]).

Kum & Sung (SiPS 1998) adapt standard clique partitioning on the
compatibility graph to multiple wordlengths by "sorting nodes in
descending order of wordlength" (paper section 1).  Reconstruction:

* schedule wordlength-blind (ASAP at dedicated latencies), as the method
  does not model wordlength-dependent latency;
* process operations in descending dedicated-resource area order; each
  op joins the first existing clique it is compatible with (time-disjoint
  with all members and a no-slower covering type exists), else it opens a
  new clique.  Seeding cliques with the widest operations first means
  narrower ops are absorbed into already-paid-for wide units.

Like ref. [4], the method cannot slow an operation down (the schedule
reserved only the dedicated latency), so cliques stay within one
(kind, latency) class; unlike [4]'s branch-and-bound stage it is purely
constructive, making it the weaker but much faster baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.binding import Binding, BoundClique
from ..core.problem import InfeasibleError, Problem
from ..core.solution import Datapath
from ..resources.extraction import dedicated_resource
from ..resources.types import ResourceType

__all__ = ["allocate_clique_sort"]


def allocate_clique_sort(problem: Problem) -> Datapath:
    """Run the reconstructed descending-wordlength binding of ref. [14]."""
    graph = problem.graph
    if not graph.operations:
        return Datapath(
            schedule={}, binding=Binding(()), upper_bounds={},
            bound_latencies={}, makespan=0, area=0.0, method="clique-sort",
        )

    min_lat = problem.min_latencies()
    schedule = graph.asap(min_lat)
    makespan = graph.makespan(schedule, min_lat)
    if makespan > problem.latency_constraint:
        raise InfeasibleError(
            f"clique-sort schedule needs {makespan} cycles > lambda="
            f"{problem.latency_constraint}"
        )

    resources = problem.resource_set()
    area = {r: problem.area_model.area(r) for r in resources}
    latency_of = {r: problem.latency_model.latency(r) for r in resources}
    for op in graph.operations:
        dedicated = dedicated_resource(op)
        area.setdefault(dedicated, problem.area_model.area(dedicated))
        latency_of.setdefault(dedicated, problem.latency_model.latency(dedicated))

    def class_types(kind: str, latency: int) -> List[ResourceType]:
        pool = {r for r in resources if r.kind == kind and latency_of[r] == latency}
        pool |= {
            dedicated_resource(op)
            for op in graph.operations
            if op.resource_kind == kind and min_lat[op.name] == latency
        }
        return sorted(pool)

    def cheapest_cover(
        requirement: Tuple[int, ...], types: List[ResourceType]
    ) -> Optional[ResourceType]:
        best = None
        for r in types:
            if r.covers_requirement(requirement):
                if best is None or (area[r], r) < (area[best], best):
                    best = r
        return best

    ordered = sorted(
        graph.operations,
        key=lambda o: (-area[dedicated_resource(o)], o.name),
    )

    # cliques: (kind, latency, members, requirement)
    cliques: List[Dict] = []
    for op in ordered:
        lat = min_lat[op.name]
        placed = False
        for clique in cliques:
            if clique["kind"] != op.resource_kind or clique["latency"] != lat:
                continue
            disjoint = all(
                schedule[m] + lat <= schedule[op.name]
                or schedule[op.name] + lat <= schedule[m]
                for m in clique["members"]
            )
            if not disjoint:
                continue
            merged = tuple(
                max(a, b) for a, b in zip(clique["requirement"], op.requirement)
            )
            if cheapest_cover(merged, clique["types"]) is None:
                continue
            clique["members"].append(op.name)
            clique["requirement"] = merged
            placed = True
            break
        if not placed:
            cliques.append(
                {
                    "kind": op.resource_kind,
                    "latency": lat,
                    "members": [op.name],
                    "requirement": op.requirement,
                    "types": class_types(op.resource_kind, lat),
                }
            )

    bound: List[BoundClique] = []
    for clique in cliques:
        resource = cheapest_cover(clique["requirement"], clique["types"])
        assert resource is not None  # singleton cliques always coverable
        members = tuple(sorted(clique["members"], key=lambda n: (schedule[n], n)))
        bound.append(BoundClique(resource, members))

    binding = Binding(tuple(sorted(bound, key=lambda c: (schedule[c.ops[0]], c.ops))))
    bound_latencies = binding.bound_latencies_from(
        {c.resource: latency_of[c.resource] for c in bound}
    )
    return Datapath(
        schedule=dict(schedule),
        binding=binding,
        upper_bounds=dict(min_lat),
        bound_latencies=bound_latencies,
        makespan=max(schedule[n] + bound_latencies[n] for n in schedule),
        area=binding.area(problem.area_model),
        method="clique-sort",
    )
