"""Comparison baselines from the paper's evaluation and related work."""

from .clique_sort import allocate_clique_sort
from .fds import allocate_fds, force_directed_schedule
from .ilp import IlpModel, IlpStats, allocate_ilp, build_model
from .two_stage import (
    TwoStageReport,
    allocate_two_stage,
    bind_no_latency_increase,
)
from .uniform import allocate_uniform

__all__ = [
    "IlpModel",
    "IlpStats",
    "TwoStageReport",
    "allocate_clique_sort",
    "allocate_fds",
    "allocate_ilp",
    "allocate_two_stage",
    "allocate_uniform",
    "bind_no_latency_increase",
    "build_model",
    "force_directed_schedule",
]
