"""Optimal ILP for combined scheduling/binding/wordlength selection (ref. [5]).

The paper's comparison optimum is the ILP model of Constantinides et al.,
*Optimal datapath allocation for multiple-wordlength systems*, IEE
Electronics Letters 36(17), 2000 -- a two-page letter whose formulation
is not reprinted.  We reconstruct the standard time-indexed model, which
exhibits exactly the property the paper discusses (the variable count
scales with the latency constraint, Table 2):

Variables::

    x[o,r,t] in {0,1}   op o starts at step t on resource type r
    n[r]     in Z>=0    number of physical units of type r

    minimise   sum_r area(r) * n[r]
    s.t.       sum_{r,t} x[o,r,t] == 1                          (assignment)
               sum t*x[o2] >= sum (t + lat(r))*x[o1,r,t]        (precedence)
               sum_o sum_{t' in (t-lat(r), t]} x[o,r,t'] <= n[r]  (capacity)

Start-time windows come from ASAP/ALAP analysis with minimum latencies;
a pair ``(r, t)`` exists only if the op can still finish by ``lambda``
given its minimum-latency tail.  Unit counts are exact: per-type usage
is an interval system, so peak concurrency equals the number of physical
instances needed (interval graphs are perfect), and instances are
recovered afterwards by first-fit on start times.

Solved with ``scipy.optimize.milp`` (HiGHS).  Absolute runtimes are not
comparable with the paper's lp_solve-on-Pentium-III numbers; the harness
therefore reports *shape* (growth with |O| and with lambda) plus the
solver-independent variable counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from ..core.binding import Binding, BoundClique
from ..core.problem import InfeasibleError, Problem
from ..core.solution import Datapath
from ..resources.types import ResourceType

__all__ = ["IlpModel", "IlpStats", "allocate_ilp", "build_model"]


@dataclass(frozen=True)
class IlpStats:
    """Model-size and runtime statistics (Table 2 / Fig. 5 reporting)."""

    num_variables: int
    num_constraints: int
    solve_seconds: float


@dataclass
class IlpModel:
    """A constructed (not yet solved) time-indexed model."""

    problem: Problem
    variables: List[Tuple[str, ResourceType, int]]  # x[o, r, t] columns
    resources: Tuple[ResourceType, ...]  # n[r] columns follow the x block
    cost: np.ndarray
    constraints: List[LinearConstraint]
    integrality: np.ndarray
    bounds: Bounds

    @property
    def num_variables(self) -> int:
        return len(self.cost)

    @property
    def num_constraints(self) -> int:
        return sum(c.A.shape[0] for c in self.constraints)


def build_model(problem: Problem) -> IlpModel:
    """Construct the time-indexed MILP for ``problem``.

    Raises:
        InfeasibleError: an operation has no feasible (r, t) pair, i.e.
            the latency constraint is below the critical path.
    """
    graph = problem.graph
    lam = problem.latency_constraint
    resources = problem.resource_set()
    latency = {r: problem.latency_model.latency(r) for r in resources}
    area = {r: problem.area_model.area(r) for r in resources}

    min_lat = problem.min_latencies()
    asap = graph.asap(min_lat)
    alap = graph.alap(min_lat, deadline=lam)

    variables: List[Tuple[str, ResourceType, int]] = []
    index: Dict[Tuple[str, ResourceType, int], int] = {}
    for op in graph.operations:
        feasible_any = False
        for r in sorted(resources):
            if not r.covers(op):
                continue
            # Latest start so that this (slower) resource still lets the
            # downstream minimum-latency tail finish by lambda.
            latest = alap[op.name] - (latency[r] - min_lat[op.name])
            for t in range(asap[op.name], latest + 1):
                index[(op.name, r, t)] = len(variables)
                variables.append((op.name, r, t))
                feasible_any = True
        if not feasible_any:
            raise InfeasibleError(
                f"operation {op.name!r} cannot finish by lambda={lam}"
            )

    num_x = len(variables)
    num_n = len(resources)
    total = num_x + num_n
    n_index = {r: num_x + i for i, r in enumerate(resources)}

    cost = np.zeros(total)
    for r in resources:
        cost[n_index[r]] = area[r]

    constraints: List[LinearConstraint] = []

    # Assignment: each op scheduled exactly once.
    rows, cols, vals = [], [], []
    op_order = {op.name: i for i, op in enumerate(graph.operations)}
    for (name, r, t), col in index.items():
        rows.append(op_order[name])
        cols.append(col)
        vals.append(1.0)
    a_assign = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(len(op_order), total)
    )
    constraints.append(LinearConstraint(a_assign, 1.0, 1.0))

    # Precedence: start(o2) - finish(o1) >= 0 for every dependency.
    edges = graph.edges()
    if edges:
        rows, cols, vals = [], [], []
        for row, (producer, consumer) in enumerate(edges):
            for (name, r, t), col in index.items():
                if name == consumer:
                    rows.append(row)
                    cols.append(col)
                    vals.append(float(t))
                elif name == producer:
                    rows.append(row)
                    cols.append(col)
                    vals.append(-float(t + latency[r]))
        a_prec = sparse.csr_matrix((vals, (rows, cols)), shape=(len(edges), total))
        constraints.append(LinearConstraint(a_prec, 0.0, np.inf))

    # Capacity: concurrent usage of type r at step t bounded by n[r].
    rows, cols, vals = [], [], []
    row = 0
    for r in resources:
        spans = [
            (col, t)
            for (name, rr, t), col in index.items()
            if rr == r
        ]
        if not spans:
            continue
        for step in range(lam):
            touching = [
                col for col, t in spans if t <= step < t + latency[r]
            ]
            if not touching:
                continue
            for col in touching:
                rows.append(row)
                cols.append(col)
                vals.append(1.0)
            rows.append(row)
            cols.append(n_index[r])
            vals.append(-1.0)
            row += 1
    if row:
        a_cap = sparse.csr_matrix((vals, (rows, cols)), shape=(row, total))
        constraints.append(LinearConstraint(a_cap, -np.inf, 0.0))

    # Optional user resource-count ceilings per kind.
    if problem.resource_constraints:
        rows, cols, vals, ubs = [], [], [], []
        crow = 0
        for kind, limit in sorted(problem.resource_constraints.items()):
            members = [r for r in resources if r.kind == kind]
            if not members:
                continue
            for r in members:
                rows.append(crow)
                cols.append(n_index[r])
                vals.append(1.0)
            ubs.append(float(limit))
            crow += 1
        if crow:
            a_kind = sparse.csr_matrix((vals, (rows, cols)), shape=(crow, total))
            constraints.append(LinearConstraint(a_kind, -np.inf, np.array(ubs)))

    integrality = np.ones(total)
    upper = np.ones(total)
    upper[num_x:] = len(graph.operations)
    bounds = Bounds(np.zeros(total), upper)

    return IlpModel(
        problem=problem,
        variables=variables,
        resources=tuple(resources),
        cost=cost,
        constraints=constraints,
        integrality=integrality,
        bounds=bounds,
    )


def _instances_first_fit(
    assignments: Dict[str, Tuple[ResourceType, int]],
    latency: Dict[ResourceType, int],
) -> List[BoundClique]:
    """Legalise per-type usage onto physical instances by first-fit."""
    by_resource: Dict[ResourceType, List[Tuple[int, str]]] = {}
    for name, (r, t) in assignments.items():
        by_resource.setdefault(r, []).append((t, name))
    cliques: List[BoundClique] = []
    for r in sorted(by_resource):
        instances: List[Tuple[int, List[str]]] = []  # (next free step, ops)
        for t, name in sorted(by_resource[r]):
            placed = False
            for i, (free_at, members) in enumerate(instances):
                if free_at <= t:
                    members.append(name)
                    instances[i] = (t + latency[r], members)
                    placed = True
                    break
            if not placed:
                instances.append((t + latency[r], [name]))
        for _, members in instances:
            cliques.append(BoundClique(r, tuple(members)))
    return cliques


def allocate_ilp(
    problem: Problem,
    time_limit: Optional[float] = None,
) -> Tuple[Datapath, IlpStats]:
    """Solve ``problem`` to optimality with the time-indexed MILP.

    Args:
        time_limit: optional HiGHS wall-clock limit in seconds.

    Returns:
        (optimal datapath, model/runtime statistics).

    Raises:
        InfeasibleError: the model is infeasible.
        TimeoutError: the time limit expired without an incumbent.
    """
    if not problem.graph.operations:
        return (
            Datapath(
                schedule={}, binding=Binding(()), upper_bounds={},
                bound_latencies={}, makespan=0, area=0.0, method="ilp",
            ),
            IlpStats(0, 0, 0.0),
        )

    model = build_model(problem)
    options: Dict[str, object] = {"presolve": True}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)

    # reprolint: disable=RL002(telemetry only: canonical_dict strips solve_seconds)
    began = time.perf_counter()
    result = milp(
        c=model.cost,
        constraints=model.constraints,
        integrality=model.integrality,
        bounds=model.bounds,
        options=options,
    )
    # reprolint: disable=RL002(telemetry only: canonical_dict strips solve_seconds)
    elapsed = time.perf_counter() - began
    stats = IlpStats(model.num_variables, model.num_constraints, elapsed)

    if result.status == 2:
        raise InfeasibleError(
            f"ILP infeasible for lambda={problem.latency_constraint}"
        )
    if result.x is None:
        raise TimeoutError(
            f"ILP found no incumbent within the time limit ({time_limit}s)"
        )

    x = result.x
    latency = {r: problem.latency_model.latency(r) for r in model.resources}
    assignments: Dict[str, Tuple[ResourceType, int]] = {}
    for col, (name, r, t) in enumerate(model.variables):
        if x[col] > 0.5:
            assignments[name] = (r, t)
    missing = [op.name for op in problem.graph.operations if op.name not in assignments]
    if missing:
        raise RuntimeError(f"ILP solution incomplete for ops {missing}")

    cliques = _instances_first_fit(assignments, latency)
    binding = Binding(tuple(cliques))
    schedule = {name: t for name, (_, t) in assignments.items()}
    bound_latencies = binding.bound_latencies_from(latency)
    makespan = max(schedule[n] + bound_latencies[n] for n in schedule)

    datapath = Datapath(
        schedule=schedule,
        binding=binding,
        upper_bounds=dict(bound_latencies),
        bound_latencies=bound_latencies,
        makespan=makespan,
        area=binding.area(problem.area_model),
        method="ilp",
    )
    return datapath, stats
