"""Uniform-wordlength baseline: the traditional DSP-processor design point.

The paper's introduction contrasts custom multiple-wordlength hardware
with the classic approach of "a single uniform system wordlength ...
consistent with the DSP processor model of computation".  This baseline
realises that design point within our framework:

* per resource kind, a single uniform type -- wide enough for the widest
  operation of that kind;
* every operation executes at the uniform type's latency;
* the unit count per kind starts at one (maximum sharing) and is
  incremented for the bottleneck kind until the latency constraint is
  met; binding is first-fit.

It gives the examples an area yardstick for *how much* the multiple
wordlength freedom buys, echoing refs. [3, 14].
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple

from ..core.binding import Binding, BoundClique
from ..core.problem import InfeasibleError, Problem
from ..core.scheduling import critical_path_priorities
from ..core.solution import Datapath
from ..resources.extraction import group_requirement
from ..resources.types import ResourceType

__all__ = ["allocate_uniform"]


def _constrained_schedule(
    problem: Problem,
    latencies: Dict[str, int],
    limits: Dict[str, int],
) -> Dict[str, int]:
    """List schedule with a plain per-kind concurrency bound (Eqn. 2).

    With one uniform type per kind, Eqn. 2 counting is exact, so the
    heavier Eqn. 3 machinery is unnecessary here.
    """
    graph = problem.graph
    priority = critical_path_priorities(graph, latencies)
    kind_of = {op.name: op.resource_kind for op in graph.operations}
    pending = set(graph.names)
    start: Dict[str, int] = {}
    load: Dict[str, Dict[int, int]] = {kind: {} for kind in limits}
    now = 0
    while pending:
        ready = sorted(
            (
                n
                for n in pending
                if all(p in start for p in graph.predecessors(n))
                and all(
                    start[p] + latencies[p] <= now for p in graph.predecessors(n)
                )
            ),
            key=lambda n: (-priority[n], n),
        )
        for name in ready:
            kind = kind_of[name]
            span = range(now, now + latencies[name])
            if all(load[kind].get(t, 0) < limits[kind] for t in span):
                start[name] = now
                for t in span:
                    load[kind][t] = load[kind].get(t, 0) + 1
                pending.discard(name)
        if pending:
            now += 1
    return start


def allocate_uniform(problem: Problem) -> Datapath:
    """Allocate with one uniform resource type per kind.

    Raises:
        InfeasibleError: the constraint is below what even one unit per
            operation achieves (i.e. below the uniform critical path).
    """
    graph = problem.graph
    if not graph.operations:
        return Datapath(
            schedule={}, binding=Binding(()), upper_bounds={},
            bound_latencies={}, makespan=0, area=0.0, method="uniform",
        )

    by_kind: Dict[str, List] = {}
    for op in graph.operations:
        by_kind.setdefault(op.resource_kind, []).append(op)
    uniform: Dict[str, ResourceType] = {
        kind: group_requirement(ops) for kind, ops in by_kind.items()
    }
    latencies = {
        op.name: problem.latency_model.latency(uniform[op.resource_kind])
        for op in graph.operations
    }
    ops_per_kind = Counter(op.resource_kind for op in graph.operations)
    user = dict(problem.resource_constraints or {})

    limits = {kind: 1 for kind in uniform}
    limits.update({k: v for k, v in user.items() if k in limits})
    while True:
        schedule = _constrained_schedule(problem, latencies, limits)
        makespan = graph.makespan(schedule, latencies)
        if makespan <= problem.latency_constraint:
            break
        growable = sorted(
            kind
            for kind in limits
            if limits[kind] < ops_per_kind[kind] and kind not in user
        )
        if not growable:
            raise InfeasibleError(
                f"uniform datapath cannot reach lambda="
                f"{problem.latency_constraint} (makespan {makespan})"
            )
        last = max(schedule, key=lambda n: (schedule[n] + latencies[n], n))
        bottleneck = graph.operation(last).resource_kind
        kind = bottleneck if bottleneck in growable else growable[0]
        limits[kind] += 1

    # First-fit binding onto `limits[kind]` uniform units per kind.
    instances: Dict[str, List[Tuple[int, List[str]]]] = {
        kind: [] for kind in uniform
    }
    for name in sorted(schedule, key=lambda n: (schedule[n], n)):
        kind = graph.operation(name).resource_kind
        begin = schedule[name]
        finish = begin + latencies[name]
        pool = instances[kind]
        for i, (free_at, members) in enumerate(pool):
            if free_at <= begin:
                members.append(name)
                pool[i] = (finish, members)
                break
        else:
            pool.append((finish, [name]))

    cliques = tuple(
        BoundClique(uniform[kind], tuple(members))
        for kind in sorted(instances)
        for _, members in instances[kind]
    )
    binding = Binding(cliques)
    bound_latencies = binding.bound_latencies_from(
        {uniform[kind]: problem.latency_model.latency(uniform[kind])
         for kind in uniform}
    )
    return Datapath(
        schedule=dict(schedule),
        binding=binding,
        upper_bounds=dict(latencies),
        bound_latencies=bound_latencies,
        makespan=max(schedule[n] + bound_latencies[n] for n in schedule),
        area=binding.area(problem.area_model),
        method="uniform",
    )
