"""Two-stage baseline of ref. [4] (Constantinides et al., FPL 2000).

The paper describes [4] as "a two-stage scheduling/binding approach based
on sharing only resources that can be grouped together without increasing
the latency of the operation", with an *optimal branch-and-bound* for the
resource binding and wordlength selection stage.  Reconstruction
(DESIGN.md §5.5):

* **Stage 1 -- wordlength-blind scheduling**: ASAP with every operation
  at its own minimum latency (its dedicated resource).  Latency slack in
  the overall constraint is deliberately *not* exploited -- that is the
  defining limitation the DATE-2001 heuristic removes.
* **Stage 2 -- optimal binding**: operations may share a unit only if
  they are time-compatible under the stage-1 schedule *and* a covering
  resource type exists whose latency equals every member's scheduled
  latency (no operation may slow down).  Since latency is monotone in
  wordlength, members of a clique necessarily share one (kind, latency)
  class, so the problem decomposes per class and each class is solved
  to optimality:

  - classes of up to ``dp_limit`` ops: subset dynamic programming over
    chain-valid subsets (exact, O(3^n));
  - larger classes: branch-and-bound on ops in descending dedicated-area
    order (exact unless the node budget is exhausted, in which case the
    best incumbent is returned and ``optimal`` is flagged false).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.binding import Binding, BoundClique
from ..core.problem import InfeasibleError, Problem
from ..core.solution import Datapath
from ..ir.ops import Operation
from ..resources.extraction import dedicated_resource
from ..resources.types import ResourceType

__all__ = ["allocate_two_stage", "TwoStageReport"]


@dataclass(frozen=True)
class TwoStageReport:
    """Provenance of a two-stage run: was stage 2 solved to optimality?"""

    optimal: bool
    classes: int
    largest_class: int


@dataclass(frozen=True)
class _Class:
    """One (resource kind, latency) equivalence class of operations."""

    kind: str
    latency: int
    ops: Tuple[Operation, ...]
    types: Tuple[ResourceType, ...]  # class types, same kind and latency


def _cover_cost(
    requirement: Tuple[int, ...],
    types: Sequence[ResourceType],
    area: Dict[ResourceType, float],
) -> Optional[Tuple[float, ResourceType]]:
    """Cheapest class type covering ``requirement`` (None if uncoverable)."""
    best: Optional[Tuple[float, ResourceType]] = None
    for r in types:
        if r.covers_requirement(requirement):
            key = (area[r], r)
            if best is None or key < best:
                best = key
    return best


def _merge_requirement(a: Tuple[int, ...], b: Tuple[int, ...]) -> Tuple[int, ...]:
    return tuple(max(x, y) for x, y in zip(a, b))


def _partition_dp(
    cls: _Class,
    schedule: Dict[str, int],
    area: Dict[ResourceType, float],
) -> List[Tuple[ResourceType, List[str]]]:
    """Exact min-cost chain partition by subset DP (class size <= ~13)."""
    ops = sorted(cls.ops, key=lambda o: (schedule[o.name], o.name))
    n = len(ops)
    compat = [0] * n
    for i in range(n):
        for j in range(n):
            if i != j:
                disjoint = (
                    schedule[ops[i].name] + cls.latency <= schedule[ops[j].name]
                    or schedule[ops[j].name] + cls.latency <= schedule[ops[i].name]
                )
                if disjoint:
                    compat[i] |= 1 << j

    full = (1 << n) - 1
    clique_cost: Dict[int, Tuple[float, ResourceType]] = {}
    requirement: Dict[int, Tuple[int, ...]] = {}
    chain_ok: Dict[int, bool] = {0: True}
    for mask in range(1, full + 1):
        low = (mask & -mask).bit_length() - 1
        rest = mask ^ (1 << low)
        ok = chain_ok.get(rest, False) and (compat[low] & rest) == rest
        chain_ok[mask] = ok
        if not ok:
            continue
        req = ops[low].requirement
        if rest:
            req = _merge_requirement(req, requirement[rest])
        requirement[mask] = req
        cover = _cover_cost(req, cls.types, area)
        if cover is not None:
            clique_cost[mask] = cover

    INF = float("inf")
    dp_cost = [INF] * (full + 1)
    dp_choice: List[int] = [0] * (full + 1)
    dp_cost[0] = 0.0
    for mask in range(1, full + 1):
        low_bit = mask & -mask
        sub = mask
        while sub:
            if sub & low_bit and sub in clique_cost:
                candidate = dp_cost[mask ^ sub] + clique_cost[sub][0]
                if candidate < dp_cost[mask]:
                    dp_cost[mask] = candidate
                    dp_choice[mask] = sub
            sub = (sub - 1) & mask
    if dp_cost[full] == INF:
        raise InfeasibleError(
            f"class {cls.kind}/{cls.latency} has an uncoverable operation"
        )

    result: List[Tuple[ResourceType, List[str]]] = []
    mask = full
    while mask:
        sub = dp_choice[mask]
        members = [ops[i].name for i in range(n) if sub & (1 << i)]
        result.append((clique_cost[sub][1], members))
        mask ^= sub
    return result


def _partition_bb(
    cls: _Class,
    schedule: Dict[str, int],
    area: Dict[ResourceType, float],
    node_budget: int,
) -> Tuple[List[Tuple[ResourceType, List[str]]], bool]:
    """Branch-and-bound chain partition for larger classes.

    Ops are assigned in descending dedicated-area order to an existing
    clique (cost delta = cover-cost increase) or a fresh clique.  Returns
    (partition, proven_optimal).
    """
    def dedicated_area(op: Operation) -> float:
        cover = _cover_cost(op.requirement, cls.types, area)
        if cover is None:
            raise InfeasibleError(
                f"operation {op.name!r} has no class type in "
                f"{cls.kind}/{cls.latency}"
            )
        return cover[0]

    ops = sorted(cls.ops, key=lambda o: (-dedicated_area(o), o.name))
    n = len(ops)
    starts = [schedule[o.name] for o in ops]

    best_cost = float("inf")
    best_partition: List[Tuple[ResourceType, List[str]]] = []
    nodes = 0
    exhausted = False

    # cliques entries: (member indices, requirement, cost, intervals)
    def recurse(i: int, cliques: List[Tuple[List[int], Tuple[int, ...], float]],
                cost: float) -> None:
        nonlocal best_cost, best_partition, nodes, exhausted
        if nodes >= node_budget:
            exhausted = True
            return
        nodes += 1
        if cost >= best_cost:
            return
        if i == n:
            best_cost = cost
            best_partition = [
                (_cover_cost(req, cls.types, area)[1], [ops[k].name for k in members])
                for members, req, _ in cliques
            ]
            return
        op = ops[i]
        for idx, (members, req, clique_cost) in enumerate(cliques):
            if any(
                not (
                    starts[k] + cls.latency <= starts[i]
                    or starts[i] + cls.latency <= starts[k]
                )
                for k in members
            ):
                continue
            merged = _merge_requirement(req, op.requirement)
            cover = _cover_cost(merged, cls.types, area)
            if cover is None:
                continue
            delta = cover[0] - clique_cost
            updated = list(cliques)
            updated[idx] = (members + [i], merged, cover[0])
            recurse(i + 1, updated, cost + delta)
        opened = list(cliques)
        opened.append(([i], op.requirement, dedicated_area(op)))
        recurse(i + 1, opened, cost + dedicated_area(op))

    recurse(0, [], 0.0)
    return best_partition, not exhausted


def bind_no_latency_increase(
    problem: Problem,
    schedule: Dict[str, int],
    dp_limit: int = 13,
    node_budget: int = 200_000,
) -> Tuple[Binding, TwoStageReport]:
    """Optimal binding under the no-latency-increase restriction.

    Shared by the two-stage baseline (ASAP stage 1) and the
    force-directed baseline (:mod:`repro.baselines.fds`): given any
    schedule built with dedicated latencies, partition each
    (kind, latency) class optimally into covered chains.
    """
    graph = problem.graph
    min_lat = problem.min_latencies()
    resources = problem.resource_set()
    area = {r: problem.area_model.area(r) for r in resources}
    latency_of = {r: problem.latency_model.latency(r) for r in resources}

    classes: Dict[Tuple[str, int], List[Operation]] = {}
    for op in graph.operations:
        key = (op.resource_kind, min_lat[op.name])
        classes.setdefault(key, []).append(op)

    cliques: List[BoundClique] = []
    optimal = True
    largest = 0
    for (kind, lat), members in sorted(classes.items()):
        # Class types: matching kind and exactly the class latency, plus
        # always the dedicated types of the members (pruning-proof).
        types = sorted(
            {r for r in resources if r.kind == kind and latency_of[r] == lat}
            | {dedicated_resource(op) for op in members}
        )
        for r in types:
            area.setdefault(r, problem.area_model.area(r))
        cls = _Class(kind, lat, tuple(members), tuple(types))
        largest = max(largest, len(members))
        if len(members) <= dp_limit:
            parts = _partition_dp(cls, schedule, area)
        else:
            parts, proven = _partition_bb(cls, schedule, area, node_budget)
            optimal = optimal and proven
        for resource, names in parts:
            ordered = tuple(sorted(names, key=lambda n: (schedule[n], n)))
            cliques.append(BoundClique(resource, ordered))

    binding = Binding(tuple(sorted(
        cliques, key=lambda c: (schedule[c.ops[0]], c.ops)
    )))
    return binding, TwoStageReport(optimal, len(classes), largest)


def allocate_two_stage(
    problem: Problem,
    dp_limit: int = 13,
    node_budget: int = 200_000,
) -> Tuple[Datapath, TwoStageReport]:
    """Run the reconstructed two-stage approach of ref. [4].

    Raises:
        InfeasibleError: the wordlength-blind ASAP schedule already
            violates the latency constraint (the method has no recourse).
    """
    graph = problem.graph
    if not graph.operations:
        return (
            Datapath(
                schedule={}, binding=Binding(()), upper_bounds={},
                bound_latencies={}, makespan=0, area=0.0, method="two-stage",
            ),
            TwoStageReport(True, 0, 0),
        )

    min_lat = problem.min_latencies()
    schedule = graph.asap(min_lat)
    makespan = graph.makespan(schedule, min_lat)
    if makespan > problem.latency_constraint:
        raise InfeasibleError(
            f"two-stage schedule needs {makespan} cycles > lambda="
            f"{problem.latency_constraint}"
        )

    binding, report = bind_no_latency_increase(
        problem, schedule, dp_limit, node_budget
    )
    bound_latencies = binding.bound_latencies_from(
        {c.resource: problem.latency_model.latency(c.resource)
         for c in binding.cliques}
    )
    datapath = Datapath(
        schedule=dict(schedule),
        binding=binding,
        upper_bounds=dict(min_lat),
        bound_latencies=bound_latencies,
        makespan=max(schedule[n] + bound_latencies[n] for n in schedule),
        area=binding.area(problem.area_model),
        method="two-stage",
    )
    return datapath, report
