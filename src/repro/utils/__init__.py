"""Shared combinatorial utilities."""

from .covering import greedy_weighted_cover, min_cardinality_cover

__all__ = ["greedy_weighted_cover", "min_cardinality_cover"]
