"""Set-covering utilities.

Two covering problems appear in the paper:

* section 2.2 needs a **minimum-cardinality scheduling set** ``S ⊆ R``
  such that every operation is covered by some member -- solved here
  exactly by branch-and-bound (``R`` is small) with a greedy fallback for
  pathological inputs;
* section 2.3 reduces binding to **weighted unate covering** (Eqn. 6),
  solved by an implicit adaptation of Chvátal's greedy heuristic [1].
  The explicit version in this module is used as a test oracle for the
  implicit one in :mod:`repro.core.binding`.
"""

from __future__ import annotations

from typing import Hashable, List, Mapping, Set, Tuple

__all__ = ["greedy_weighted_cover", "min_cardinality_cover"]

Element = Hashable
SetName = Hashable


def greedy_weighted_cover(
    universe: Set[Element],
    sets: Mapping[SetName, Set[Element]],
    cost: Mapping[SetName, float],
) -> List[SetName]:
    """Chvátal's greedy heuristic for weighted set cover.

    Repeatedly picks the set maximising (newly covered elements) / cost.
    Ties are broken on lower cost, then on the set name for determinism.

    Raises ``ValueError`` if the union of sets does not cover the universe.
    """
    union_all: Set[Element] = set()
    for members in sets.values():
        union_all |= members
    if not universe <= union_all:
        raise ValueError(f"uncoverable elements: {sorted(universe - union_all)!r}")

    chosen: List[SetName] = []
    remaining = set(universe)
    while remaining:
        best_name = None
        best_key: Tuple[float, float, str] = (0.0, 0.0, "")
        for name in sorted(sets, key=repr):
            gain = len(sets[name] & remaining)
            if gain == 0:
                continue
            key = (gain / cost[name], -cost[name], repr(name))
            if best_name is None or key > best_key:
                best_name, best_key = name, key
        assert best_name is not None  # guaranteed by the coverage check
        chosen.append(best_name)
        remaining -= sets[best_name]
    return chosen


def min_cardinality_cover(
    universe: Set[Element],
    sets: Mapping[SetName, Set[Element]],
    exact_limit: int = 24,
) -> List[SetName]:
    """Minimum-cardinality set cover.

    Exact branch-and-bound when the number of candidate sets does not
    exceed ``exact_limit``; otherwise the unweighted greedy heuristic
    (whose ln-approximation is ample for the scheduling-set role).
    Deterministic: candidates are explored in sorted order.
    """
    union_all: Set[Element] = set()
    for members in sets.values():
        union_all |= members
    if not universe <= union_all:
        raise ValueError(f"uncoverable elements: {sorted(universe - union_all)!r}")
    if not universe:
        return []

    names = sorted(sets, key=repr)
    useful = [n for n in names if sets[n] & universe]
    if len(useful) > exact_limit:
        unit_cost = {n: 1.0 for n in useful}
        restricted = {n: sets[n] for n in useful}
        return greedy_weighted_cover(set(universe), restricted, unit_cost)

    # Greedy solution provides the initial upper bound.
    best = greedy_weighted_cover(
        set(universe), {n: sets[n] for n in useful}, {n: 1.0 for n in useful}
    )

    max_gain = max(len(sets[n] & universe) for n in useful)

    def search(remaining: Set[Element], chosen: List[SetName], depth: int) -> None:
        nonlocal best
        if not remaining:
            if len(chosen) < len(best):
                best = list(chosen)
            return
        # Lower bound: even perfect sets need ceil(|remaining|/max_gain) more.
        lower = (len(remaining) + max_gain - 1) // max_gain
        if len(chosen) + lower >= len(best):
            return
        # Branch on an arbitrary uncovered element (fewest-candidates first).
        pivot = min(
            remaining,
            key=lambda e: (sum(1 for n in useful if e in sets[n]), repr(e)),
        )
        candidates = [n for n in useful if pivot in sets[n]]
        candidates.sort(key=lambda n: (-len(sets[n] & remaining), repr(n)))
        for name in candidates:
            chosen.append(name)
            search(remaining - sets[name], chosen, depth + 1)
            chosen.pop()

    search(set(universe), [], 0)
    return best
