"""Wire payload schemas for the allocation service (:mod:`repro.service`).

The service speaks plain JSON over HTTP, reusing the envelope
serialisation from :mod:`repro.io.json_io` so that everything that goes
over the wire is byte-compatible with the offline artefacts
(``repro batch --json`` files, shard results, the on-disk result cache):

* ``POST /allocate`` body: one ``allocation-request`` payload
  (:func:`~repro.io.json_io.allocation_request_to_dict`); response: one
  ``allocation-result`` payload.
* ``POST /batch`` body: an ``allocation-batch-request`` payload
  (:func:`batch_request_to_dict`); response: an ``allocation-batch``
  payload (:func:`batch_results_to_dict`) -- the *same* shape
  ``repro batch --json`` writes, results ordered like the requests.
* errors: a ``service-error`` payload (:func:`error_to_dict`) carrying
  the HTTP status and a human-readable reason.

Every helper validates the ``kind`` discriminator and raises
``ValueError`` on a malformed payload; the server maps those to HTTP
400 responses instead of tracebacks.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from .json_io import (
    allocation_request_from_dict,
    allocation_request_to_dict,
    allocation_result_from_dict,
    allocation_result_to_dict,
)

__all__ = [
    "BATCH_REQUEST_KIND",
    "BATCH_RESULTS_KIND",
    "ERROR_KIND",
    "batch_request_to_dict",
    "batch_request_from_dict",
    "batch_results_to_dict",
    "batch_results_from_dict",
    "error_to_dict",
]

BATCH_REQUEST_KIND = "allocation-batch-request"
BATCH_RESULTS_KIND = "allocation-batch"
ERROR_KIND = "service-error"


def batch_request_to_dict(requests: Sequence[Any]) -> Dict[str, Any]:
    """Serialise a ``POST /batch`` body from allocation requests."""
    return {
        "kind": BATCH_REQUEST_KIND,
        "requests": [allocation_request_to_dict(r) for r in requests],
    }


def batch_request_from_dict(data: Any) -> List[Any]:
    """Deserialise a ``POST /batch`` body into allocation requests."""
    if not isinstance(data, dict) or data.get("kind") != BATCH_REQUEST_KIND:
        kind = data.get("kind") if isinstance(data, dict) else type(data).__name__
        raise ValueError(f"not an {BATCH_REQUEST_KIND} payload: {kind!r}")
    entries = data.get("requests")
    if not isinstance(entries, list):
        raise ValueError(f"{BATCH_REQUEST_KIND}: 'requests' must be a list")
    return [allocation_request_from_dict(entry) for entry in entries]


def batch_results_to_dict(results: Sequence[Any]) -> Dict[str, Any]:
    """Serialise result envelopes as an ``allocation-batch`` payload.

    This is the exact shape ``repro batch --json`` and ``repro merge
    --json`` write, so served batches diff cleanly against offline runs.
    """
    return {
        "kind": BATCH_RESULTS_KIND,
        "results": [allocation_result_to_dict(r) for r in results],
    }


def batch_results_from_dict(data: Any) -> List[Any]:
    """Deserialise an ``allocation-batch`` payload into result envelopes."""
    if not isinstance(data, dict) or data.get("kind") != BATCH_RESULTS_KIND:
        kind = data.get("kind") if isinstance(data, dict) else type(data).__name__
        raise ValueError(f"not an {BATCH_RESULTS_KIND} payload: {kind!r}")
    entries = data.get("results")
    if not isinstance(entries, list):
        raise ValueError(f"{BATCH_RESULTS_KIND}: 'results' must be a list")
    return [allocation_result_from_dict(entry) for entry in entries]


def error_to_dict(status: int, message: str) -> Dict[str, Any]:
    """Serialise a service error response body."""
    return {"kind": ERROR_KIND, "status": int(status), "error": str(message)}
