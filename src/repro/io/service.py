"""Wire payload schemas for the allocation service (:mod:`repro.service`).

The service speaks plain JSON over HTTP, reusing the envelope
serialisation from :mod:`repro.io.json_io` so that everything that goes
over the wire is byte-compatible with the offline artefacts
(``repro batch --json`` files, shard results, the on-disk result cache):

* ``POST /allocate`` body: one ``allocation-request`` payload
  (:func:`~repro.io.json_io.allocation_request_to_dict`); response: one
  ``allocation-result`` payload.
* ``POST /batch`` body: an ``allocation-batch-request`` payload
  (:func:`batch_request_to_dict`); response: an ``allocation-batch``
  payload (:func:`batch_results_to_dict`) -- the *same* shape
  ``repro batch --json`` writes, results ordered like the requests.
* errors: a ``service-error`` payload (:func:`error_to_dict`) carrying
  the HTTP status and a human-readable reason.

Every helper validates the ``kind`` discriminator and raises
``ValueError`` on a malformed payload; the server maps those to HTTP
400 responses instead of tracebacks.

Versioning (v1)
---------------

The ``/v1/*`` routes speak the same payloads plus an explicit
``schema_version`` field (currently ``1``).  Request bodies *may* carry
it (clients pin the version they negotiated via ``/healthz``'s
``schema_versions`` list); servers reject versions they do not support
with HTTP 400.  v1 request payloads may additionally carry routing
hints -- a top-level ``fingerprint`` (``Problem.fingerprint()`` computed
client-side, used by the fleet coordinator to route without parsing the
problem) -- and v1 responses carry a worker-computed ``content_key``.
Both are advisory extras: deserialisers ignore them, canonical bytes
never see them, and the coordinator trusts only worker-reported keys.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .json_io import (
    allocation_request_from_dict,
    allocation_request_to_dict,
    allocation_result_from_dict,
    allocation_result_to_dict,
    edit_from_dict,
    edit_to_dict,
    problem_from_dict,
    problem_to_dict,
)

__all__ = [
    "BATCH_REQUEST_KIND",
    "BATCH_RESULTS_KIND",
    "DELTA_REQUEST_KIND",
    "ERROR_KIND",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "allocate_request_payload",
    "batch_request_to_dict",
    "batch_request_from_dict",
    "batch_results_to_dict",
    "batch_results_from_dict",
    "check_schema_version",
    "delta_request_to_dict",
    "delta_request_from_dict",
    "error_to_dict",
]

BATCH_REQUEST_KIND = "allocation-batch-request"
BATCH_RESULTS_KIND = "allocation-batch"
DELTA_REQUEST_KIND = "delta-request"
ERROR_KIND = "service-error"

#: Wire schema version spoken by the ``/v1/*`` routes.
SCHEMA_VERSION = 1
#: Versions this package can parse; servers advertise the list in
#: ``/healthz`` (``schema_versions``) and clients pin the highest match.
SUPPORTED_SCHEMA_VERSIONS = (1,)


def check_schema_version(data: Any) -> Optional[int]:
    """Validate an optional ``schema_version`` field on a payload.

    Returns the declared version (or ``None`` when the payload does not
    declare one -- every pre-v1 payload); raises ``ValueError`` when the
    declared version is not one this package supports, which the server
    maps to HTTP 400.
    """
    if not isinstance(data, dict):
        return None
    version = data.get("schema_version")
    if version is None:
        return None
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise ValueError(
            f"unsupported schema_version {version!r}; "
            f"supported: {list(SUPPORTED_SCHEMA_VERSIONS)}"
        )
    return int(version)


def _fingerprint_hint(request: Any) -> Optional[str]:
    """Client-side ``Problem.fingerprint()``, or None if uncomputable."""
    try:
        return str(request.problem.fingerprint())
    except Exception:
        return None


def allocate_request_payload(
    request: Any, schema_version: Optional[int] = None
) -> Dict[str, Any]:
    """Serialise a ``POST /allocate`` body, optionally v1-annotated.

    With ``schema_version`` set the payload carries the version field
    plus a ``fingerprint`` routing hint.  Hints are advisory: a wrong
    fingerprint only mis-routes (and so slows) the request that carried
    it -- correctness and cache keys rest on worker-computed keys.
    """
    payload = allocation_request_to_dict(request)
    if schema_version is not None:
        payload["schema_version"] = schema_version
        fingerprint = _fingerprint_hint(request)
        if fingerprint is not None:
            payload["fingerprint"] = fingerprint
    return payload


def batch_request_to_dict(
    requests: Sequence[Any], schema_version: Optional[int] = None
) -> Dict[str, Any]:
    """Serialise a ``POST /batch`` body from allocation requests."""
    payload: Dict[str, Any] = {
        "kind": BATCH_REQUEST_KIND,
        "requests": [
            allocate_request_payload(r, schema_version) for r in requests
        ],
    }
    if schema_version is not None:
        payload["schema_version"] = schema_version
    return payload


def batch_request_from_dict(data: Any) -> List[Any]:
    """Deserialise a ``POST /batch`` body into allocation requests."""
    if not isinstance(data, dict) or data.get("kind") != BATCH_REQUEST_KIND:
        kind = data.get("kind") if isinstance(data, dict) else type(data).__name__
        raise ValueError(f"not an {BATCH_REQUEST_KIND} payload: {kind!r}")
    entries = data.get("requests")
    if not isinstance(entries, list):
        raise ValueError(f"{BATCH_REQUEST_KIND}: 'requests' must be a list")
    return [allocation_request_from_dict(entry) for entry in entries]


def batch_results_to_dict(results: Sequence[Any]) -> Dict[str, Any]:
    """Serialise result envelopes as an ``allocation-batch`` payload.

    This is the exact shape ``repro batch --json`` and ``repro merge
    --json`` write, so served batches diff cleanly against offline runs.
    """
    return {
        "kind": BATCH_RESULTS_KIND,
        "results": [allocation_result_to_dict(r) for r in results],
    }


def batch_results_from_dict(data: Any) -> List[Any]:
    """Deserialise an ``allocation-batch`` payload into result envelopes."""
    if not isinstance(data, dict) or data.get("kind") != BATCH_RESULTS_KIND:
        kind = data.get("kind") if isinstance(data, dict) else type(data).__name__
        raise ValueError(f"not an {BATCH_RESULTS_KIND} payload: {kind!r}")
    entries = data.get("results")
    if not isinstance(entries, list):
        raise ValueError(f"{BATCH_RESULTS_KIND}: 'results' must be a list")
    return [allocation_result_from_dict(entry) for entry in entries]


def delta_request_to_dict(request: Any) -> Dict[str, Any]:
    """Serialise a ``POST /delta`` body from a
    :class:`~repro.engine.results.DeltaRequest`."""
    return {
        "kind": DELTA_REQUEST_KIND,
        "base_fingerprint": request.base_fingerprint,
        "base_problem": (
            problem_to_dict(request.base_problem)
            if request.base_problem is not None
            else None
        ),
        "edits": [edit_to_dict(edit) for edit in request.edits],
        "options": dict(request.options),
        "label": request.label,
    }


def delta_request_from_dict(data: Any) -> Any:
    """Deserialise a ``POST /delta`` body into a
    :class:`~repro.engine.results.DeltaRequest`."""
    if not isinstance(data, dict) or data.get("kind") != DELTA_REQUEST_KIND:
        kind = data.get("kind") if isinstance(data, dict) else type(data).__name__
        raise ValueError(f"not a {DELTA_REQUEST_KIND} payload: {kind!r}")
    from ..engine.results import DeltaRequest

    entries = data.get("edits")
    if not isinstance(entries, list):
        raise ValueError(f"{DELTA_REQUEST_KIND}: 'edits' must be a list")
    base = data.get("base_problem")
    return DeltaRequest(
        edits=tuple(edit_from_dict(entry) for entry in entries),
        base_problem=problem_from_dict(base) if base is not None else None,
        base_fingerprint=data.get("base_fingerprint"),
        options=dict(data.get("options") or {}),
        label=data.get("label"),
    )


def error_to_dict(
    status: int, message: str, error_code: Optional[str] = None
) -> Dict[str, Any]:
    """Serialise a service error response body.

    ``error_code`` is a machine-matchable discriminator for typed
    failures the fleet coordinator emits -- ``"shed"`` (admission queue
    full, HTTP 429) and ``"worker_exhausted"`` (every requeue attempt
    died, HTTP 503) -- so clients can branch without parsing prose.
    """
    payload: Dict[str, Any] = {
        "kind": ERROR_KIND,
        "status": int(status),
        "error": str(message),
    }
    if error_code is not None:
        payload["error_code"] = error_code
    return payload
