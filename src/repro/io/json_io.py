"""JSON serialisation of graphs, netlists, and datapaths.

Enables tool-flow composition: dump a kernel from one process, allocate
in another, archive solutions next to EXPERIMENTS.md, or hand a datapath
to external tooling.  All dictionaries are plain JSON-compatible types;
``save_*`` / ``load_*`` wrap them with files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Union

if TYPE_CHECKING:  # imported lazily at runtime to avoid import cycles
    from ..core.delta import Edit
    from ..core.problem import Problem
    from ..engine.results import AllocationRequest, AllocationResult

from ..core.binding import Binding, BoundClique
from ..core.solution import Datapath, TraceEvent
from ..ir.ops import Operation
from ..ir.seqgraph import SequencingGraph
from ..resources.types import ResourceType
from ..sim.netlist import Netlist

__all__ = [
    "EDIT_KIND",
    "graph_to_dict",
    "graph_from_dict",
    "netlist_to_dict",
    "netlist_from_dict",
    "datapath_to_dict",
    "datapath_from_dict",
    "edit_to_dict",
    "edit_from_dict",
    "trace_event_to_dict",
    "trace_event_from_dict",
    "problem_to_dict",
    "problem_from_dict",
    "allocation_request_to_dict",
    "allocation_request_from_dict",
    "allocation_result_to_dict",
    "allocation_result_from_dict",
    "save_json",
    "load_json",
]

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# sequencing graphs
# ----------------------------------------------------------------------

def graph_to_dict(graph: SequencingGraph) -> Dict:
    """Serialise a sequencing graph."""
    return {
        "kind": "sequencing-graph",
        "operations": [
            {
                "name": op.name,
                "op": op.kind,
                "widths": list(op.operand_widths),
            }
            for op in graph.operations
        ],
        "dependencies": [list(edge) for edge in graph.edges()],
    }


def graph_from_dict(data: Dict) -> SequencingGraph:
    """Deserialise a sequencing graph."""
    if data.get("kind") != "sequencing-graph":
        raise ValueError(f"not a sequencing graph payload: {data.get('kind')!r}")
    graph = SequencingGraph()
    for entry in data["operations"]:
        graph.add_operation(
            Operation(entry["name"], entry["op"], tuple(entry["widths"]))
        )
    for producer, consumer in data["dependencies"]:
        graph.add_dependency(producer, consumer)
    return graph


# ----------------------------------------------------------------------
# netlists
# ----------------------------------------------------------------------

def netlist_to_dict(netlist: Netlist) -> Dict:
    """Serialise a netlist (graph + wiring + widths)."""
    return {
        "kind": "netlist",
        "graph": graph_to_dict(netlist.graph),
        "inputs": dict(netlist.inputs),
        "constants": dict(netlist.constants),
        "wiring": {op: list(src) for op, src in netlist.wiring.items()},
        "out_widths": dict(netlist.out_widths),
    }


def netlist_from_dict(data: Dict) -> Netlist:
    """Deserialise a netlist."""
    if data.get("kind") != "netlist":
        raise ValueError(f"not a netlist payload: {data.get('kind')!r}")
    return Netlist(
        graph=graph_from_dict(data["graph"]),
        inputs={k: int(v) for k, v in data["inputs"].items()},
        constants={k: int(v) for k, v in data["constants"].items()},
        wiring={k: tuple(v) for k, v in data["wiring"].items()},
        out_widths={k: int(v) for k, v in data["out_widths"].items()},
    )


# ----------------------------------------------------------------------
# datapaths and solver iteration traces
# ----------------------------------------------------------------------

def trace_event_to_dict(event: TraceEvent) -> Dict:
    """Serialise one solver iteration trace event.

    The telemetry fields (``pass_ms``, chain-cache counters) are
    emitted only when populated, so they survive wire round-trips
    (service responses, batch files, the result cache) -- but they are
    *non-canonical*: ``AllocationResult.canonical_dict()`` strips them,
    exactly as it strips ``seconds``, because wall-clock and
    mode-dependent bytes would break the parity contract.
    """
    payload = {
        "iteration": event.iteration,
        "move": event.move,
        "target": event.target,
        "pool": event.pool,
        "makespan": event.makespan,
        "area": event.area,
        "scheduling_set_size": event.scheduling_set_size,
    }
    if event.pass_ms is not None:
        payload["pass_ms"] = dict(event.pass_ms)
    if event.cache_hits is not None:
        payload["cache_hits"] = event.cache_hits
    if event.cache_misses is not None:
        payload["cache_misses"] = event.cache_misses
    if event.cache_evicted is not None:
        payload["cache_evicted"] = event.cache_evicted
    return payload


def trace_event_from_dict(data: Dict) -> TraceEvent:
    """Deserialise one solver iteration trace event."""
    pass_ms = data.get("pass_ms")
    return TraceEvent(
        iteration=int(data["iteration"]),
        move=data["move"],
        target=data.get("target"),
        pool=data.get("pool"),
        makespan=int(data["makespan"]),
        area=float(data["area"]),
        scheduling_set_size=int(data["scheduling_set_size"]),
        pass_ms=(
            {k: float(v) for k, v in pass_ms.items()}
            if pass_ms is not None
            else None
        ),
        cache_hits=data.get("cache_hits"),
        cache_misses=data.get("cache_misses"),
        cache_evicted=data.get("cache_evicted"),
    )


def datapath_to_dict(datapath: Datapath) -> Dict:
    """Serialise a datapath solution.

    The per-iteration solver trace is included only when present
    (``DPAllocOptions(trace=True)``), so untraced payloads keep their
    historical shape; the refinement-step trace is omitted.
    """
    payload = {
        "kind": "datapath",
        "method": datapath.method,
        "schedule": dict(datapath.schedule),
        "cliques": [
            {
                "resource_kind": clique.resource.kind,
                "resource_widths": list(clique.resource.widths),
                "ops": list(clique.ops),
            }
            for clique in datapath.binding.cliques
        ],
        "upper_bounds": dict(datapath.upper_bounds),
        "bound_latencies": dict(datapath.bound_latencies),
        "makespan": datapath.makespan,
        "area": datapath.area,
        "iterations": datapath.iterations,
    }
    if datapath.trace:
        payload["trace"] = [trace_event_to_dict(e) for e in datapath.trace]
    return payload


def datapath_from_dict(data: Dict) -> Datapath:
    """Deserialise a datapath solution."""
    if data.get("kind") != "datapath":
        raise ValueError(f"not a datapath payload: {data.get('kind')!r}")
    cliques = tuple(
        BoundClique(
            ResourceType(entry["resource_kind"], tuple(entry["resource_widths"])),
            tuple(entry["ops"]),
        )
        for entry in data["cliques"]
    )
    return Datapath(
        schedule={k: int(v) for k, v in data["schedule"].items()},
        binding=Binding(cliques),
        upper_bounds={k: int(v) for k, v in data["upper_bounds"].items()},
        bound_latencies={k: int(v) for k, v in data["bound_latencies"].items()},
        makespan=int(data["makespan"]),
        area=float(data["area"]),
        iterations=int(data.get("iterations", 1)),
        method=data.get("method", "unknown"),
        trace=tuple(
            trace_event_from_dict(entry) for entry in data.get("trace", ())
        ),
    )


# ----------------------------------------------------------------------
# problems and allocation requests (shard manifests, service payloads)
# ----------------------------------------------------------------------

def _model_to_dict(model: object) -> Dict:
    """Serialise a technology model by type name + dataclass params.

    Only the built-in frozen-dataclass SONIC models round-trip --
    callable-table models (``TableLatencyModel``/``TableAreaModel``)
    hold arbitrary functions and have no JSON identity, mirroring the
    ``Problem.fingerprint()`` rules.
    """
    import dataclasses

    from ..resources.area import SonicAreaModel
    from ..resources.latency import SonicLatencyModel

    if isinstance(model, (SonicLatencyModel, SonicAreaModel)):
        return {
            "type": type(model).__name__,
            "params": dataclasses.asdict(model),
        }
    raise ValueError(
        f"{type(model).__name__} is not JSON-serialisable; shard "
        f"manifests and problem payloads support the built-in SONIC "
        f"models only"
    )


def _model_from_dict(data: Dict) -> object:
    from ..resources.area import SonicAreaModel
    from ..resources.latency import SonicLatencyModel

    known = {
        "SonicLatencyModel": SonicLatencyModel,
        "SonicAreaModel": SonicAreaModel,
    }
    try:
        cls = known[data["type"]]
    except KeyError:
        raise ValueError(f"unknown model type: {data.get('type')!r}") from None
    return cls(**data.get("params", {}))


def problem_to_dict(problem: "Problem") -> Dict:
    """Serialise a :class:`~repro.core.problem.Problem` instance."""
    return {
        "kind": "problem",
        "graph": graph_to_dict(problem.graph),
        "latency_constraint": problem.latency_constraint,
        "latency_model": _model_to_dict(problem.latency_model),
        "area_model": _model_to_dict(problem.area_model),
        "resource_constraints": (
            dict(problem.resource_constraints)
            if problem.resource_constraints is not None
            else None
        ),
    }


def problem_from_dict(data: Dict) -> "Problem":
    """Deserialise a :class:`~repro.core.problem.Problem` instance."""
    if data.get("kind") != "problem":
        raise ValueError(f"not a problem payload: {data.get('kind')!r}")
    from ..core.problem import Problem

    constraints = data.get("resource_constraints")
    return Problem(
        graph=graph_from_dict(data["graph"]),
        latency_constraint=int(data["latency_constraint"]),
        latency_model=_model_from_dict(data["latency_model"]),
        area_model=_model_from_dict(data["area_model"]),
        resource_constraints=(
            {k: int(v) for k, v in constraints.items()}
            if constraints is not None
            else None
        ),
    )


def allocation_request_to_dict(request: "AllocationRequest") -> Dict:
    """Serialise an :class:`~repro.engine.results.AllocationRequest`."""
    payload = {
        "kind": "allocation-request",
        "problem": problem_to_dict(request.problem),
        "allocator": request.allocator,
        "options": dict(request.options),
        "label": request.label,
        "timeout": request.timeout,
    }
    if request.priority is not None:
        # Emitted only when set, so artifacts written before the field
        # existed (shard manifests, committed fixtures) stay
        # byte-stable under a round-trip.
        payload["priority"] = request.priority
    return payload


def allocation_request_from_dict(data: Dict) -> "AllocationRequest":
    """Deserialise an :class:`~repro.engine.results.AllocationRequest`."""
    if data.get("kind") != "allocation-request":
        raise ValueError(
            f"not an allocation-request payload: {data.get('kind')!r}"
        )
    from ..engine.results import AllocationRequest

    return AllocationRequest(
        problem=problem_from_dict(data["problem"]),
        allocator=data["allocator"],
        options=dict(data.get("options") or {}),
        label=data.get("label"),
        timeout=data.get("timeout"),
        priority=data.get("priority"),
    )


# ----------------------------------------------------------------------
# delta edits
# ----------------------------------------------------------------------

EDIT_KIND = "delta-edit"


def edit_to_dict(edit: "Edit") -> Dict:
    """Serialise one :data:`repro.core.delta.Edit`."""
    from ..core.delta import ConstraintEdit, DeadlineEdit, WordlengthEdit

    if isinstance(edit, DeadlineEdit):
        return {"kind": EDIT_KIND, "edit": "deadline", "latency": edit.latency}
    if isinstance(edit, WordlengthEdit):
        return {
            "kind": EDIT_KIND,
            "edit": "wordlength",
            "operation": edit.operation,
            "widths": list(edit.widths),
        }
    if isinstance(edit, ConstraintEdit):
        return {
            "kind": EDIT_KIND,
            "edit": "constraint",
            "resource_kind": edit.kind,
            "limit": edit.limit,
        }
    raise ValueError(f"not an edit: {edit!r}")


def edit_from_dict(data: Dict) -> "Edit":
    """Deserialise one :data:`repro.core.delta.Edit`."""
    from ..core.delta import ConstraintEdit, DeadlineEdit, WordlengthEdit

    if not isinstance(data, dict) or data.get("kind") != EDIT_KIND:
        kind = data.get("kind") if isinstance(data, dict) else type(data).__name__
        raise ValueError(f"not a {EDIT_KIND} payload: {kind!r}")
    which = data.get("edit")
    if which == "deadline":
        return DeadlineEdit(latency=int(data["latency"]))
    if which == "wordlength":
        return WordlengthEdit(
            operation=data["operation"], widths=tuple(data["widths"])
        )
    if which == "constraint":
        limit = data.get("limit")
        return ConstraintEdit(
            kind=data["resource_kind"],
            limit=int(limit) if limit is not None else None,
        )
    raise ValueError(f"unknown edit type: {which!r}")


# ----------------------------------------------------------------------
# allocation-result envelopes
# ----------------------------------------------------------------------

def allocation_result_to_dict(result: "AllocationResult") -> Dict:
    """Serialise an :class:`~repro.engine.results.AllocationResult`."""
    payload = {
        "kind": "allocation-result",
        "allocator": result.allocator,
        "datapath": (
            datapath_to_dict(result.datapath)
            if result.datapath is not None
            else None
        ),
        "seconds": result.seconds,
        "iterations": result.iterations,
        "valid": result.valid,
        "error": result.error,
        "extras": dict(result.extras),
        "label": result.label,
        "cached": result.cached,
    }
    if result.delta is not None:
        payload["delta"] = dict(result.delta)
    return payload


def allocation_result_from_dict(data: Dict) -> "AllocationResult":
    """Deserialise an :class:`~repro.engine.results.AllocationResult`."""
    if data.get("kind") != "allocation-result":
        raise ValueError(
            f"not an allocation-result payload: {data.get('kind')!r}"
        )
    from ..engine.results import AllocationResult

    datapath = data.get("datapath")
    delta = data.get("delta")
    return AllocationResult(
        allocator=data["allocator"],
        datapath=datapath_from_dict(datapath) if datapath is not None else None,
        seconds=float(data.get("seconds", 0.0)),
        iterations=int(data.get("iterations", 0)),
        valid=data.get("valid"),
        error=data.get("error"),
        extras=dict(data.get("extras") or {}),
        label=data.get("label"),
        cached=bool(data.get("cached", False)),
        delta=dict(delta) if delta is not None else None,
    )


# ----------------------------------------------------------------------
# file helpers
# ----------------------------------------------------------------------

def save_json(payload: Dict, path: PathLike) -> None:
    """Write a serialised payload as pretty-printed JSON."""
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_json(path: PathLike) -> Dict:
    """Read a JSON payload written by :func:`save_json`."""
    return json.loads(Path(path).read_text())
