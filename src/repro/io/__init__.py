"""Serialisation: JSON round-trips, service payloads, Graphviz DOT export."""

from .dot import datapath_to_dot, graph_to_dot
from .service import (
    batch_request_from_dict,
    batch_request_to_dict,
    batch_results_from_dict,
    batch_results_to_dict,
    error_to_dict,
)
from .json_io import (
    allocation_request_from_dict,
    allocation_request_to_dict,
    allocation_result_from_dict,
    allocation_result_to_dict,
    datapath_from_dict,
    datapath_to_dict,
    graph_from_dict,
    graph_to_dict,
    load_json,
    netlist_from_dict,
    netlist_to_dict,
    problem_from_dict,
    problem_to_dict,
    save_json,
    trace_event_from_dict,
    trace_event_to_dict,
)

__all__ = [
    "allocation_request_from_dict",
    "allocation_request_to_dict",
    "allocation_result_from_dict",
    "allocation_result_to_dict",
    "batch_request_from_dict",
    "batch_request_to_dict",
    "batch_results_from_dict",
    "batch_results_to_dict",
    "error_to_dict",
    "datapath_from_dict",
    "datapath_to_dict",
    "datapath_to_dot",
    "graph_from_dict",
    "graph_to_dict",
    "graph_to_dot",
    "load_json",
    "netlist_from_dict",
    "netlist_to_dict",
    "problem_from_dict",
    "problem_to_dict",
    "save_json",
    "trace_event_from_dict",
    "trace_event_to_dict",
]
