"""Graphviz DOT export of sequencing graphs and allocated datapaths.

``graph_to_dot`` renders the data-dependence structure; ``datapath_to_dot``
additionally encodes the allocation -- operations are grouped per physical
unit (one colour per unit) and labelled with their start cycle, making
shared units and serialisation visually obvious.  Output is plain DOT
text; render with any Graphviz installation (``dot -Tpng``).
"""

from __future__ import annotations

from typing import Dict, List

from ..core.solution import Datapath
from ..ir.seqgraph import SequencingGraph

__all__ = ["graph_to_dot", "datapath_to_dot"]

_PALETTE = [
    "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6",
    "#ffff99", "#1f78b4", "#33a02c", "#e31a1c", "#ff7f00",
]


def _quote(text: str) -> str:
    return '"' + text.replace('"', r"\"") + '"'


def graph_to_dot(graph: SequencingGraph, name: str = "dfg") -> str:
    """Render the sequencing graph as a DOT digraph."""
    lines: List[str] = [f"digraph {name} {{", "    rankdir=TB;"]
    for op in graph.operations:
        label = f"{op.name}\\n{op.kind} {'x'.join(map(str, op.operand_widths))}"
        shape = "box" if op.resource_kind == "mul" else "ellipse"
        lines.append(f"    {_quote(op.name)} [label={_quote(label)}, shape={shape}];")
    for producer, consumer in graph.edges():
        lines.append(f"    {_quote(producer)} -> {_quote(consumer)};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def datapath_to_dot(
    graph: SequencingGraph, datapath: Datapath, name: str = "datapath"
) -> str:
    """Render an allocated datapath: colour per unit, start cycle labels."""
    unit_of: Dict[str, int] = {}
    for index, clique in enumerate(datapath.binding.cliques):
        for op_name in clique.ops:
            unit_of[op_name] = index

    lines: List[str] = [
        f"digraph {name} {{",
        "    rankdir=TB;",
        f"    label={_quote(f'area={datapath.area:g}  latency={datapath.makespan}')};",
    ]
    for op in graph.operations:
        unit = unit_of[op.name]
        colour = _PALETTE[unit % len(_PALETTE)]
        resource = datapath.binding.cliques[unit].resource
        label = (
            f"{op.name}\\n@{datapath.schedule[op.name]} "
            f"(+{datapath.bound_latencies[op.name]})\\nunit {unit}: {resource}"
        )
        shape = "box" if op.resource_kind == "mul" else "ellipse"
        lines.append(
            f"    {_quote(op.name)} [label={_quote(label)}, shape={shape}, "
            f"style=filled, fillcolor={_quote(colour)}];"
        )
    for producer, consumer in graph.edges():
        lines.append(f"    {_quote(producer)} -> {_quote(consumer)};")
    lines.append("}")
    return "\n".join(lines) + "\n"
