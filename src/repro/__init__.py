"""repro -- heuristic datapath allocation for multiple wordlength systems.

A production-quality reproduction of Constantinides, Cheung & Luk,
*Heuristic Datapath Allocation for Multiple Wordlength Systems*,
DATE 2001.  The package provides:

* the paper's heuristic (:func:`allocate` / Algorithm DPAlloc) solving
  the combined scheduling, resource-binding and wordlength-selection
  problem;
* the substrates it stands on: sequencing graphs, resource-wordlength
  models, the wordlength compatibility graph, an Eqn.-3 list scheduler,
  Bindselect, and wordlength refinement;
* the comparison baselines of the paper's evaluation (optimal ILP [5],
  two-stage binding [4], descending-wordlength clique partitioning [14],
  uniform wordlength);
* workload generators (TGFF adaptation, DSP kernels) and the experiment
  harness regenerating every figure and table of the evaluation.

Quickstart::

    from repro import Problem, allocate
    from repro.gen import fir_filter

    graph = fir_filter(taps=4)
    problem = Problem(graph, latency_constraint=20)
    datapath = allocate(problem)
    print(datapath.summary())
"""

from .analysis import ValidationError, is_valid, validate_datapath
from .core import (
    Binding,
    BoundClique,
    Datapath,
    DPAllocOptions,
    InfeasibleError,
    Problem,
    WordlengthCompatibilityGraph,
    allocate,
)
from .ir import DFGBuilder, Operation, SequencingGraph
from .resources import (
    AreaModel,
    LatencyModel,
    ResourceType,
    SonicAreaModel,
    SonicLatencyModel,
    extract_resource_set,
)

__version__ = "1.0.0"

__all__ = [
    "AreaModel",
    "Binding",
    "BoundClique",
    "Datapath",
    "DFGBuilder",
    "DPAllocOptions",
    "InfeasibleError",
    "LatencyModel",
    "Operation",
    "Problem",
    "ResourceType",
    "SequencingGraph",
    "SonicAreaModel",
    "SonicLatencyModel",
    "ValidationError",
    "WordlengthCompatibilityGraph",
    "allocate",
    "extract_resource_set",
    "is_valid",
    "validate_datapath",
    "__version__",
]
