"""repro -- heuristic datapath allocation for multiple wordlength systems.

A production-quality reproduction of Constantinides, Cheung & Luk,
*Heuristic Datapath Allocation for Multiple Wordlength Systems*,
DATE 2001.  The package provides:

* the paper's heuristic (:func:`allocate` / Algorithm DPAlloc) solving
  the combined scheduling, resource-binding and wordlength-selection
  problem;
* the substrates it stands on: sequencing graphs, resource-wordlength
  models, the wordlength compatibility graph, an Eqn.-3 list scheduler,
  Bindselect, and wordlength refinement;
* the comparison baselines of the paper's evaluation (optimal ILP [5],
  two-stage binding [4], descending-wordlength clique partitioning [14],
  uniform wordlength);
* the **engine** (:mod:`repro.engine`): a registry unifying every
  strategy behind one name-based dispatch, a uniform
  :class:`AllocationResult` envelope (datapath, timing, validity,
  failure reason), and batch execution with process-pool parallelism,
  per-run timeouts, and an on-disk result cache keyed by
  ``Problem.fingerprint()``;
* workload generators (TGFF adaptation, DSP kernels) and the experiment
  harness regenerating every figure and table of the evaluation through
  the engine.

Quickstart::

    from repro import AllocationRequest, Engine, Problem
    from repro.gen import fir_filter

    graph = fir_filter(taps=4)
    problem = Problem(graph, latency_constraint=20)

    engine = Engine()
    result = engine.run(AllocationRequest(problem, "dpalloc"))
    if result.ok:
        print(result.datapath.summary())     # validated solution
    else:
        print(result.error)                  # e.g. "infeasible: ..."

    # Compare strategies / sweep problems in one parallel, cacheable batch:
    from repro import allocator_names
    results = engine.run_batch(
        [AllocationRequest(problem, name) for name in allocator_names()],
        workers=4,
    )

The direct entry points remain available for single in-process runs::

    from repro import allocate
    datapath = allocate(problem)    # raises InfeasibleError on failure
"""

from .analysis import ValidationError, is_valid, validate_datapath
from .core import (
    Binding,
    BoundClique,
    Datapath,
    DPAllocOptions,
    InfeasibleError,
    Problem,
    TraceEvent,
    WordlengthCompatibilityGraph,
    allocate,
    run_pipeline,
)
from .engine import (
    AllocationRequest,
    AllocationResult,
    Engine,
    allocator_names,
    get_allocator,
    register_allocator,
)
from .ir import DFGBuilder, Operation, SequencingGraph
from .resources import (
    AreaModel,
    LatencyModel,
    ResourceType,
    SonicAreaModel,
    SonicLatencyModel,
    extract_resource_set,
)

__version__ = "1.2.0"

__all__ = [
    "AllocationRequest",
    "AllocationResult",
    "AreaModel",
    "Binding",
    "BoundClique",
    "Datapath",
    "DFGBuilder",
    "DPAllocOptions",
    "Engine",
    "InfeasibleError",
    "LatencyModel",
    "Operation",
    "Problem",
    "ResourceType",
    "SequencingGraph",
    "SonicAreaModel",
    "SonicLatencyModel",
    "TraceEvent",
    "ValidationError",
    "WordlengthCompatibilityGraph",
    "allocate",
    "allocator_names",
    "extract_resource_set",
    "get_allocator",
    "is_valid",
    "register_allocator",
    "run_pipeline",
    "validate_datapath",
    "__version__",
]
