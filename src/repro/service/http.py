"""Shared asyncio HTTP/1.1 plumbing for the service processes.

One tiny, dependency-free HTTP implementation serves both network
daemons in this package -- the single-engine worker
(:class:`repro.service.AllocationServer`) and the fleet coordinator
(:class:`repro.service.FleetCoordinator`):

* :class:`HttpServerBase` -- connection handling, request parsing,
  bounded bodies, JSON responses, and route dispatch.  Subclasses
  implement :meth:`~HttpServerBase.routes` mapping paths to handlers;
  a route may attach fixed extra response headers (how the unversioned
  deprecation shim emits ``Deprecation: true``).
* :class:`HttpError` -- typed refusal; the base turns it into a
  ``service-error`` JSON body with the matching HTTP status (and the
  optional machine-readable ``error_code``).
* :func:`fetch_json` -- the matching asyncio client, used by the
  coordinator to talk to its workers without blocking the event loop.
* :class:`ServerThreadBase` -- run any :class:`HttpServerBase` on a
  daemon thread as a context manager (tests, benchmarks, notebooks).

The surface stays deliberately minimal: HTTP/1.1, one request per
connection, ``Connection: close``.  Enough for the thin clients, curl,
and a load balancer's health checks, with zero dependencies.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import (
    Any,
    Awaitable,
    Callable,
    Dict,
    Mapping,
    Optional,
    Tuple,
)

from ..io.service import error_to_dict

__all__ = [
    "DEFAULT_MAX_BODY_BYTES",
    "HttpError",
    "HttpServerBase",
    "ServerThreadBase",
    "fetch_json",
]

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}

# Generous but bounded: a batch of large TGFF graphs is ~MBs; anything
# beyond this is a client bug, not a workload.
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024

#: A route handler: request body bytes -> (status, JSON payload).
Handler = Callable[[bytes], Awaitable[Tuple[int, Dict[str, Any]]]]
#: Route table entry: (HTTP method, handler, fixed extra headers).
Route = Tuple[str, Handler, Optional[Mapping[str, str]]]


class HttpError(Exception):
    """A request the service refuses; becomes a JSON error response.

    ``error_code`` flows into the ``service-error`` payload so clients
    can branch on typed refusals (``"shed"``, ``"worker_exhausted"``)
    without parsing prose.
    """

    def __init__(
        self, status: int, message: str, error_code: Optional[str] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.error_code = error_code


class HttpServerBase:
    """Asyncio HTTP/JSON server core; subclasses supply the routes."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ) -> None:
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    def routes(self) -> Dict[str, Route]:
        """Path -> (method, handler, fixed extra response headers)."""
        raise NotImplementedError

    async def _on_start(self) -> None:
        """Called once the listening socket is bound."""

    async def _on_stop(self) -> None:
        """Called after the listening socket is closed."""

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (non-blocking)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        await self._on_start()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._on_stop()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        headers: Optional[Mapping[str, str]] = None
        try:
            try:
                method, path, body = await self._read_request(reader)
                status, payload, headers = await self._dispatch(
                    method, path, body
                )
            except HttpError as exc:
                status, payload = exc.status, error_to_dict(
                    exc.status, exc.message, error_code=exc.error_code
                )
            except Exception as exc:  # noqa: BLE001 -- never a hung socket
                status, payload = 500, error_to_dict(
                    500, f"{type(exc).__name__}: {exc}"
                )
            await self._write_response(writer, status, payload, headers)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise HttpError(400, f"malformed request line: {request_line!r}")
        method, target = parts[0].upper(), parts[1]
        path = target.split("?", 1)[0]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise HttpError(400, "bad Content-Length") from None
        if content_length < 0 or content_length > self.max_body_bytes:
            raise HttpError(
                413, f"body of {content_length} bytes exceeds the "
                     f"{self.max_body_bytes}-byte limit"
            )
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        return method, path, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        extra_headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        lines.append("Connection: close")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any], Optional[Mapping[str, str]]]:
        routes = self.routes()
        route = routes.get(path)
        if route is None:
            raise HttpError(
                404, f"unknown path {path!r}; endpoints: {sorted(routes)}"
            )
        expected, handler, headers = route
        if method != expected:
            raise HttpError(405, f"{path} expects {expected}, got {method}")
        status, payload = await handler(body)
        return status, payload, headers

    def _parse_json(self, body: bytes) -> Any:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise HttpError(400, f"request body is not JSON: {exc}") from None


async def fetch_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[Dict[str, Any]] = None,
    timeout: float = 600.0,
) -> Tuple[int, Any]:
    """One HTTP/JSON exchange over a fresh connection, fully async.

    Returns ``(status, parsed body)`` -- the caller decides what a
    non-200 means.  Transport failures surface as the underlying
    ``OSError`` / ``asyncio.TimeoutError``; the coordinator treats both
    as "this worker is gone" and requeues.
    """

    async def _exchange() -> Tuple[int, Any]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            body = (
                json.dumps(payload, sort_keys=True).encode("utf-8")
                if payload is not None
                else b""
            )
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("latin-1")
            writer.write(head + body)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split(None, 2)
            if len(parts) < 2 or not parts[1].isdigit():
                raise ConnectionError(
                    f"malformed status line: {status_line!r}"
                )
            status = int(parts[1])
            content_length: Optional[int] = None
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    content_length = int(value.strip())
            data = (
                await reader.readexactly(content_length)
                if content_length is not None
                else await reader.read()
            )
            parsed = json.loads(data.decode("utf-8")) if data else None
            return status, parsed
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    return await asyncio.wait_for(_exchange(), timeout=timeout)


class ServerThreadBase:
    """Run an :class:`HttpServerBase` on a daemon thread.

    Context manager used by the tests, the benchmarks and the docs
    fences: enter -> server is bound (``.url`` is live); exit -> server
    stopped, thread joined.  Subclasses implement :meth:`_create`.
    """

    thread_name = "repro-http"

    def __init__(self) -> None:
        self.server: Optional[HttpServerBase] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def _create(self) -> HttpServerBase:
        raise NotImplementedError

    @property
    def url(self) -> str:
        assert self.server is not None, "server not started"
        return self.server.url

    def __enter__(self) -> "ServerThreadBase":
        self._thread = threading.Thread(
            target=self._main, name=self.thread_name, daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise RuntimeError(
                "server failed to start"
            ) from self._startup_error
        if self.server is None:
            raise RuntimeError("server did not start within 30s")
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def _main(self) -> None:
        try:
            asyncio.run(self._run())
        except BaseException as exc:  # noqa: BLE001 -- surface to __enter__
            self._startup_error = exc
            self._ready.set()

    async def _run(self) -> None:
        server = self._create()
        await server.start()
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.server = server
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await server.stop()
