"""Fleet coordinator: fingerprint-routed fan-out over allocation workers.

:class:`FleetCoordinator` is an asyncio HTTP process (``repro fleet``)
that fronts N ``repro serve`` workers behind the *same* v1 wire surface
a single worker exposes -- ``POST /v1/allocate``, ``POST /v1/batch``,
``POST /v1/delta``, ``GET /v1/healthz``, ``GET /v1/stats`` (plus the
unversioned deprecation shim) -- so :class:`~repro.service.ServiceClient`
talks to a fleet exactly as it talks to one server.

Four mechanisms, in request order:

* **Admission control** -- every request names a priority class
  (``interactive`` / ``normal`` / ``bulk``, default ``normal``); each
  class has a bounded in-coordinator queue.  A full class sheds with a
  typed HTTP 429 ``service-error`` (``error_code: "shed"``), and
  ``/v1/stats`` reports per-class p50/p95 latency and shed counts.
* **Fleet-wide dedup** -- requests carrying a ``fingerprint`` routing
  hint are checked against an in-memory LRU memo of response payloads
  and, below it, the shared result store the workers spill to
  (:class:`repro.engine.cache.ResultCache` with ``shared_dir``).
  Concurrent identical requests are single-flighted across the whole
  fleet, so N clients asking for the same solve cost one worker run.
  Memo **writes** are keyed by the worker-reported ``content_key``
  (computed from the parsed problem), never by the client's claimed
  fingerprint: a lying client can only mis-route or mis-serve itself.
* **Fingerprint routing** -- rendezvous (highest-random-weight) hashing
  of the routing key over the healthy workers, so one worker's death
  only remaps that worker's keys and repeated solves of one problem
  keep landing where the caches (result cache, delta replay artifacts)
  are already warm.
* **Health + requeue** -- a background probe loop marks workers
  dead/alive; a forward that fails at the transport level (connection
  refused, reset, timed out) marks the worker dead and requeues the
  request on the next-ranked worker, up to a bounded attempt budget,
  after which the client receives a typed HTTP 503
  (``error_code: "worker_exhausted"``).  Zero requests are lost when a
  worker is killed mid-batch.

Envelopes pass through byte-untouched except for the non-canonical
bookkeeping fields (``label``, ``cached``) that engine cache hits
rewrite too, so a fleet response is canonical-byte-identical to the
offline ``Engine.run_batch`` envelope for the same request.

:class:`WorkerPool` spawns and supervises local ``repro serve``
subprocesses (free ports, shared store wiring, health-gated startup)
for ``repro fleet --workers N``, the benchmark and the CI smoke;
:class:`FleetThread` runs a coordinator on a daemon thread for tests.
"""

from __future__ import annotations

import asyncio
import functools
import hashlib
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)
from urllib.parse import urlsplit

from .. import __version__
from ..engine.cache import ResultCache
from ..engine.engine import (
    content_key_from_fingerprint,
    versioned_content_key,
)
from ..engine.results import DEFAULT_PRIORITY, PRIORITY_CLASSES
from ..io.service import (
    BATCH_REQUEST_KIND,
    BATCH_RESULTS_KIND,
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    check_schema_version,
)
from .http import (
    DEFAULT_MAX_BODY_BYTES,
    HttpError,
    HttpServerBase,
    Route,
    ServerThreadBase,
    fetch_json,
)
from .server import DEPRECATION_HEADERS

__all__ = [
    "DEFAULT_QUEUE_LIMITS",
    "FleetCoordinator",
    "FleetThread",
    "WorkerPool",
    "free_port",
    "spawn_worker",
]

#: Default per-class admission bounds (queued + in flight, per class).
DEFAULT_QUEUE_LIMITS: Mapping[str, int] = {
    "interactive": 16,
    "normal": 64,
    "bulk": 256,
}

_LATENCY_WINDOW = 1024
_MEMO_MAX_ENTRIES = 4096


@dataclass
class WorkerState:
    """What the coordinator knows about one worker."""

    url: str
    host: str
    port: int
    healthy: bool = True
    consecutive_failures: int = 0
    in_flight: int = 0
    forwards: int = 0
    pid: Optional[int] = None

    def snapshot(self) -> Dict[str, Any]:
        return {
            "url": self.url,
            "healthy": self.healthy,
            "in_flight": self.in_flight,
            "forwards": self.forwards,
            "consecutive_failures": self.consecutive_failures,
            "pid": self.pid,
        }


def _parse_worker_url(url: str) -> WorkerState:
    parts = urlsplit(url if "//" in url else f"http://{url}")
    if not parts.hostname or not parts.port:
        raise ValueError(
            f"worker url {url!r} needs an explicit host and port"
        )
    host, port = parts.hostname, parts.port
    return WorkerState(url=f"http://{host}:{port}", host=host, port=port)


#: Transport-level failures that mean "requeue on another worker".
_TRANSPORT_ERRORS = (
    OSError,
    ConnectionError,
    asyncio.TimeoutError,
    asyncio.IncompleteReadError,
)


class FleetCoordinator(HttpServerBase):
    """HTTP coordinator routing v1 requests over a worker fleet.

    Args:
        worker_urls: base URLs of the workers (``http://host:port``).
            Workers may be spawned by :class:`WorkerPool` or launched
            externally (``repro serve``); the coordinator only routes,
            it never restarts processes.
        host/port: coordinator bind address (``port=0`` picks freely).
        shared_dir: the shared result store the workers spill to; read
            through on memo misses so a solve cached by *any* worker
            (now or in a previous fleet) is served without a forward.
        queue_limits: per-priority-class admission bounds; missing
            classes take :data:`DEFAULT_QUEUE_LIMITS`.
        max_attempts: total forward attempts per request (first try +
            requeues) before a typed 503 ``worker_exhausted``.
        health_interval: seconds between background worker probes.
        health_timeout: per-probe socket budget.
        worker_timeout: per-forward socket budget (must exceed the
            longest legitimate solve; a hung worker is cut off here and
            the request requeued).
        memo_max_entries: LRU bound of the in-memory response memo.
    """

    def __init__(
        self,
        worker_urls: Sequence[str],
        host: str = "127.0.0.1",
        port: int = 0,
        shared_dir: Optional[Any] = None,
        queue_limits: Optional[Mapping[str, int]] = None,
        max_attempts: int = 3,
        health_interval: float = 0.5,
        health_timeout: float = 2.0,
        worker_timeout: float = 600.0,
        memo_max_entries: int = _MEMO_MAX_ENTRIES,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ) -> None:
        super().__init__(host=host, port=port, max_body_bytes=max_body_bytes)
        if not worker_urls:
            raise ValueError("FleetCoordinator needs at least one worker url")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.workers: List[WorkerState] = [
            _parse_worker_url(url) for url in worker_urls
        ]
        self.max_attempts = max_attempts
        self.health_interval = health_interval
        self.health_timeout = health_timeout
        self.worker_timeout = worker_timeout
        self.memo_max_entries = memo_max_entries
        self._store = (
            ResultCache(shared_dir) if shared_dir is not None else None
        )
        self._memo: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._flights: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        limits = dict(DEFAULT_QUEUE_LIMITS)
        for name, limit in (queue_limits or {}).items():
            if name not in PRIORITY_CLASSES:
                raise ValueError(
                    f"unknown priority class {name!r}; "
                    f"classes: {PRIORITY_CLASSES}"
                )
            if limit < 1:
                raise ValueError(f"queue limit for {name!r} must be >= 1")
            limits[name] = int(limit)
        self._class_limits: Dict[str, int] = limits
        self._class_counts: Dict[str, int] = dict.fromkeys(PRIORITY_CLASSES, 0)
        self._class_admitted: Dict[str, int] = dict.fromkeys(
            PRIORITY_CLASSES, 0
        )
        self._class_shed: Dict[str, int] = dict.fromkeys(PRIORITY_CLASSES, 0)
        self._class_latencies: Dict[str, Deque[float]] = {
            name: deque(maxlen=_LATENCY_WINDOW) for name in PRIORITY_CLASSES
        }
        self._requests_total = 0
        self._completed = 0
        self._failed = 0
        self._deduplicated = 0
        self._memo_hits = 0
        self._store_hits = 0
        self._requeues = 0
        self._started_at = time.monotonic()
        self._health_task: Optional["asyncio.Task[None]"] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def _on_start(self) -> None:
        self._health_task = asyncio.get_running_loop().create_task(
            self._health_loop()
        )

    async def _on_stop(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    async def _health_loop(self) -> None:
        while True:
            await self._probe_workers()
            await asyncio.sleep(self.health_interval)

    async def _probe_workers(self) -> None:
        """Probe every worker once; flip ``healthy`` on the evidence."""

        async def probe(worker: WorkerState) -> None:
            try:
                status, _ = await fetch_json(
                    worker.host, worker.port, "GET", "/v1/healthz",
                    timeout=self.health_timeout,
                )
                alive = status == 200
            except _TRANSPORT_ERRORS:
                alive = False
            if alive:
                worker.healthy = True
                worker.consecutive_failures = 0
            else:
                worker.healthy = False
                worker.consecutive_failures += 1

        await asyncio.gather(*(probe(worker) for worker in self.workers))

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def ranked_workers(self, key: str) -> List[WorkerState]:
        """Healthy workers by rendezvous (HRW) score for ``key``, best
        first; falls back to all workers when none look healthy (the
        evidence may be stale -- the forward itself is the last word).
        """
        pool = [w for w in self.workers if w.healthy] or list(self.workers)
        return sorted(
            pool,
            key=lambda w: hashlib.sha256(
                f"{key}|{w.url}".encode("utf-8")
            ).digest(),
            reverse=True,
        )

    async def _route_and_forward(
        self, routing_key: str, path: str, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Forward to the ranked workers with bounded requeue.

        Transport failures (dead or hung worker) mark the worker
        unhealthy and requeue on the next-ranked one; a worker's
        non-200 *answer* is a deterministic refusal and propagates to
        the client without retry.
        """
        ranked = self.ranked_workers(routing_key)
        attempts = 0
        last_failure = "no workers"
        for worker in ranked:
            if attempts >= self.max_attempts:
                break
            attempts += 1
            worker.in_flight += 1
            try:
                status, body = await fetch_json(
                    worker.host, worker.port, "POST", path, payload,
                    timeout=self.worker_timeout,
                )
            except _TRANSPORT_ERRORS as exc:
                worker.healthy = False
                worker.consecutive_failures += 1
                self._requeues += 1
                last_failure = (
                    f"{worker.url}: {type(exc).__name__}: {exc}".rstrip(": ")
                )
                continue
            finally:
                worker.in_flight -= 1
            worker.healthy = True
            worker.consecutive_failures = 0
            worker.forwards += 1
            if status != 200:
                detail = body if isinstance(body, dict) else {}
                raise HttpError(
                    status,
                    str(detail.get("error") or f"worker answered {status}"),
                    error_code=detail.get("error_code"),
                )
            if not isinstance(body, dict):
                raise HttpError(502, f"worker {worker.url} answered non-JSON")
            return body
        raise HttpError(
            503,
            f"request failed on every worker tried "
            f"({attempts} attempt(s), budget {self.max_attempts}); "
            f"last: {last_failure}",
            error_code="worker_exhausted",
        )

    # ------------------------------------------------------------------
    # dedup: memo + shared store + single flight
    # ------------------------------------------------------------------
    @staticmethod
    def _lookup_key(entry: Mapping[str, Any]) -> Optional[str]:
        """The shared-store/memo key a *hinted* request can be looked
        up under: the same versioned content key the worker will
        compute, derived from the client's claimed fingerprint.  A lie
        here only serves the liar a wrong cached envelope; writes never
        use this key.
        """
        fingerprint = entry.get("fingerprint")
        allocator = entry.get("allocator")
        options = entry.get("options") or {}
        if not isinstance(fingerprint, str) or not fingerprint:
            return None
        if not isinstance(allocator, str) or not isinstance(options, dict):
            return None
        return versioned_content_key(
            content_key_from_fingerprint(fingerprint, allocator, options)
        )

    @staticmethod
    def _deterministic(payload: Mapping[str, Any]) -> bool:
        """Mirror of ``Engine._cache_store`` eligibility: success and
        infeasibility are facts; timeouts and crashes are not."""
        error = payload.get("error")
        return error is None or (
            isinstance(error, str) and error.startswith("infeasible")
        )

    def _memo_get(self, key: str) -> Optional[Dict[str, Any]]:
        hit = self._memo.get(key)
        if hit is not None:
            self._memo.move_to_end(key)
        return hit

    def _memo_put(self, key: str, payload: Dict[str, Any]) -> None:
        self._memo[key] = payload
        self._memo.move_to_end(key)
        while len(self._memo) > self.memo_max_entries:
            self._memo.popitem(last=False)

    def _memo_store_response(self, payload: Mapping[str, Any]) -> None:
        """Adopt a worker response into the memo, keyed by the
        *worker-reported* ``content_key`` -- the authoritative identity
        computed from the parsed problem, immune to client hints."""
        key = payload.get("content_key")
        if not isinstance(key, str) or not key:
            return
        if not self._deterministic(payload):
            return
        self._memo_put(key, dict(payload))

    def _serve_memo_hit(
        self, pristine: Mapping[str, Any], label: Any, v1: bool
    ) -> Dict[str, Any]:
        """A dedup hit, re-labelled for this request like an engine
        cache hit (label and ``cached`` are non-canonical)."""
        payload = dict(pristine)
        payload["label"] = label
        payload["cached"] = True
        return self._finish_payload(payload, v1)

    @staticmethod
    def _finish_payload(payload: Dict[str, Any], v1: bool) -> Dict[str, Any]:
        if v1:
            payload["schema_version"] = SCHEMA_VERSION
        else:
            payload.pop("schema_version", None)
            payload.pop("content_key", None)
        return payload

    def _store_read(self, key: str) -> Optional[str]:
        if self._store is None:
            return None
        try:
            return self._store.read(key)
        except OSError:
            return None

    # ------------------------------------------------------------------
    # request pipeline
    # ------------------------------------------------------------------
    def _check_version(self, data: Any) -> None:
        try:
            check_schema_version(data)
        except ValueError as exc:
            raise HttpError(400, str(exc)) from None

    @staticmethod
    def _class_of(entry: Mapping[str, Any]) -> str:
        name = entry.get("priority")
        if name is None:
            return DEFAULT_PRIORITY
        if name not in PRIORITY_CLASSES:
            raise HttpError(
                400,
                f"priority must be one of {list(PRIORITY_CLASSES)}, "
                f"got {name!r}",
            )
        return str(name)

    def _admit(self, wanted: Mapping[str, int]) -> None:
        """Reserve admission slots for every class in ``wanted`` or
        shed the whole unit of work with a typed 429."""
        over = [
            name for name, count in wanted.items()
            if self._class_counts[name] + count > self._class_limits[name]
        ]
        if over:
            for name, count in wanted.items():
                self._class_shed[name] += count
            detail = ", ".join(
                f"{name} {self._class_counts[name]}/{self._class_limits[name]}"
                for name in sorted(over)
            )
            raise HttpError(
                429,
                f"admission queue full for class(es): {detail}; shed",
                error_code="shed",
            )
        for name, count in wanted.items():
            self._class_counts[name] += count
            self._class_admitted[name] += count

    def _release(self, wanted: Mapping[str, int]) -> None:
        for name, count in wanted.items():
            self._class_counts[name] -= count

    async def _serve_entry(
        self, entry: Dict[str, Any], v1: bool
    ) -> Dict[str, Any]:
        """One allocation request end to end: memo -> shared store ->
        fleet-wide single flight -> routed forward with requeue."""
        label = entry.get("label")
        memo_key = self._lookup_key(entry)
        if memo_key is not None:
            hit = self._memo_get(memo_key)
            if hit is not None:
                self._memo_hits += 1
                self._deduplicated += 1
                return self._serve_memo_hit(hit, label, v1)
            text = await asyncio.get_running_loop().run_in_executor(
                None, self._store_read, memo_key
            )
            if text is not None:
                adopted = self._adopt_store_entry(memo_key, text)
                if adopted is not None:
                    self._store_hits += 1
                    self._deduplicated += 1
                    return self._serve_memo_hit(adopted, label, v1)
        if memo_key is None:
            payload = await self._dispatch_entry(entry, memo_key)
            return self._finish_payload(dict(payload), v1)

        flight_key = f"{memo_key}@{entry.get('timeout')!r}"
        existing = self._flights.get(flight_key)
        if existing is not None:
            self._deduplicated += 1
            payload = await asyncio.shield(existing)
            return self._serve_memo_hit(payload, label, v1)
        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._flights[flight_key] = future
        try:
            payload = await self._dispatch_entry(entry, memo_key)
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                future.exception()  # the leader reports it; don't warn
            raise
        else:
            if not future.done():
                future.set_result(payload)
        finally:
            if self._flights.get(flight_key) is future:
                del self._flights[flight_key]
        return self._finish_payload(dict(payload), v1)

    def _adopt_store_entry(
        self, key: str, text: str
    ) -> Optional[Dict[str, Any]]:
        """Parse a shared-store envelope and adopt it into the memo."""
        try:
            payload = json.loads(text)
        except ValueError:
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("kind") != "allocation-result"
        ):
            return None
        payload["content_key"] = key
        self._memo_put(key, payload)
        return payload

    async def _dispatch_entry(
        self, entry: Dict[str, Any], memo_key: Optional[str]
    ) -> Dict[str, Any]:
        routing_key = (
            entry.get("fingerprint")
            or memo_key
            or hashlib.sha256(
                json.dumps(entry, sort_keys=True).encode("utf-8")
            ).hexdigest()
        )
        payload = await self._route_and_forward(
            str(routing_key), "/v1/allocate", entry
        )
        self._memo_store_response(payload)
        return payload

    async def _timed_entry(
        self, entry: Dict[str, Any], cls: str, v1: bool
    ) -> Dict[str, Any]:
        """Serve one admitted entry with latency + outcome accounting."""
        self._requests_total += 1
        began = time.perf_counter()
        try:
            payload = await self._serve_entry(entry, v1)
        except BaseException:
            self._failed += 1
            raise
        self._class_latencies[cls].append(time.perf_counter() - began)
        self._completed += 1
        if payload.get("error") is not None:
            self._failed += 1
        return payload

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def routes(self) -> Dict[str, Route]:
        endpoints = {
            "/healthz": ("GET", self._handle_healthz),
            "/stats": ("GET", self._handle_stats),
            "/allocate": ("POST", self._handle_allocate),
            "/batch": ("POST", self._handle_batch),
            "/delta": ("POST", self._handle_delta),
        }
        table: Dict[str, Route] = {}
        for path, (method, handler) in endpoints.items():
            table[f"/v1{path}"] = (
                method, functools.partial(handler, v1=True), None,
            )
            table[path] = (method, handler, DEPRECATION_HEADERS)
        return table

    async def _handle_healthz(
        self, _body: bytes, v1: bool = False
    ) -> Tuple[int, Dict[str, Any]]:
        healthy = sum(1 for worker in self.workers if worker.healthy)
        payload: Dict[str, Any] = {
            "kind": "service-health",
            "status": "ok" if healthy else "degraded",
            "version": __version__,
            "role": "coordinator",
            "schema_versions": list(SUPPORTED_SCHEMA_VERSIONS),
            "workers": {"total": len(self.workers), "healthy": healthy},
        }
        if v1:
            payload["schema_version"] = SCHEMA_VERSION
        return 200, payload

    async def _handle_stats(
        self, _body: bytes, v1: bool = False
    ) -> Tuple[int, Dict[str, Any]]:
        def percentile(window: List[float], fraction: float) -> Optional[float]:
            if not window:
                return None
            index = min(len(window) - 1, int(fraction * len(window)))
            return round(window[index], 6)

        classes: Dict[str, Any] = {}
        for name in PRIORITY_CLASSES:
            window = sorted(self._class_latencies[name])
            classes[name] = {
                "limit": self._class_limits[name],
                "in_flight": self._class_counts[name],
                "admitted": self._class_admitted[name],
                "shed": self._class_shed[name],
                "latency_p50_seconds": percentile(window, 0.50),
                "latency_p95_seconds": percentile(window, 0.95),
                "latency_window": len(window),
            }
        payload: Dict[str, Any] = {
            "kind": "service-stats",
            "role": "coordinator",
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "requests_total": self._requests_total,
            "completed": self._completed,
            "failed": self._failed,
            "deduplicated": self._deduplicated,
            "requeues": self._requeues,
            "shed_total": sum(self._class_shed.values()),
            "memo": {
                "entries": len(self._memo),
                "max_entries": self.memo_max_entries,
                "hits": self._memo_hits,
                "store_hits": self._store_hits,
            },
            "classes": classes,
            "workers": [worker.snapshot() for worker in self.workers],
        }
        if v1:
            payload["schema_version"] = SCHEMA_VERSION
        return 200, payload

    async def _handle_allocate(
        self, body: bytes, v1: bool = False
    ) -> Tuple[int, Dict[str, Any]]:
        data = self._parse_json(body)
        self._check_version(data)
        if not isinstance(data, dict) or data.get("kind") != "allocation-request":
            raise HttpError(
                400,
                f"not an allocation-request payload: "
                f"{data.get('kind') if isinstance(data, dict) else data!r}",
            )
        cls = self._class_of(data)
        wanted = {cls: 1}
        self._admit(wanted)
        try:
            payload = await self._timed_entry(data, cls, v1)
        finally:
            self._release(wanted)
        return 200, payload

    async def _handle_batch(
        self, body: bytes, v1: bool = False
    ) -> Tuple[int, Dict[str, Any]]:
        data = self._parse_json(body)
        self._check_version(data)
        if not isinstance(data, dict) or data.get("kind") != BATCH_REQUEST_KIND:
            raise HttpError(
                400,
                f"not an {BATCH_REQUEST_KIND} payload: "
                f"{data.get('kind') if isinstance(data, dict) else data!r}",
            )
        entries = data.get("requests")
        if not isinstance(entries, list) or not all(
            isinstance(entry, dict) for entry in entries
        ):
            raise HttpError(
                400, f"{BATCH_REQUEST_KIND}: 'requests' must be a list of "
                     f"allocation-request payloads"
            )
        wanted: Dict[str, int] = {}
        labelled: List[Tuple[Dict[str, Any], str]] = []
        for entry in entries:
            cls = self._class_of(entry)
            wanted[cls] = wanted.get(cls, 0) + 1
            labelled.append((entry, cls))
        # All-or-nothing admission: a batch is one unit of work, and
        # partially shedding it would break results/requests alignment.
        self._admit(wanted)
        try:
            outcomes = await asyncio.gather(*(
                self._timed_entry(entry, cls, v1) for entry, cls in labelled
            ), return_exceptions=True)
        finally:
            self._release(wanted)
        results: List[Dict[str, Any]] = []
        for outcome in outcomes:
            # Let every entry settle (requeues included) before failing
            # the batch on the first hard error.
            if isinstance(outcome, BaseException):
                raise outcome
            results.append(outcome)
        payload: Dict[str, Any] = {
            "kind": BATCH_RESULTS_KIND,
            "results": results,
        }
        if v1:
            payload["schema_version"] = SCHEMA_VERSION
        return 200, payload

    async def _handle_delta(
        self, body: bytes, v1: bool = False
    ) -> Tuple[int, Dict[str, Any]]:
        data = self._parse_json(body)
        self._check_version(data)
        if not isinstance(data, dict):
            raise HttpError(400, "delta-request body must be a JSON object")
        cls = self._class_of(data)
        wanted = {cls: 1}
        self._admit(wanted)
        self._requests_total += 1
        began = time.perf_counter()
        try:
            # Route by the base fingerprint so one base problem's delta
            # solves keep hitting the worker whose replay artifact is
            # already primed.  Deltas are not memoised (they are cheap
            # by design and their envelopes depend on the edit chain).
            routing_key = (
                data.get("fingerprint")
                or data.get("base_fingerprint")
                or hashlib.sha256(body).hexdigest()
            )
            payload = await self._route_and_forward(
                str(routing_key), "/v1/delta", data
            )
        except BaseException:
            self._failed += 1
            raise
        finally:
            self._release(wanted)
        self._class_latencies[cls].append(time.perf_counter() - began)
        self._completed += 1
        if payload.get("error") is not None:
            self._failed += 1
        return 200, self._finish_payload(dict(payload), v1)


class FleetThread(ServerThreadBase):
    """Run a :class:`FleetCoordinator` on a daemon thread (tests)."""

    thread_name = "repro-fleet"

    def __init__(self, **coordinator_kwargs: Any) -> None:
        super().__init__()
        self._kwargs = coordinator_kwargs

    def _create(self) -> FleetCoordinator:
        return FleetCoordinator(**self._kwargs)


# ----------------------------------------------------------------------
# worker process management
# ----------------------------------------------------------------------

def free_port() -> int:
    """Bind-and-release a localhost port; the usual spawn handshake."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return int(sock.getsockname()[1])


def spawn_worker(
    port: int,
    cache_dir: Optional[Any] = None,
    shared_cache_dir: Optional[Any] = None,
    executor: Optional[str] = None,
    max_concurrency: int = 4,
    default_timeout: Optional[float] = None,
) -> "subprocess.Popen[bytes]":
    """Spawn one ``repro serve`` worker subprocess on ``port``.

    The child runs this interpreter and this checkout (``sys.path``
    is propagated through ``PYTHONPATH``), so fleet workers always
    speak the coordinator's schema version.
    """
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--host", "127.0.0.1",
        "--port", str(port),
        "--workers", str(max_concurrency),
    ]
    if cache_dir is not None:
        cmd += ["--cache-dir", str(cache_dir)]
    if shared_cache_dir is not None:
        cmd += ["--shared-cache-dir", str(shared_cache_dir)]
    if executor is not None:
        cmd += ["--executor", executor]
    if default_timeout is not None:
        cmd += ["--timeout", str(default_timeout)]
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root + os.pathsep + existing if existing else package_root
    )
    return subprocess.Popen(
        cmd, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


class WorkerPool:
    """Spawn and supervise N local ``repro serve`` workers.

    Context manager: enter -> every worker answers ``/healthz`` (each
    with its own local cache directory spilling to one shared store);
    exit -> workers terminated, scratch directories removed.  Used by
    ``repro fleet --workers N``, the fleet benchmark, the CI smoke and
    the subprocess tests.
    """

    def __init__(
        self,
        count: int,
        shared_dir: Optional[Any] = None,
        cache_root: Optional[Any] = None,
        executor: str = "process",
        max_concurrency: int = 4,
        default_timeout: Optional[float] = None,
        startup_deadline: float = 60.0,
    ) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.count = count
        self.shared_dir = shared_dir
        self.executor = executor
        self.max_concurrency = max_concurrency
        self.default_timeout = default_timeout
        self.startup_deadline = startup_deadline
        self._cache_root = cache_root
        self._scratch: Optional[str] = None
        self.processes: List["subprocess.Popen[bytes]"] = []
        self.urls: List[str] = []

    def __enter__(self) -> "WorkerPool":
        from .client import ServiceClient

        if self._cache_root is None:
            self._scratch = tempfile.mkdtemp(prefix="repro-fleet-")
            self._cache_root = self._scratch
        root = Path(self._cache_root)
        try:
            for index in range(self.count):
                port = free_port()
                self.processes.append(spawn_worker(
                    port,
                    cache_dir=root / f"worker-{index}",
                    shared_cache_dir=self.shared_dir,
                    executor=self.executor,
                    max_concurrency=self.max_concurrency,
                    default_timeout=self.default_timeout,
                ))
                self.urls.append(f"http://127.0.0.1:{port}")
            for url in self.urls:
                ServiceClient(url, timeout=10.0).wait_healthy(
                    deadline_seconds=self.startup_deadline
                )
        except BaseException:
            self._shutdown()
            raise
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        self._shutdown()

    def kill(self, index: int) -> None:
        """SIGKILL one worker (failure-injection for tests/CI)."""
        self.processes[index].send_signal(signal.SIGKILL)
        self.processes[index].wait(timeout=30.0)

    def _shutdown(self) -> None:
        for process in self.processes:
            if process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + 10.0
        for process in self.processes:
            if process.poll() is None:
                try:
                    process.wait(timeout=max(0.1, deadline - time.monotonic()))
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait(timeout=10.0)
        self.processes = []
        if self._scratch is not None:
            shutil.rmtree(self._scratch, ignore_errors=True)
            self._scratch = None
