"""repro.service -- the allocation engine as an async network service.

Four layers, each usable on its own:

* :class:`AsyncEngine` -- ``await``-able front-end over
  :class:`repro.engine.Engine`: semaphore-bounded concurrency, worker
  threads (plus killable worker *processes* when the engine uses
  ``executor="process"``), and single-flight dedup of identical
  concurrent requests against one shared result cache.
* :class:`AllocationServer` / :class:`ServerThread` -- a stdlib-only
  asyncio HTTP/JSON worker (``repro serve``) exposing the versioned v1
  surface (``POST /v1/allocate``, ``/v1/batch``, ``/v1/delta``,
  ``GET /v1/healthz``, ``/v1/stats``) plus the unversioned paths
  behind a ``Deprecation`` shim.
* :class:`FleetCoordinator` / :class:`FleetThread` /
  :class:`WorkerPool` -- the fleet tier (``repro fleet``): fingerprint
  rendezvous routing over health-checked workers, fleet-wide dedup
  (response memo + shared result store + single flight), bounded
  requeue of work from dead or hung workers, and per-priority-class
  admission control with typed 429 shedding.
* :class:`ServiceClient` -- a thin synchronous client satisfying the
  :class:`repro.engine.Backend` protocol (``run`` / ``run_delta`` /
  ``run_batch``), schema-negotiating, with envelopes
  canonical-byte-identical to the offline ``Engine.run_batch`` path --
  against a single worker and a coordinator alike.

See ``docs/service.md`` for the wire schema and deployment notes.
"""

from .async_engine import AsyncEngine
from .client import ServiceClient, ServiceError
from .fleet import FleetCoordinator, FleetThread, WorkerPool
from .server import AllocationServer, ServerThread

__all__ = [
    "AllocationServer",
    "AsyncEngine",
    "FleetCoordinator",
    "FleetThread",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "WorkerPool",
]
