"""repro.service -- the allocation engine as an async network service.

Three layers, each usable on its own:

* :class:`AsyncEngine` -- ``await``-able front-end over
  :class:`repro.engine.Engine`: semaphore-bounded concurrency, worker
  threads (plus killable worker *processes* when the engine uses
  ``executor="process"``), and single-flight dedup of identical
  concurrent requests against one shared result cache.
* :class:`AllocationServer` / :class:`ServerThread` -- a stdlib-only
  asyncio HTTP/JSON server (``repro serve``) exposing
  ``POST /allocate``, ``POST /batch``, ``POST /delta`` (warm-start
  re-solves of edited problems), ``GET /healthz`` and ``GET /stats``.
* :class:`ServiceClient` -- a thin synchronous client (``repro
  submit``) whose envelopes are canonical-byte-identical to the offline
  ``Engine.run_batch`` path.

See ``docs/service.md`` for the wire schema and deployment notes.
"""

from .async_engine import AsyncEngine
from .client import ServiceClient, ServiceError
from .server import AllocationServer, ServerThread

__all__ = [
    "AllocationServer",
    "AsyncEngine",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
]
