"""Thin stdlib HTTP client for the allocation service (``repro submit``).

:class:`ServiceClient` round-trips problems and envelopes through the
same :mod:`repro.io` serialisation the server uses, so a served result
deserialises into exactly the :class:`~repro.engine.AllocationResult`
the offline engine would have returned (canonical JSON byte-identical).

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8035")
    client.wait_healthy()
    result = client.allocate(AllocationRequest(problem, "dpalloc"))
    results = client.batch(requests)          # ordered like requests
    print(client.stats()["cache_hit_rate"])

HTTP-level failures raise :class:`ServiceError` (with the server's
``service-error`` payload when one was sent); *solver*-level failures
never raise -- they are ``error`` fields of the returned envelopes,
exactly like ``Engine.run``.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence

from ..engine import AllocationRequest, AllocationResult, DeltaRequest
from ..io.json_io import (
    allocation_request_to_dict,
    allocation_result_from_dict,
)
from ..io.service import (
    batch_request_to_dict,
    batch_results_from_dict,
    delta_request_to_dict,
)

__all__ = ["ServiceClient", "ServiceError"]

# Per-request socket timeout: generous because an /allocate call spans
# the whole solve (cap solves with AllocationRequest.timeout / the
# server's --default-timeout, not the transport).
DEFAULT_HTTP_TIMEOUT = 600.0


class ServiceError(RuntimeError):
    """The service refused or failed a request at the HTTP level."""

    def __init__(
        self, status: int, message: str, payload: Optional[Dict] = None
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload or {}


class ServiceClient:
    """Synchronous client for one allocation-service base URL."""

    def __init__(
        self, base_url: str, timeout: float = DEFAULT_HTTP_TIMEOUT
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        body = (
            json.dumps(payload, sort_keys=True).encode("utf-8")
            if payload is not None
            else None
        )
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=body,
            headers={"Content-Type": "application/json"},
            method=method,
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail: Dict[str, Any] = {}
            message = str(exc)
            try:
                detail = json.loads(exc.read().decode("utf-8"))
                message = detail.get("error", message)
            except Exception:  # noqa: BLE001 -- non-JSON error body
                pass
            raise ServiceError(exc.code, message, detail) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                0, f"cannot reach {self.base_url}: {exc.reason}"
            ) from None

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz``: liveness + server version."""
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        """``GET /stats``: the server's ``AsyncEngine.stats()`` view."""
        return self._request("GET", "/stats")

    def allocate(self, request: AllocationRequest) -> AllocationResult:
        """``POST /allocate``: run one request, return its envelope."""
        payload = self._request(
            "POST", "/allocate", allocation_request_to_dict(request)
        )
        return allocation_result_from_dict(payload)

    def delta(self, request: DeltaRequest) -> AllocationResult:
        """``POST /delta``: warm-start re-solve of an edited problem.

        The returned envelope is canonical-byte identical to a cold
        :meth:`allocate` of the edited problem; the strategy the server
        took (``replay``/``resumed``/``diverged``/``scratch``/...) rides
        in its non-canonical ``delta`` field.
        """
        payload = self._request(
            "POST", "/delta", delta_request_to_dict(request)
        )
        return allocation_result_from_dict(payload)

    def batch(
        self, requests: Sequence[AllocationRequest]
    ) -> List[AllocationResult]:
        """``POST /batch``: run a batch, envelopes ordered like requests."""
        payload = self._request(
            "POST", "/batch", batch_request_to_dict(requests)
        )
        results = batch_results_from_dict(payload)
        if len(results) != len(requests):
            raise ServiceError(
                0,
                f"batch returned {len(results)} results "
                f"for {len(requests)} requests",
            )
        return results

    def wait_healthy(self, deadline_seconds: float = 10.0) -> Dict[str, Any]:
        """Poll ``/healthz`` until it answers; raise after the deadline."""
        deadline = time.monotonic() + deadline_seconds
        last: Optional[ServiceError] = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except ServiceError as exc:
                last = exc
                time.sleep(0.05)
        raise ServiceError(
            0,
            f"{self.base_url} not healthy after {deadline_seconds:g}s "
            f"({last})",
        )
