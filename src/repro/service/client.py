"""Thin stdlib HTTP client for the allocation service.

:class:`ServiceClient` round-trips problems and envelopes through the
same :mod:`repro.io` serialisation the server uses, so a served result
deserialises into exactly the :class:`~repro.engine.AllocationResult`
the offline engine would have returned (canonical JSON byte-identical).
It satisfies the :class:`repro.engine.Backend` protocol -- the same
``run`` / ``run_delta`` / ``run_batch`` surface as ``Engine`` -- so
callers accept local-or-remote interchangeably::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8035")
    client.wait_healthy()
    result = client.run(AllocationRequest(problem, "dpalloc"))
    results = client.run_batch(requests)      # ordered like requests
    print(client.stats()["cache_hit_rate"])

Schema negotiation: on first contact the client reads the server's
advertised ``schema_versions`` from ``/healthz`` and pins the highest
version both sides speak -- ``/v1`` routes with ``schema_version`` and
``fingerprint`` routing hints against current servers, the pre-v1
unversioned routes against older ones.  Pass ``schema_version=0`` or
``=1`` to skip negotiation and force a dialect.

HTTP-level failures raise :class:`ServiceError` (with the server's
``service-error`` payload when one was sent); *solver*-level failures
never raise -- they are ``error`` fields of the returned envelopes,
exactly like ``Engine.run``.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence

from ..engine import AllocationRequest, AllocationResult, DeltaRequest
from ..io.json_io import allocation_result_from_dict
from ..io.service import (
    SUPPORTED_SCHEMA_VERSIONS,
    allocate_request_payload,
    batch_request_to_dict,
    batch_results_from_dict,
    delta_request_to_dict,
)

__all__ = ["ServiceClient", "ServiceError"]

# Per-request socket timeout: generous because an /allocate call spans
# the whole solve (cap solves with AllocationRequest.timeout / the
# server's --default-timeout, not the transport).
DEFAULT_HTTP_TIMEOUT = 600.0


class ServiceError(RuntimeError):
    """The service refused or failed a request at the HTTP level.

    ``error_code`` carries the typed discriminator from the
    ``service-error`` payload when the server sent one -- ``"shed"``
    for an admission-control 429, ``"worker_exhausted"`` for a request
    whose every requeue attempt died.
    """

    def __init__(
        self, status: int, message: str, payload: Optional[Dict] = None
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload or {}

    @property
    def error_code(self) -> Optional[str]:
        code = self.payload.get("error_code")
        return str(code) if code is not None else None


class ServiceClient:
    """Synchronous client for one allocation-service base URL.

    Args:
        base_url: e.g. ``http://127.0.0.1:8035`` -- a single worker
            (``repro serve``) or a fleet coordinator (``repro fleet``);
            the wire contract is identical.
        timeout: per-request socket timeout in seconds.
        schema_version: pin the wire dialect (``0`` = pre-v1
            unversioned paths, ``1`` = ``/v1``).  Default: negotiate
            from the server's advertised ``schema_versions`` on first
            contact.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = DEFAULT_HTTP_TIMEOUT,
        schema_version: Optional[int] = None,
    ) -> None:
        if schema_version is not None and schema_version != 0 and (
            schema_version not in SUPPORTED_SCHEMA_VERSIONS
        ):
            raise ValueError(
                f"unsupported schema_version {schema_version!r}; "
                f"supported: 0 (legacy) or {list(SUPPORTED_SCHEMA_VERSIONS)}"
            )
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self._schema_version = schema_version

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        body = (
            json.dumps(payload, sort_keys=True).encode("utf-8")
            if payload is not None
            else None
        )
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=body,
            headers={"Content-Type": "application/json"},
            method=method,
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail: Dict[str, Any] = {}
            message = str(exc)
            try:
                detail = json.loads(exc.read().decode("utf-8"))
                message = detail.get("error", message)
            except Exception:  # noqa: BLE001 -- non-JSON error body
                pass
            raise ServiceError(exc.code, message, detail) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                0, f"cannot reach {self.base_url}: {exc.reason}"
            ) from None

    # ------------------------------------------------------------------
    # schema negotiation
    # ------------------------------------------------------------------
    @property
    def schema_version(self) -> int:
        """The pinned wire dialect (``0`` = pre-v1), negotiating once.

        Negotiation is one ``GET /healthz`` on the always-available
        unversioned path: the highest version in the intersection of
        the server's advertised ``schema_versions`` and this package's
        :data:`~repro.io.service.SUPPORTED_SCHEMA_VERSIONS` wins; a
        server advertising nothing (pre-v1) pins ``0``.
        """
        if self._schema_version is None:
            payload = self._request("GET", "/healthz")
            advertised = payload.get("schema_versions") or []
            usable = [
                v for v in advertised if v in SUPPORTED_SCHEMA_VERSIONS
            ]
            self._schema_version = max(usable) if usable else 0
        return self._schema_version

    def _path(self, suffix: str) -> str:
        return f"/v1{suffix}" if self.schema_version >= 1 else suffix

    def _wire_version(self) -> Optional[int]:
        """The version to stamp into request payloads (None = pre-v1)."""
        return self.schema_version if self.schema_version >= 1 else None

    # ------------------------------------------------------------------
    # endpoints (Backend protocol: run / run_delta / run_batch)
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz``: liveness + server version."""
        return self._request("GET", self._path("/healthz"))

    def stats(self) -> Dict[str, Any]:
        """``GET /stats``: the server's statistics payload.

        A worker answers with its ``AsyncEngine.stats()`` view; a fleet
        coordinator with fleet-wide counters (per-class latency/shed,
        per-worker health).
        """
        return self._request("GET", self._path("/stats"))

    def run(self, request: AllocationRequest) -> AllocationResult:
        """``POST /allocate``: run one request, return its envelope."""
        payload = self._request(
            "POST",
            self._path("/allocate"),
            allocate_request_payload(request, self._wire_version()),
        )
        return allocation_result_from_dict(payload)

    def run_delta(self, request: DeltaRequest) -> AllocationResult:
        """``POST /delta``: warm-start re-solve of an edited problem.

        The returned envelope is canonical-byte identical to a cold
        :meth:`run` of the edited problem; the strategy the server
        took (``replay``/``resumed``/``diverged``/``scratch``/...) rides
        in its non-canonical ``delta`` field.
        """
        body = delta_request_to_dict(request)
        version = self._wire_version()
        if version is not None:
            body["schema_version"] = version
            body["fingerprint"] = request.fingerprint()
        payload = self._request("POST", self._path("/delta"), body)
        return allocation_result_from_dict(payload)

    def run_batch(
        self,
        requests: Sequence[AllocationRequest],
        workers: Optional[int] = None,
    ) -> List[AllocationResult]:
        """``POST /batch``: run a batch, envelopes ordered like requests.

        ``workers`` is advisory (Backend-protocol compatibility): the
        server's own concurrency bound decides the fan-out, not the
        client.
        """
        del workers  # advisory; the server's concurrency bound decides
        payload = self._request(
            "POST",
            self._path("/batch"),
            batch_request_to_dict(requests, self._wire_version()),
        )
        results = batch_results_from_dict(payload)
        if len(results) != len(requests):
            raise ServiceError(
                0,
                f"batch returned {len(results)} results "
                f"for {len(requests)} requests",
            )
        return results

    # Pre-Backend spellings, kept as aliases so existing callers and
    # docs keep working; new code should use run/run_delta/run_batch.
    def allocate(self, request: AllocationRequest) -> AllocationResult:
        """Alias of :meth:`run`."""
        return self.run(request)

    def delta(self, request: DeltaRequest) -> AllocationResult:
        """Alias of :meth:`run_delta`."""
        return self.run_delta(request)

    def batch(
        self, requests: Sequence[AllocationRequest]
    ) -> List[AllocationResult]:
        """Alias of :meth:`run_batch`."""
        return self.run_batch(requests)

    def wait_healthy(self, deadline_seconds: float = 10.0) -> Dict[str, Any]:
        """Poll ``/healthz`` until it answers; raise after the deadline."""
        deadline = time.monotonic() + deadline_seconds
        last: Optional[ServiceError] = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except ServiceError as exc:
                last = exc
                time.sleep(0.05)
        raise ServiceError(
            0,
            f"{self.base_url} not healthy after {deadline_seconds:g}s "
            f"({last})",
        )
