"""Async front-end over :class:`repro.engine.Engine`.

:class:`AsyncEngine` lets an asyncio application (the HTTP service, a
notebook, another event loop) await allocation runs without ever
blocking the loop:

* every run executes on a worker thread (``await engine.run(request)``
  returns control to the loop immediately); when the underlying engine
  uses ``executor="process"`` the solve additionally runs in its own
  killable worker process, so even a *hung* solver costs one bounded
  thread, never the loop;
* a semaphore bounds how many runs are in flight at once -- excess
  requests queue in submission order;
* identical concurrent requests are **single-flighted**: the second
  request for the same problem/allocator/options/timeout awaits the
  first run instead of re-solving (the envelope is re-labelled per
  request, exactly like an engine cache hit), and only one entry is
  ever written to the shared result cache;
* :meth:`stats` aggregates what a service wants to export: in-flight
  and queued counts, completed/failed/deduplicated totals, p50/p95
  latency over a sliding window, cache hit rate, and the engine's
  process-executor counters.

Envelopes are exactly what ``Engine.run`` / ``Engine.run_batch``
produce -- same cache, same timeout normalisation -- so
``AllocationResult.canonical_json()`` stays byte-identical between the
async path and the offline batch path.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Any, Deque, Dict, List, Optional, Sequence

from ..engine import AllocationRequest, AllocationResult, DeltaRequest, Engine
from ..engine.engine import request_content_key

__all__ = ["AsyncEngine"]

_LATENCY_WINDOW = 1024


class AsyncEngine:
    """Awaitable, bounded, single-flighted wrapper around an ``Engine``.

    Args:
        engine: the underlying engine (default: a fresh ``Engine()``).
            Give it ``executor="process"`` to make every fresh solve
            preemptible -- the service relies on that so a hung solve
            can never exhaust the worker threads for longer than its
            timeout.
        max_concurrency: how many runs may execute at once; further
            requests queue in submission order.
        default_timeout: per-run wall-clock budget applied to requests
            that do not carry their own ``timeout``.
    """

    def __init__(
        self,
        engine: Optional[Engine] = None,
        max_concurrency: int = 4,
        default_timeout: Optional[float] = None,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        self.engine = engine if engine is not None else Engine()
        self.max_concurrency = max_concurrency
        self.default_timeout = default_timeout
        self._semaphore = asyncio.Semaphore(max_concurrency)
        self._pool = ThreadPoolExecutor(
            max_workers=max_concurrency, thread_name_prefix="repro-serve"
        )
        # flight key -> task of the one live run for that key.  Only
        # touched from the event-loop thread, so no lock is needed; the
        # shared ResultCache below has its own lock.
        self._inflight: Dict[str, "asyncio.Task[AllocationResult]"] = {}
        # The latency window IS read off-loop (the server offloads
        # /stats to a thread so the manifest rescan cannot stall the
        # loop), so appends and snapshots share a lock.
        self._latencies: Deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self._latency_lock = threading.Lock()
        self._running = 0
        self._queued = 0
        self._requests_total = 0
        self._completed = 0
        self._failed = 0
        self._deduplicated = 0
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    async def run(self, request: AllocationRequest) -> AllocationResult:
        """Execute one request without blocking the event loop.

        Cache hits, timeouts and failures come back as envelope fields,
        never exceptions, exactly like ``Engine.run``.
        """
        request = self._with_default_timeout(request)
        self._requests_total += 1
        key = self._flight_key(request)
        if key is None:
            return await self._execute(request)
        existing = self._inflight.get(key)
        if existing is not None:
            self._deduplicated += 1
            result = await asyncio.shield(existing)
            # The shared run carries the leader's label; echo this
            # request's own, as a cache hit would.
            return replace(result, label=request.label)
        task = asyncio.ensure_future(self._execute(request))
        self._inflight[key] = task

        def _cleanup(done: "asyncio.Task[AllocationResult]") -> None:
            if self._inflight.get(key) is done:
                del self._inflight[key]

        task.add_done_callback(_cleanup)
        # Shield the leader too: cancelling one awaiting client must
        # not abort a run other clients may be waiting on.
        return await asyncio.shield(task)

    async def run_many(
        self, requests: Sequence[AllocationRequest]
    ) -> List[AllocationResult]:
        """Execute a batch concurrently; results align with requests."""
        return list(await asyncio.gather(*(self.run(r) for r in requests)))

    async def run_batch(
        self,
        requests: Sequence[AllocationRequest],
        workers: Optional[int] = None,
    ) -> List[AllocationResult]:
        """Backend-protocol spelling of :meth:`run_many`.

        ``workers`` is advisory: this engine's ``max_concurrency``
        bound decides the fan-out, exactly as for every other request.
        """
        del workers  # advisory; max_concurrency decides
        return await self.run_many(requests)

    async def run_delta(self, request: DeltaRequest) -> AllocationResult:
        """Execute one warm-start delta solve without blocking the loop.

        Shares the concurrency bound, worker pool and latency window
        with ordinary runs, but is *not* single-flighted: delta solves
        are expected to be cheap (that is their point), and the
        replay-artifact store they read and write is already shared
        through the engine, so collapsing identical requests would buy
        little and complicate the flight keying.
        """
        self._requests_total += 1
        return await self._submit(self.engine.run_delta, request)

    async def _execute(self, request: AllocationRequest) -> AllocationResult:
        return await self._submit(self.engine.run, request)

    async def _submit(self, fn: Any, request: Any) -> AllocationResult:
        """Run ``fn(request)`` on the bounded worker pool, stats-tracked."""
        loop = asyncio.get_running_loop()
        began = time.perf_counter()
        self._queued += 1
        try:
            async with self._semaphore:
                self._queued -= 1
                self._running += 1
                try:
                    result = await loop.run_in_executor(
                        self._pool, fn, request
                    )
                finally:
                    self._running -= 1
        except BaseException:
            self._failed += 1
            raise
        with self._latency_lock:
            self._latencies.append(time.perf_counter() - began)
        self._completed += 1
        if result.error is not None:
            self._failed += 1
        return result

    # ------------------------------------------------------------------
    # single-flight keying
    # ------------------------------------------------------------------
    def _with_default_timeout(
        self, request: AllocationRequest
    ) -> AllocationRequest:
        if request.timeout is None and self.default_timeout is not None:
            return replace(request, timeout=self.default_timeout)
        return request

    def _flight_key(self, request: AllocationRequest) -> Optional[str]:
        """Content key for single-flight dedup; ``None`` = no dedup.

        Built on the same :func:`repro.engine.request_content_key` the
        engine's cache key uses, so "same cached work" and "same live
        run" can never drift apart.  The timeout is appended: it is
        *not* part of the content key (timeouts are never cached
        facts) but two different budgets must not share one live run.
        """
        key = request_content_key(request)
        if key is None:
            return None  # no stable content identity: run it alone
        return f"{key}@{request.timeout!r}"

    # ------------------------------------------------------------------
    # statistics / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Service-level statistics (JSON-compatible).

        ``in_flight`` counts runs currently executing; ``queued`` those
        waiting on the concurrency bound.  Latency percentiles cover a
        sliding window of the last ``1024`` completed runs and include
        queueing time (what a client actually experienced).
        """
        with self._latency_lock:
            window = sorted(self._latencies)

        def percentile(fraction: float) -> Optional[float]:
            if not window:
                return None
            index = min(len(window) - 1, int(fraction * len(window)))
            return round(window[index], 6)

        # The in-memory cache view: a /stats poll must not hold the
        # cache lock through a full directory rescan while solves wait
        # on cache reads/writes.
        cache = self.engine.cache_stats(reconcile=False)
        hits = misses = 0
        if cache is not None:
            hits, misses = cache["hits"], cache["misses"]
        lookups = hits + misses
        return {
            "kind": "service-stats",
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "max_concurrency": self.max_concurrency,
            "in_flight": self._running,
            "queued": self._queued,
            "requests_total": self._requests_total,
            "completed": self._completed,
            "failed": self._failed,
            "deduplicated": self._deduplicated,
            "latency_p50_seconds": percentile(0.50),
            "latency_p95_seconds": percentile(0.95),
            "latency_window": len(window),
            "cache": cache,
            "cache_hit_rate": (
                round(hits / lookups, 4) if lookups else None
            ),
            "executor": self.engine.executor_stats_snapshot(),
        }

    def close(self) -> None:
        """Release the worker threads (idempotent)."""
        self._pool.shutdown(wait=False, cancel_futures=True)
