"""Stdlib-only asyncio HTTP/JSON allocation worker (``repro serve``).

:class:`AllocationServer` exposes an :class:`~repro.service.AsyncEngine`
over five endpoints, versioned under ``/v1``:

* ``POST /v1/allocate`` -- body: one ``allocation-request`` payload;
  response: one ``allocation-result`` envelope plus the
  worker-computed ``content_key`` (what the fleet coordinator keys its
  fleet-wide memo on) and ``schema_version``;
* ``POST /v1/batch`` -- body: ``allocation-batch-request``; response:
  an ``allocation-batch`` payload with results ordered like the
  requests (the exact shape ``repro batch --json`` writes), each entry
  carrying its ``content_key``;
* ``POST /v1/delta`` -- body: one ``delta-request`` payload (base
  problem or fingerprint plus an edit sequence); response: one
  ``allocation-result`` envelope, canonical-byte identical to a cold
  ``/v1/allocate`` of the edited problem, with the warm-start strategy
  in its non-canonical ``delta`` field;
* ``GET /v1/healthz`` -- liveness + version + supported
  ``schema_versions`` (what :class:`~repro.service.ServiceClient`
  negotiates against);
* ``GET /v1/stats`` -- cache hit rate, in-flight/queued counts,
  p50/p95 latency, executor counters (see ``AsyncEngine.stats``).

The original unversioned paths (``/allocate``, ``/batch``, ``/delta``,
``/healthz``, ``/stats``) keep working through a deprecation shim: same
handlers, pre-v1 response bodies (no ``schema_version``/``content_key``
extras), plus a ``Deprecation: true`` response header pointing clients
at ``/v1``.

Failed solves are *successful HTTP responses*: infeasibility, timeouts,
validation failures and crashed workers all come back as ``error``
fields of a 200 envelope, exactly like the offline engine.  HTTP error
statuses (400/404/405/413/500) are reserved for requests the service
could not interpret, and carry a ``service-error`` JSON body.

The HTTP surface (shared with the fleet coordinator via
:mod:`repro.service.http`) is deliberately tiny -- HTTP/1.1, one
request per connection, ``Connection: close`` -- enough for the thin
client in :mod:`repro.service.client`, ``curl``, and any load
balancer's health checks, with zero dependencies.
:class:`ServerThread` runs the whole server on a background thread for
tests, benchmarks and notebooks.
"""

from __future__ import annotations

import asyncio
import functools
from typing import Any, Dict, Optional, Tuple

from .. import __version__
from ..engine import Engine
from ..engine.engine import request_content_key, versioned_content_key
from ..io.json_io import (
    allocation_request_from_dict,
    allocation_result_to_dict,
)
from ..io.service import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    batch_request_from_dict,
    batch_results_to_dict,
    check_schema_version,
    delta_request_from_dict,
)
from .async_engine import AsyncEngine
from .http import (
    DEFAULT_MAX_BODY_BYTES,
    HttpError,
    HttpServerBase,
    Route,
    ServerThreadBase,
)

__all__ = ["AllocationServer", "ServerThread"]

#: Fixed response headers the unversioned shim attaches.
DEPRECATION_HEADERS = {
    "Deprecation": "true",
    "Link": '</v1/>; rel="successor-version"',
}


class AllocationServer(HttpServerBase):
    """Asyncio HTTP server wrapping one engine + async front-end.

    Args:
        engine: the engine every request runs through (shared cache,
            shared executor counters).  Default: a fresh
            ``Engine(executor="process")`` so solves are preemptible.
        host/port: bind address; ``port=0`` picks a free port (read
            ``self.port`` after :meth:`start`).
        max_concurrency: concurrent solve bound (see ``AsyncEngine``).
        default_timeout: budget applied to requests without their own.
        max_body_bytes: reject larger request bodies with HTTP 413.
    """

    def __init__(
        self,
        engine: Optional[Engine] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_concurrency: int = 4,
        default_timeout: Optional[float] = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ) -> None:
        super().__init__(host=host, port=port, max_body_bytes=max_body_bytes)
        if engine is None:
            engine = Engine(executor="process")
        self.async_engine = AsyncEngine(
            engine,
            max_concurrency=max_concurrency,
            default_timeout=default_timeout,
        )

    async def _on_stop(self) -> None:
        self.async_engine.close()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def routes(self) -> Dict[str, Route]:
        endpoints = {
            "/healthz": ("GET", self._handle_healthz),
            "/stats": ("GET", self._handle_stats),
            "/allocate": ("POST", self._handle_allocate),
            "/batch": ("POST", self._handle_batch),
            "/delta": ("POST", self._handle_delta),
        }
        table: Dict[str, Route] = {}
        for path, (method, handler) in endpoints.items():
            table[f"/v1{path}"] = (
                method, functools.partial(handler, v1=True), None,
            )
            # Deprecation shim: the pre-v1 paths answer with the pre-v1
            # body shape and a Deprecation header.
            table[path] = (method, handler, DEPRECATION_HEADERS)
        return table

    def _check_version(self, data: Any) -> None:
        try:
            check_schema_version(data)
        except ValueError as exc:
            raise HttpError(400, str(exc)) from None

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    async def _handle_healthz(
        self, _body: bytes, v1: bool = False
    ) -> Tuple[int, Dict[str, Any]]:
        payload: Dict[str, Any] = {
            "kind": "service-health",
            "status": "ok",
            "version": __version__,
            "role": "worker",
            # Advertised on the legacy path too: negotiation must work
            # before the client knows the server speaks v1.
            "schema_versions": list(SUPPORTED_SCHEMA_VERSIONS),
        }
        if v1:
            payload["schema_version"] = SCHEMA_VERSION
        return 200, payload

    async def _handle_stats(
        self, _body: bytes, v1: bool = False
    ) -> Tuple[int, Dict[str, Any]]:
        # stats() takes the cache lock (first use may still scan the
        # directory to build the manifest view): run it on the default
        # thread pool -- not the bounded solve pool, which may be
        # saturated by long solves -- so a /stats poller never stalls
        # the event loop.
        loop = asyncio.get_running_loop()
        payload = await loop.run_in_executor(None, self.async_engine.stats)
        if v1:
            payload["schema_version"] = SCHEMA_VERSION
        return 200, payload

    async def _handle_allocate(
        self, body: bytes, v1: bool = False
    ) -> Tuple[int, Dict[str, Any]]:
        data = self._parse_json(body)
        self._check_version(data)
        try:
            request = allocation_request_from_dict(data)
        except (KeyError, TypeError, ValueError) as exc:
            raise HttpError(400, f"bad allocation-request: {exc}") from None
        result = await self.async_engine.run(request)
        payload = allocation_result_to_dict(result)
        if v1:
            payload["schema_version"] = SCHEMA_VERSION
            # The authoritative cache/memo key, computed server-side
            # from the parsed problem -- never trusted from the client.
            key = versioned_content_key(request_content_key(request))
            if key is not None:
                payload["content_key"] = key
        return 200, payload

    async def _handle_batch(
        self, body: bytes, v1: bool = False
    ) -> Tuple[int, Dict[str, Any]]:
        data = self._parse_json(body)
        self._check_version(data)
        try:
            requests = batch_request_from_dict(data)
        except (KeyError, TypeError, ValueError) as exc:
            raise HttpError(
                400, f"bad allocation-batch-request: {exc}"
            ) from None
        results = await self.async_engine.run_many(requests)
        payload = batch_results_to_dict(results)
        if v1:
            payload["schema_version"] = SCHEMA_VERSION
            for request, entry in zip(requests, payload["results"]):
                key = versioned_content_key(request_content_key(request))
                if key is not None:
                    entry["content_key"] = key
        return 200, payload

    async def _handle_delta(
        self, body: bytes, v1: bool = False
    ) -> Tuple[int, Dict[str, Any]]:
        data = self._parse_json(body)
        self._check_version(data)
        try:
            request = delta_request_from_dict(data)
        except (KeyError, TypeError, ValueError) as exc:
            raise HttpError(400, f"bad delta-request: {exc}") from None
        result = await self.async_engine.run_delta(request)
        payload = allocation_result_to_dict(result)
        if v1:
            payload["schema_version"] = SCHEMA_VERSION
        return 200, payload


class ServerThread(ServerThreadBase):
    """Run an :class:`AllocationServer` on a daemon thread.

    Context manager used by the tests, ``benchmarks/bench_service.py``
    and the docs fences: enter -> server is bound and healthy (``.url``
    is live); exit -> server stopped, thread joined.  Constructor
    arguments are forwarded to :class:`AllocationServer`.
    """

    thread_name = "repro-serve"

    def __init__(self, **server_kwargs: Any) -> None:
        super().__init__()
        self._kwargs = server_kwargs

    def _create(self) -> AllocationServer:
        return AllocationServer(**self._kwargs)
