"""Stdlib-only asyncio HTTP/JSON allocation server (``repro serve``).

:class:`AllocationServer` exposes an :class:`~repro.service.AsyncEngine`
over five endpoints:

* ``POST /allocate`` -- body: one ``allocation-request`` payload;
  response: one ``allocation-result`` envelope;
* ``POST /batch`` -- body: ``allocation-batch-request``; response: an
  ``allocation-batch`` payload with results ordered like the requests
  (the exact shape ``repro batch --json`` writes);
* ``POST /delta`` -- body: one ``delta-request`` payload (base problem
  or fingerprint plus an edit sequence); response: one
  ``allocation-result`` envelope, canonical-byte identical to a cold
  ``/allocate`` of the edited problem, with the warm-start strategy in
  its non-canonical ``delta`` field;
* ``GET /healthz`` -- liveness + version;
* ``GET /stats`` -- cache hit rate, in-flight/queued counts, p50/p95
  latency, executor counters (see ``AsyncEngine.stats``).

Failed solves are *successful HTTP responses*: infeasibility, timeouts,
validation failures and crashed workers all come back as ``error``
fields of a 200 envelope, exactly like the offline engine.  HTTP error
statuses (400/404/405/413/500) are reserved for requests the service
could not interpret, and carry a ``service-error`` JSON body.

The HTTP surface is deliberately tiny (HTTP/1.1, one request per
connection, ``Connection: close``) -- enough for the thin client in
:mod:`repro.service.client`, ``curl``, and any load balancer's health
checks, with zero dependencies.  :class:`ServerThread` runs the whole
server on a background thread for tests, benchmarks and notebooks.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Dict, Optional, Tuple

from .. import __version__
from ..engine import Engine
from ..io.json_io import (
    allocation_request_from_dict,
    allocation_result_to_dict,
)
from ..io.service import (
    batch_request_from_dict,
    batch_results_to_dict,
    delta_request_from_dict,
    error_to_dict,
)
from .async_engine import AsyncEngine

__all__ = ["AllocationServer", "ServerThread"]

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}
# Generous but bounded: a batch of large TGFF graphs is ~MBs; anything
# beyond this is a client bug, not a workload.
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024


class _HttpError(Exception):
    """A request the service refuses; becomes a JSON error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class AllocationServer:
    """Asyncio HTTP server wrapping one engine + async front-end.

    Args:
        engine: the engine every request runs through (shared cache,
            shared executor counters).  Default: a fresh
            ``Engine(executor="process")`` so solves are preemptible.
        host/port: bind address; ``port=0`` picks a free port (read
            ``self.port`` after :meth:`start`).
        max_concurrency: concurrent solve bound (see ``AsyncEngine``).
        default_timeout: budget applied to requests without their own.
        max_body_bytes: reject larger request bodies with HTTP 413.
    """

    def __init__(
        self,
        engine: Optional[Engine] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_concurrency: int = 4,
        default_timeout: Optional[float] = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ) -> None:
        if engine is None:
            engine = Engine(executor="process")
        self.async_engine = AsyncEngine(
            engine,
            max_concurrency=max_concurrency,
            default_timeout=default_timeout,
        )
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (non-blocking)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.async_engine.close()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
                status, payload = await self._dispatch(method, path, body)
            except _HttpError as exc:
                status, payload = exc.status, error_to_dict(
                    exc.status, exc.message
                )
            except Exception as exc:  # noqa: BLE001 -- never a hung socket
                status, payload = 500, error_to_dict(
                    500, f"{type(exc).__name__}: {exc}"
                )
            await self._write_response(writer, status, payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line: {request_line!r}")
        method, target = parts[0].upper(), parts[1]
        path = target.split("?", 1)[0]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _HttpError(400, "bad Content-Length") from None
        if content_length < 0 or content_length > self.max_body_bytes:
            raise _HttpError(
                413, f"body of {content_length} bytes exceeds the "
                     f"{self.max_body_bytes}-byte limit"
            )
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        return method, path, body

    async def _write_response(
        self, writer: asyncio.StreamWriter, status: int, payload: Dict[str, Any]
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        routes = {
            "/healthz": ("GET", self._handle_healthz),
            "/stats": ("GET", self._handle_stats),
            "/allocate": ("POST", self._handle_allocate),
            "/batch": ("POST", self._handle_batch),
            "/delta": ("POST", self._handle_delta),
        }
        route = routes.get(path)
        if route is None:
            raise _HttpError(
                404, f"unknown path {path!r}; endpoints: {sorted(routes)}"
            )
        expected, handler = route
        if method != expected:
            raise _HttpError(405, f"{path} expects {expected}, got {method}")
        return await handler(body)

    def _parse_json(self, body: bytes) -> Any:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise _HttpError(400, f"request body is not JSON: {exc}") from None

    async def _handle_healthz(self, _body: bytes) -> Tuple[int, Dict[str, Any]]:
        return 200, {
            "kind": "service-health",
            "status": "ok",
            "version": __version__,
        }

    async def _handle_stats(self, _body: bytes) -> Tuple[int, Dict[str, Any]]:
        # stats() takes the cache lock (first use may still scan the
        # directory to build the manifest view): run it on the default
        # thread pool -- not the bounded solve pool, which may be
        # saturated by long solves -- so a /stats poller never stalls
        # the event loop.
        loop = asyncio.get_running_loop()
        return 200, await loop.run_in_executor(None, self.async_engine.stats)

    async def _handle_allocate(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        data = self._parse_json(body)
        try:
            request = allocation_request_from_dict(data)
        except (KeyError, TypeError, ValueError) as exc:
            raise _HttpError(400, f"bad allocation-request: {exc}") from None
        result = await self.async_engine.run(request)
        return 200, allocation_result_to_dict(result)

    async def _handle_batch(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        data = self._parse_json(body)
        try:
            requests = batch_request_from_dict(data)
        except (KeyError, TypeError, ValueError) as exc:
            raise _HttpError(
                400, f"bad allocation-batch-request: {exc}"
            ) from None
        results = await self.async_engine.run_many(requests)
        return 200, batch_results_to_dict(results)

    async def _handle_delta(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        data = self._parse_json(body)
        try:
            request = delta_request_from_dict(data)
        except (KeyError, TypeError, ValueError) as exc:
            raise _HttpError(400, f"bad delta-request: {exc}") from None
        result = await self.async_engine.run_delta(request)
        return 200, allocation_result_to_dict(result)


class ServerThread:
    """Run an :class:`AllocationServer` on a daemon thread.

    Context manager used by the tests, ``benchmarks/bench_service.py``
    and the docs fences: enter -> server is bound and healthy (``.url``
    is live); exit -> server stopped, thread joined.  Constructor
    arguments are forwarded to :class:`AllocationServer`.
    """

    def __init__(self, **server_kwargs: Any) -> None:
        self._kwargs = server_kwargs
        self.server: Optional[AllocationServer] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def url(self) -> str:
        assert self.server is not None, "server not started"
        return self.server.url

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        if self.server is None:
            raise RuntimeError("server did not start within 30s")
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def _main(self) -> None:
        try:
            asyncio.run(self._run())
        except BaseException as exc:  # noqa: BLE001 -- surface to __enter__
            self._startup_error = exc
            self._ready.set()

    async def _run(self) -> None:
        server = AllocationServer(**self._kwargs)
        await server.start()
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.server = server
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await server.stop()
