"""Figure 4: area premium of the heuristic over the optimal ILP [5].

Paper: "Fig. 4 illustrates the increase in implementation area of using
the heuristic presented in this paper over the optimum combined problem
[5].  This is shown only for small problem size and minimum latency
constraint lambda = lambda_min ... Over the range of 1 to 10 operations,
the relative increase in area ranges from 0% to 16%."

One row per size with the mean (and max) premium; the optimality of the
ILP is asserted on every instance (heuristic area can never be smaller).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.metrics import area_penalty, mean
from ..analysis.reporting import format_table
from ..engine import AllocationRequest, Engine
from .common import (
    build_case,
    require_ok,
    resolve_samples,
    resolve_workers,
    sweep_engine,
)

__all__ = ["Fig4Result", "run", "render"]

DEFAULT_SIZES = tuple(range(1, 11))


@dataclass(frozen=True)
class Fig4Result:
    """Premium (%) of the heuristic over the ILP optimum at lambda_min."""

    sizes: Tuple[int, ...]
    mean_premium: Dict[int, float]
    max_premium: Dict[int, float]
    samples: int

    def rows(self) -> List[List[object]]:
        return [
            [n, self.mean_premium[n], self.max_premium[n]] for n in self.sizes
        ]


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    samples: Optional[int] = None,
    ilp_time_limit: Optional[float] = 120.0,
    engine: Optional[Engine] = None,
    workers: Optional[int] = None,
) -> Fig4Result:
    """Regenerate the Fig. 4 data at lambda = lambda_min."""
    count = resolve_samples(samples)
    requests: List[AllocationRequest] = []
    for n in sizes:
        for sample in range(count):
            problem = build_case(n, sample, relaxation=0.0).problem
            requests.append(AllocationRequest(problem, "dpalloc"))
            requests.append(AllocationRequest(
                problem, "ilp", options={"time_limit": ilp_time_limit},
            ))
    results = sweep_engine(engine).run_batch(
        requests, workers=resolve_workers(workers)
    )

    means: Dict[int, float] = {}
    maxima: Dict[int, float] = {}
    cursor = iter(results)
    for n in sizes:
        premiums: List[float] = []
        for sample in range(count):
            heuristic = require_ok(next(cursor))
            optimal = require_ok(next(cursor))
            if heuristic.area < optimal.area - 1e-9:
                raise AssertionError(
                    f"heuristic ({heuristic.area}) beat the 'optimal' ILP "
                    f"({optimal.area}) on |O|={n} sample {sample}"
                )
            premiums.append(area_penalty(heuristic, optimal))
        means[n] = mean(premiums)
        maxima[n] = max(premiums) if premiums else 0.0
    return Fig4Result(tuple(sizes), means, maxima, count)


def render(result: Fig4Result) -> str:
    return format_table(
        ["|O|", "mean premium %", "max premium %"],
        result.rows(),
        title=(
            f"Fig. 4 -- area premium (%) of the heuristic over the optimal "
            f"ILP [5] at lambda_min ({result.samples} graphs/point; paper "
            f"reports 0-16% mean over 1-10 ops)"
        ),
    )


def main(samples: Optional[int] = None, workers: Optional[int] = None) -> str:
    text = render(run(samples=samples, workers=workers))
    print(text)
    return text
