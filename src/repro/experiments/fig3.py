"""Figure 3: area penalty of the two-stage approach [4] over the heuristic.

Paper: "The increase in implementation area of using the two-stage
approach [4] solution over the heuristic presented in the present paper
was found for each graph/constraint combination ... Each point represents
the mean of the two hundred representative designs."  The published
surface rises with both the number of operations (1--24) and the latency
relaxation (0%--30%): even small slack buys tens of percent of area.

This module regenerates the surface as a table: one row per problem
size, one column per relaxation, cells are mean penalties in percent.
The whole sweep is one :meth:`Engine.run_batch` call, so ``workers``
(or ``REPRO_WORKERS``) parallelises it without touching the statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.metrics import area_penalty, mean
from ..analysis.reporting import format_table
from ..engine import AllocationRequest, Engine
from .common import (
    build_case,
    require_ok,
    resolve_samples,
    resolve_workers,
    sweep_engine,
)

__all__ = ["Fig3Result", "run", "render"]

DEFAULT_SIZES = tuple(range(2, 25))
DEFAULT_RELAXATIONS = (0.0, 0.1, 0.2, 0.3)


@dataclass(frozen=True)
class Fig3Result:
    """Mean area penalty (%) of [4] over DPAlloc per (size, relaxation)."""

    sizes: Tuple[int, ...]
    relaxations: Tuple[float, ...]
    mean_penalty: Dict[Tuple[int, float], float]
    samples: int

    def rows(self) -> List[List[object]]:
        out: List[List[object]] = []
        for n in self.sizes:
            row: List[object] = [n]
            row.extend(self.mean_penalty[(n, r)] for r in self.relaxations)
            out.append(row)
        return out


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    relaxations: Sequence[float] = DEFAULT_RELAXATIONS,
    samples: Optional[int] = None,
    engine: Optional[Engine] = None,
    workers: Optional[int] = None,
) -> Fig3Result:
    """Regenerate the Fig. 3 data (means over ``samples`` graphs/point)."""
    count = resolve_samples(samples)
    points = [(n, r) for n in sizes for r in relaxations]
    requests: List[AllocationRequest] = []
    for n, relaxation in points:
        for sample in range(count):
            problem = build_case(n, sample, relaxation).problem
            requests.append(AllocationRequest(problem, "dpalloc"))
            requests.append(AllocationRequest(problem, "two-stage"))
    results = sweep_engine(engine).run_batch(
        requests, workers=resolve_workers(workers)
    )

    table: Dict[Tuple[int, float], float] = {}
    cursor = iter(results)
    for n, relaxation in points:
        penalties: List[float] = []
        for _ in range(count):
            heuristic = require_ok(next(cursor))
            two_stage = require_ok(next(cursor))
            penalties.append(area_penalty(two_stage, heuristic))
        table[(n, relaxation)] = mean(penalties)
    return Fig3Result(tuple(sizes), tuple(relaxations), table, count)


def render(result: Fig3Result) -> str:
    headers = ["|O|"] + [f"{int(100 * r)}% relax" for r in result.relaxations]
    return format_table(
        headers,
        result.rows(),
        title=(
            f"Fig. 3 -- mean area penalty (%) of two-stage [4] over the "
            f"heuristic ({result.samples} graphs/point)"
        ),
    )


def main(samples: Optional[int] = None, workers: Optional[int] = None) -> str:
    text = render(run(samples=samples, workers=workers))
    print(text)
    return text
