"""Figure 3: area penalty of the two-stage approach [4] over the heuristic.

Paper: "The increase in implementation area of using the two-stage
approach [4] solution over the heuristic presented in the present paper
was found for each graph/constraint combination ... Each point represents
the mean of the two hundred representative designs."  The published
surface rises with both the number of operations (1--24) and the latency
relaxation (0%--30%): even small slack buys tens of percent of area.

This module regenerates the surface as a table: one row per problem
size, one column per relaxation, cells are mean penalties in percent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.metrics import area_penalty, mean
from ..analysis.reporting import format_table
from ..baselines.two_stage import allocate_two_stage
from ..core.dpalloc import allocate
from .common import build_case, resolve_samples

__all__ = ["Fig3Result", "run", "render"]

DEFAULT_SIZES = tuple(range(2, 25))
DEFAULT_RELAXATIONS = (0.0, 0.1, 0.2, 0.3)


@dataclass(frozen=True)
class Fig3Result:
    """Mean area penalty (%) of [4] over DPAlloc per (size, relaxation)."""

    sizes: Tuple[int, ...]
    relaxations: Tuple[float, ...]
    mean_penalty: Dict[Tuple[int, float], float]
    samples: int

    def rows(self) -> List[List[object]]:
        out: List[List[object]] = []
        for n in self.sizes:
            row: List[object] = [n]
            row.extend(self.mean_penalty[(n, r)] for r in self.relaxations)
            out.append(row)
        return out


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    relaxations: Sequence[float] = DEFAULT_RELAXATIONS,
    samples: Optional[int] = None,
) -> Fig3Result:
    """Regenerate the Fig. 3 data (means over ``samples`` graphs/point)."""
    count = resolve_samples(samples)
    table: Dict[Tuple[int, float], float] = {}
    for n in sizes:
        for relaxation in relaxations:
            penalties: List[float] = []
            for sample in range(count):
                case = build_case(n, sample, relaxation)
                heuristic = allocate(case.problem)
                two_stage, _ = allocate_two_stage(case.problem)
                penalties.append(area_penalty(two_stage, heuristic))
            table[(n, relaxation)] = mean(penalties)
    return Fig3Result(tuple(sizes), tuple(relaxations), table, count)


def render(result: Fig3Result) -> str:
    headers = ["|O|"] + [f"{int(100 * r)}% relax" for r in result.relaxations]
    return format_table(
        headers,
        result.rows(),
        title=(
            f"Fig. 3 -- mean area penalty (%) of two-stage [4] over the "
            f"heuristic ({result.samples} graphs/point)"
        ),
    )


def main(samples: Optional[int] = None) -> str:
    text = render(run(samples=samples))
    print(text)
    return text
