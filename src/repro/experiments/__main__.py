"""Command-line entry point: ``python -m repro.experiments <target>``.

Targets regenerate the paper's evaluation artefacts as text tables:

* ``fig3``   -- area penalty of two-stage [4] vs problem size/relaxation
* ``fig4``   -- area premium of the heuristic vs the optimal ILP [5]
* ``fig5``   -- execution-time scaling, heuristic vs ILP
* ``table2`` -- execution time vs latency relaxation at |O| = 9
* ``ablations`` -- design-choice ablations
* ``parity`` -- incremental-vs-scratch solver parity over the union of
  every DPAlloc request of the sweeps above (exits nonzero on any
  canonical-JSON divergence; the CI parity job runs this)
* ``all``    -- every figure/table above (not ``parity``)

``--samples`` overrides the per-point graph count (paper: 200; default
here is 20 to keep a full run in minutes -- see EXPERIMENTS.md).
``--workers`` fans each sweep out over the engine's process pool
(``REPRO_WORKERS`` is the environment equivalent); results are
bit-identical to the serial run, only faster.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from . import ablations, fig3, fig4, fig5, parity, table2

TARGETS: Dict[str, Callable[[Optional[int], Optional[int]], str]] = {
    "fig3": fig3.main,
    "fig4": fig4.main,
    "fig5": fig5.main,
    "table2": table2.main,
    "ablations": ablations.main,
    "parity": parity.main,
}


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation figures and tables.",
    )
    parser.add_argument("target", choices=[*TARGETS, "all"])
    parser.add_argument(
        "--samples",
        type=int,
        default=None,
        help="graphs per evaluation point (paper: 200)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="engine process-pool width (default: REPRO_WORKERS or serial)",
    )
    args = parser.parse_args(argv)

    if args.target == "all":
        for name in ("fig3", "fig4", "fig5", "table2", "ablations"):
            TARGETS[name](args.samples, args.workers)
            print()
    else:
        TARGETS[args.target](args.samples, args.workers)
    return 0


if __name__ == "__main__":
    sys.exit(main())
