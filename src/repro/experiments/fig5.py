"""Figure 5: execution-time scaling of the heuristic vs the ILP.

Paper: "The variation of execution time with problem size for 200 graphs
using the ILP model (executing on 'LP Solve') and the heuristic algorithm
is shown in Fig. 5, illustrating the polynomial complexity of the
heuristic against the exponential complexity of the ILP ... the ILP
solution takes between one and two orders of magnitude greater time."

Absolute times are incomparable across a 1997 LP solver on a Pentium III
450 and HiGHS on a modern CPU; the *shape* is what we validate, and we
additionally report the ILP variable count -- a solver-independent size
measure that the paper itself uses to explain the scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.metrics import mean
from ..analysis.reporting import format_table
from ..engine import AllocationRequest, Engine
from .common import (
    build_case,
    require_ok,
    resolve_samples,
    resolve_workers,
    sweep_engine,
)

__all__ = ["Fig5Result", "run", "render"]

DEFAULT_SIZES = tuple(range(1, 11))


@dataclass(frozen=True)
class Fig5Result:
    """Total execution time (s) over the sample set, per problem size."""

    sizes: Tuple[int, ...]
    heuristic_seconds: Dict[int, float]
    ilp_seconds: Dict[int, float]
    ilp_variables: Dict[int, float]
    samples: int

    def rows(self) -> List[List[object]]:
        out: List[List[object]] = []
        for n in self.sizes:
            heuristic = self.heuristic_seconds[n]
            ilp = self.ilp_seconds[n]
            ratio = ilp / heuristic if heuristic > 0 else float("inf")
            out.append(
                [n, f"{heuristic:.3f}", f"{ilp:.3f}", f"{ratio:.1f}x",
                 f"{self.ilp_variables[n]:.0f}"]
            )
        return out


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    samples: Optional[int] = None,
    relaxation: float = 0.0,
    ilp_time_limit: Optional[float] = 120.0,
    engine: Optional[Engine] = None,
    workers: Optional[int] = None,
) -> Fig5Result:
    """Regenerate the Fig. 5 data: total runtime over the sample batch.

    Per-run wall-clock comes from the engine's result envelopes, so the
    totals are identical whether the sweep runs serially or fans out
    over the process pool (timings are measured inside each run).
    """
    count = resolve_samples(samples)
    requests: List[AllocationRequest] = []
    for n in sizes:
        for sample in range(count):
            problem = build_case(n, sample, relaxation).problem
            requests.append(AllocationRequest(problem, "dpalloc"))
            requests.append(AllocationRequest(
                problem, "ilp", options={"time_limit": ilp_time_limit},
            ))
    results = sweep_engine(engine).run_batch(
        requests, workers=resolve_workers(workers)
    )

    heuristic_s: Dict[int, float] = {}
    ilp_s: Dict[int, float] = {}
    ilp_vars: Dict[int, float] = {}
    cursor = iter(results)
    for n in sizes:
        h_total = 0.0
        i_total = 0.0
        var_counts: List[float] = []
        for _ in range(count):
            heuristic = next(cursor)
            require_ok(heuristic)
            h_total += heuristic.seconds
            ilp = next(cursor)
            if ilp.error is not None and ilp.error.startswith("timeout"):
                i_total += float(ilp_time_limit or 0.0)
            else:
                require_ok(ilp)
                i_total += ilp.seconds
                var_counts.append(ilp.extras["num_variables"])
        heuristic_s[n] = h_total
        ilp_s[n] = i_total
        ilp_vars[n] = mean(var_counts)
    return Fig5Result(tuple(sizes), heuristic_s, ilp_s, ilp_vars, count)


def render(result: Fig5Result, relaxation: float = 0.0) -> str:
    note = (
        "lambda = lambda_min"
        if relaxation == 0.0
        else f"lambda = {1.0 + relaxation:.1f} * lambda_min"
    )
    return format_table(
        ["|O|", "heuristic s", "ILP s", "ILP/heur", "mean ILP vars"],
        result.rows(),
        title=(
            f"Fig. 5 -- execution time vs problem size, total over "
            f"{result.samples} graphs ({note})"
        ),
    )


EXTENDED_SIZES = (8, 12, 16, 20)
EXTENDED_RELAXATION = 0.3


def run_extended(
    samples: Optional[int] = None,
    ilp_time_limit: Optional[float] = 60.0,
    engine: Optional[Engine] = None,
    workers: Optional[int] = None,
) -> Fig5Result:
    """Modern-hardware variant of Fig. 5.

    HiGHS solves the paper's 1-10-op instances at lambda_min in
    milliseconds, hiding the exponential gap lp_solve exhibited in 2001.
    The gap reappears at today's frontier: larger graphs with a relaxed
    constraint (more start-time variables -- the same mechanism as
    Table 2).  This run demonstrates the paper's one-to-two orders of
    magnitude claim at sizes 8-20 with 30% relaxation.
    """
    count = resolve_samples(samples, default=3)
    return run(
        sizes=EXTENDED_SIZES,
        samples=count,
        relaxation=EXTENDED_RELAXATION,
        ilp_time_limit=ilp_time_limit,
        engine=engine,
        workers=workers,
    )


def main(samples: Optional[int] = None, workers: Optional[int] = None) -> str:
    parts = [render(run(samples=samples, workers=workers))]
    extended_samples = min(resolve_samples(samples), 5)
    parts.append(
        render(
            run_extended(samples=extended_samples, workers=workers),
            EXTENDED_RELAXATION,
        )
    )
    text = "\n\n".join(parts)
    print(text)
    return text
