"""Table 2: execution time vs latency-constraint relaxation (|O| = 9).

Paper Table 2 reports, for 200 nine-operation graphs, how total execution
time varies with lambda/lambda_min in {1.00, 1.05, 1.10, 1.15}: the
heuristic stays flat (~3.5-3.7 s on their Pentium III) while the ILP
explodes (2:07 -> 4:05 -> 15:55 -> >30:00), because the number of ILP
variables scales with the latency constraint.

We regenerate the same rows, and also report the mean ILP variable count
-- the solver-independent quantity behind the blow-up (our HiGHS solver
is far stronger than 1997's lp_solve, so absolute seconds differ; the
monotone growth with lambda and the flat heuristic row are the claims
under test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.metrics import mean
from ..analysis.reporting import format_seconds, format_table
from ..engine import AllocationRequest, Engine
from .common import (
    build_case,
    require_ok,
    resolve_samples,
    resolve_workers,
    sweep_engine,
)

__all__ = ["Table2Result", "run", "render"]

DEFAULT_RATIOS = (1.00, 1.05, 1.10, 1.15)
DEFAULT_NUM_OPS = 9


@dataclass(frozen=True)
class Table2Result:
    """Total runtimes per lambda/lambda_min ratio for |O| = num_ops."""

    num_ops: int
    ratios: Tuple[float, ...]
    heuristic_seconds: Dict[float, float]
    ilp_seconds: Dict[float, float]
    ilp_variables: Dict[float, float]
    ilp_timeouts: Dict[float, int]
    samples: int

    def rows(self) -> List[List[object]]:
        out: List[List[object]] = []
        for ratio in self.ratios:
            timeouts = self.ilp_timeouts[ratio]
            ilp_cell = format_seconds(self.ilp_seconds[ratio])
            if timeouts:
                ilp_cell = f">{ilp_cell} ({timeouts} timeouts)"
            out.append(
                [
                    f"{ratio:.2f}",
                    format_seconds(self.heuristic_seconds[ratio]),
                    ilp_cell,
                    f"{self.ilp_variables[ratio]:.0f}",
                ]
            )
        return out


def run(
    ratios: Sequence[float] = DEFAULT_RATIOS,
    num_ops: int = DEFAULT_NUM_OPS,
    samples: Optional[int] = None,
    ilp_time_limit: Optional[float] = 60.0,
    engine: Optional[Engine] = None,
    workers: Optional[int] = None,
) -> Table2Result:
    """Regenerate Table 2 (runtime vs lambda/lambda_min at |O| = 9)."""
    count = resolve_samples(samples)
    requests: List[AllocationRequest] = []
    for ratio in ratios:
        for sample in range(count):
            problem = build_case(num_ops, sample, ratio - 1.0).problem
            requests.append(AllocationRequest(problem, "dpalloc"))
            requests.append(AllocationRequest(
                problem, "ilp", options={"time_limit": ilp_time_limit},
            ))
    results = sweep_engine(engine).run_batch(
        requests, workers=resolve_workers(workers)
    )

    h_seconds: Dict[float, float] = {}
    i_seconds: Dict[float, float] = {}
    i_vars: Dict[float, float] = {}
    i_timeouts: Dict[float, int] = {}
    cursor = iter(results)
    for ratio in ratios:
        h_total = 0.0
        i_total = 0.0
        timeouts = 0
        var_counts: List[float] = []
        for _ in range(count):
            heuristic = next(cursor)
            require_ok(heuristic)
            h_total += heuristic.seconds
            ilp = next(cursor)
            if ilp.error is not None and ilp.error.startswith("timeout"):
                i_total += float(ilp_time_limit or 0.0)
                timeouts += 1
            else:
                require_ok(ilp)
                i_total += ilp.seconds
                var_counts.append(ilp.extras["num_variables"])
        h_seconds[ratio] = h_total
        i_seconds[ratio] = i_total
        i_vars[ratio] = mean(var_counts)
        i_timeouts[ratio] = timeouts
    return Table2Result(
        num_ops, tuple(ratios), h_seconds, i_seconds, i_vars, i_timeouts, count
    )


def render(result: Table2Result) -> str:
    return format_table(
        ["lambda/lambda_min", "heuristic (m:ss)", "ILP (m:ss)", "mean ILP vars"],
        result.rows(),
        title=(
            f"Table 2 -- execution time for {result.samples} "
            f"{result.num_ops}-operation graphs vs latency relaxation"
        ),
    )


def main(samples: Optional[int] = None, workers: Optional[int] = None) -> str:
    text = render(run(samples=samples, workers=workers))
    print(text)
    return text
