"""Shared infrastructure for the evaluation experiments.

The paper evaluates on 200 random TGFF graphs per problem size, with
latency constraints built by relaxing the minimum achievable latency
``lambda_min`` by 0--30%.  This module centralises:

* problem construction (graph + relaxed constraint, SONIC models);
* deterministic seeding (graph ``i`` of size ``n`` is identical across
  experiments and runs);
* sample-count resolution (``REPRO_SAMPLES`` environment variable; the
  paper's 200 is the *fidelity* default, benchmarks use fewer for speed);
* wall-clock measurement helpers.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, TypeVar

from ..core.problem import Problem
from ..gen.tgff import TgffConfig, random_sequencing_graph
from ..ir.seqgraph import SequencingGraph

__all__ = [
    "DEFAULT_BASE_SEED",
    "ExperimentCase",
    "build_case",
    "relaxed_constraint",
    "resolve_samples",
    "time_call",
]

DEFAULT_BASE_SEED = 2001  # the venue year; every experiment shares it

T = TypeVar("T")


@dataclass(frozen=True)
class ExperimentCase:
    """One (graph, latency constraint) evaluation point."""

    num_ops: int
    sample: int
    relaxation: float
    lambda_min: int
    problem: Problem

    @property
    def graph(self) -> SequencingGraph:
        return self.problem.graph


def relaxed_constraint(lambda_min: int, relaxation: float) -> int:
    """Constraint for a relaxation of ``lambda_min`` (paper: 0%--30%)."""
    if relaxation < 0:
        raise ValueError("relaxation must be non-negative")
    return max(1, int(lambda_min * (1.0 + relaxation)))


def build_case(
    num_ops: int,
    sample: int,
    relaxation: float,
    base_seed: int = DEFAULT_BASE_SEED,
    config: Optional[TgffConfig] = None,
) -> ExperimentCase:
    """Deterministically build evaluation point (num_ops, sample, relaxation)."""
    graph = random_sequencing_graph(
        num_ops, seed=base_seed * 10_000 + num_ops * 100 + sample, config=config
    )
    scratch = Problem(graph, latency_constraint=1_000_000)
    lam_min = scratch.minimum_latency()
    problem = scratch.with_latency_constraint(
        relaxed_constraint(lam_min, relaxation)
    )
    return ExperimentCase(num_ops, sample, relaxation, lam_min, problem)


def resolve_samples(requested: Optional[int], default: int = 20) -> int:
    """Sample count: explicit argument > ``REPRO_SAMPLES`` env > default."""
    if requested is not None:
        return max(1, requested)
    env = os.environ.get("REPRO_SAMPLES")
    if env:
        return max(1, int(env))
    return default


def time_call(fn: Callable[[], T]) -> Tuple[T, float]:
    """Run ``fn`` and return (result, elapsed wall-clock seconds)."""
    began = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - began
