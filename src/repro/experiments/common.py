"""Shared infrastructure for the evaluation experiments.

The paper evaluates on 200 random TGFF graphs per problem size, with
latency constraints built by relaxing the minimum achievable latency
``lambda_min`` by 0--30%.  This module centralises:

* problem construction (graph + relaxed constraint, SONIC models);
* deterministic seeding (graph ``i`` of size ``n`` is identical across
  experiments and runs);
* sample-count resolution (``REPRO_SAMPLES`` environment variable; the
  paper's 200 is the *fidelity* default, benchmarks use fewer for speed);
* worker-count resolution (``REPRO_WORKERS``) for the engine's process
  pool -- every experiment fans its sweep out through
  :meth:`repro.engine.Engine.run_batch`;
* executor-mode resolution (``REPRO_EXECUTOR``: ``pool`` or
  ``process``) -- opt a whole sweep into the preemptive
  process-per-run executor without touching experiment code;
* wall-clock measurement helpers.

The solver's recomputation mode is likewise environment-driven:
``REPRO_SOLVER=scratch`` makes every DPAlloc run in a sweep recompute
each iteration from scratch (byte-identical results to the default
incremental mode; ``python -m repro.experiments parity`` enforces it).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, TypeVar

from ..core.problem import InfeasibleError, Problem
from ..core.solution import Datapath
from ..engine import AllocationResult, Engine
from ..gen.tgff import TgffConfig, random_sequencing_graph
from ..ir.seqgraph import SequencingGraph

__all__ = [
    "DEFAULT_BASE_SEED",
    "ExperimentCase",
    "build_case",
    "relaxed_constraint",
    "require_ok",
    "resolve_executor",
    "resolve_samples",
    "resolve_workers",
    "sweep_engine",
    "time_call",
]

DEFAULT_BASE_SEED = 2001  # the venue year; every experiment shares it

T = TypeVar("T")


@dataclass(frozen=True)
class ExperimentCase:
    """One (graph, latency constraint) evaluation point."""

    num_ops: int
    sample: int
    relaxation: float
    lambda_min: int
    problem: Problem

    @property
    def graph(self) -> SequencingGraph:
        return self.problem.graph


def relaxed_constraint(lambda_min: int, relaxation: float) -> int:
    """Constraint for a relaxation of ``lambda_min`` (paper: 0%--30%)."""
    if relaxation < 0:
        raise ValueError("relaxation must be non-negative")
    return max(1, int(lambda_min * (1.0 + relaxation)))


def build_case(
    num_ops: int,
    sample: int,
    relaxation: float,
    base_seed: int = DEFAULT_BASE_SEED,
    config: Optional[TgffConfig] = None,
) -> ExperimentCase:
    """Deterministically build evaluation point (num_ops, sample, relaxation)."""
    graph = random_sequencing_graph(
        num_ops, seed=base_seed * 10_000 + num_ops * 100 + sample, config=config
    )
    scratch = Problem(graph, latency_constraint=1_000_000)
    lam_min = scratch.minimum_latency()
    problem = scratch.with_latency_constraint(
        relaxed_constraint(lam_min, relaxation)
    )
    return ExperimentCase(num_ops, sample, relaxation, lam_min, problem)


def resolve_samples(requested: Optional[int], default: int = 20) -> int:
    """Sample count: explicit argument > ``REPRO_SAMPLES`` env > default."""
    if requested is not None:
        return max(1, requested)
    env = os.environ.get("REPRO_SAMPLES")
    if env:
        return max(1, int(env))
    return default


def resolve_workers(requested: Optional[int] = None, default: int = 1) -> int:
    """Engine pool width: explicit argument > ``REPRO_WORKERS`` env > default."""
    if requested is not None:
        return max(1, requested)
    env = os.environ.get("REPRO_WORKERS")
    if env:
        return max(1, int(env))
    return default


def resolve_executor(
    requested: Optional[str] = None, default: str = "pool"
) -> str:
    """Engine executor mode: explicit argument > ``REPRO_EXECUTOR`` env
    > default.  Raises ``ValueError`` on an unknown mode."""
    from ..engine import EXECUTORS

    value = requested or os.environ.get("REPRO_EXECUTOR") or default
    if value not in EXECUTORS:
        raise ValueError(
            f"executor must be one of {EXECUTORS}, got {value!r}"
        )
    return value


def sweep_engine(engine: Optional[Engine] = None) -> Engine:
    """The engine an experiment sweep runs through (callers may inject
    a cache-backed or pre-configured instance).  The default instance
    honours ``REPRO_EXECUTOR``."""
    return engine if engine is not None else Engine(executor=resolve_executor())


def require_ok(result: AllocationResult) -> Datapath:
    """Unwrap a successful envelope; re-raise failures as exceptions.

    The experiment sweeps expect every run to succeed (the paper's
    generators produce feasible instances); a failed envelope here means
    the sweep itself is broken, so the error is surfaced loudly instead
    of skewing a mean.
    """
    if result.ok:
        assert result.datapath is not None
        return result.datapath
    message = result.error or "allocation failed"
    if message.startswith("infeasible"):
        raise InfeasibleError(f"{result.allocator}: {message}")
    raise RuntimeError(f"{result.allocator}: {message}")


def time_call(fn: Callable[[], T]) -> Tuple[T, float]:
    """Run ``fn`` and return (result, elapsed wall-clock seconds)."""
    began = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - began
