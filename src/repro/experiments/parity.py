"""Incremental-vs-scratch solver parity over the full experiment sweep.

The solver pipeline (:mod:`repro.core.solver`) reuses per-iteration work
that a refinement provably did not invalidate; ``REPRO_SOLVER=scratch``
disables every reuse.  The two modes are *guaranteed* to produce
byte-identical canonical :class:`~repro.engine.AllocationResult` JSON --
this module enforces that guarantee over the union of every DPAlloc
request the experiment harness issues (fig3, fig4, fig5 including the
extended sizes, table2, and all ablation variants), deduplicated by
problem fingerprint and option set.

Run as ``python -m repro.experiments parity`` (the CI parity job uses
``REPRO_SAMPLES=1``); exits nonzero on the first divergence, printing
the offending request.
"""

from __future__ import annotations

import os
from dataclasses import asdict
from typing import Dict, List, Optional, Tuple

from ..core.solver import SOLVER_ENV
from ..engine import AllocationRequest, Engine
from . import ablations, fig3, fig4, fig5, table2
from .common import build_case, resolve_samples, resolve_workers

__all__ = ["sweep_requests", "run", "render", "main"]


def sweep_requests(samples: Optional[int] = None) -> List[AllocationRequest]:
    """Every distinct DPAlloc request of the full experiment sweep.

    Mirrors the grids of the five experiment modules (sizes,
    relaxations, sample counts, option variants) and deduplicates on
    ``(problem fingerprint, options)`` -- several experiments share
    evaluation points, and parity only needs each distinct solve once.
    """
    count = resolve_samples(samples)
    ablation_count = resolve_samples(samples, default=10)
    extended_count = min(count, 5)

    points: List[Tuple[int, int, float]] = []
    for n in fig3.DEFAULT_SIZES:
        for relaxation in fig3.DEFAULT_RELAXATIONS:
            points.extend((n, s, relaxation) for s in range(count))
    for n in fig4.DEFAULT_SIZES:  # fig5 shares this grid at relaxation 0
        points.extend((n, s, 0.0) for s in range(count))
    for n in fig5.EXTENDED_SIZES:
        points.extend(
            (n, s, fig5.EXTENDED_RELAXATION) for s in range(extended_count)
        )
    for ratio in table2.DEFAULT_RATIOS:
        points.extend(
            (table2.DEFAULT_NUM_OPS, s, ratio - 1.0) for s in range(count)
        )

    ablation_points: List[Tuple[int, int, float]] = []
    for n in ablations.DEFAULT_SIZES:
        for relaxation in ablations.DEFAULT_RELAXATIONS:
            ablation_points.extend(
                (n, s, relaxation) for s in range(ablation_count)
            )

    requests: List[AllocationRequest] = []
    seen: set = set()

    def add(num_ops: int, sample: int, relaxation: float, options: Dict) -> None:
        problem = build_case(num_ops, sample, relaxation).problem
        key = (problem.fingerprint(), tuple(sorted(options.items())))
        if key in seen:
            return
        seen.add(key)
        requests.append(AllocationRequest(
            problem, "dpalloc", options=options,
            label=f"tgff-{num_ops}-{sample}-{relaxation:g}",
        ))

    for num_ops, sample, relaxation in points:
        add(num_ops, sample, relaxation, {})
    for num_ops, sample, relaxation in ablation_points:
        add(num_ops, sample, relaxation, {})
        for variant in ablations.VARIANTS.values():
            add(num_ops, sample, relaxation, asdict(variant))
    return requests


def _run_mode(
    requests: List[AllocationRequest], mode: str, workers: int
) -> List[str]:
    """Canonical JSON of every request under one ``REPRO_SOLVER`` mode."""
    previous = os.environ.get(SOLVER_ENV)
    os.environ[SOLVER_ENV] = mode
    try:
        results = Engine().run_batch(requests, workers=workers)
    finally:
        if previous is None:
            os.environ.pop(SOLVER_ENV, None)
        else:
            os.environ[SOLVER_ENV] = previous
    return [result.canonical_json() for result in results]


def run(
    samples: Optional[int] = None,
    workers: Optional[int] = None,
) -> Dict:
    """Solve the full sweep incrementally and from scratch; diff the bytes."""
    requests = sweep_requests(samples)
    width = resolve_workers(workers)
    incremental = _run_mode(requests, "incremental", width)
    scratch = _run_mode(requests, "scratch", width)
    mismatches = [
        {
            "label": request.label,
            "options": dict(request.options),
            "incremental": inc,
            "scratch": scr,
        }
        for request, inc, scr in zip(requests, incremental, scratch)
        if inc != scr
    ]
    return {
        "requests": len(requests),
        "identical": len(requests) - len(mismatches),
        "mismatches": mismatches,
    }


def render(report: Dict) -> str:
    lines = [
        f"solver parity: {report['identical']}/{report['requests']} "
        f"requests byte-identical (incremental vs REPRO_SOLVER=scratch)"
    ]
    for entry in report["mismatches"]:
        lines.append(f"  MISMATCH {entry['label']} options={entry['options']}")
    return "\n".join(lines)


def main(samples: Optional[int] = None, workers: Optional[int] = None) -> str:
    report = run(samples=samples, workers=workers)
    text = render(report)
    print(text)
    if report["mismatches"]:
        raise SystemExit(1)
    return text
