"""Ablation studies of the heuristic's design choices (DESIGN.md §7).

The paper motivates several internal mechanisms without isolating their
contribution; these ablations quantify each one on the standard TGFF
sweep:

* **grow** -- Bindselect's clique-growth compensation for greedy
  selections (section 2.3, "the other modification to the heuristic
  presented in [1]");
* **shrink** -- the final cheapest-cover wordlength selection per clique;
* **selector** -- the minimum-edge-loss refinement rule of section 2.4
  vs arbitrary (name-order) choice;
* **blind refinement** -- refining any operation vs restricting to the
  bound critical path;
* **mode** -- scheduling under the derived minimal unit counts
  (``min-units``) vs the resource-unconstrained reading (``asap``).

Each ablation reports the mean area increase (%) of the crippled variant
over the full heuristic; positive numbers mean the mechanism pays off.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.metrics import mean, percent_increase
from ..analysis.reporting import format_table
from ..core.dpalloc import DPAllocOptions
from ..engine import AllocationRequest, Engine
from .common import (
    build_case,
    require_ok,
    resolve_samples,
    resolve_workers,
    sweep_engine,
)

__all__ = ["AblationResult", "VARIANTS", "DEFAULT_SIZES", "DEFAULT_RELAXATIONS", "run", "render"]

DEFAULT_SIZES = (6, 10, 14, 18)
DEFAULT_RELAXATIONS = (0.1, 0.3)

VARIANTS: Dict[str, DPAllocOptions] = {
    "no-grow": DPAllocOptions(grow=False),
    "no-shrink": DPAllocOptions(shrink=False),
    "name-order-selector": DPAllocOptions(selector="name-order"),
    "blind-refinement": DPAllocOptions(blind_refinement=True),
    "asap-mode": DPAllocOptions(mode="asap"),
    # Extension, not an ablation: best-of-both scheduling modes.  Its
    # mean increase is expected to be <= 0 (it can only match or beat
    # the default on every instance).
    "best-of-modes": DPAllocOptions(mode="best"),
}


@dataclass(frozen=True)
class AblationResult:
    """Mean area increase (%) of each variant over the full heuristic."""

    sizes: Tuple[int, ...]
    relaxations: Tuple[float, ...]
    mean_increase: Dict[str, float]
    worst_increase: Dict[str, float]
    wins: Dict[str, int]  # cases where the variant was strictly better
    cases: int

    def rows(self) -> List[List[object]]:
        return [
            [
                name,
                self.mean_increase[name],
                self.worst_increase[name],
                self.wins[name],
            ]
            for name in sorted(self.mean_increase)
        ]


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    relaxations: Sequence[float] = DEFAULT_RELAXATIONS,
    samples: Optional[int] = None,
    engine: Optional[Engine] = None,
    workers: Optional[int] = None,
) -> AblationResult:
    """Compare every ablation variant against the full heuristic.

    Each case fans out as ``1 + len(VARIANTS)`` engine requests (the
    full heuristic plus every crippled variant); options travel as the
    serialised ``DPAllocOptions`` fields, so the sweep is shardable and
    cacheable like any other batch.
    """
    count = resolve_samples(samples, default=10)
    variant_names = list(VARIANTS)
    requests: List[AllocationRequest] = []
    cases = 0
    for n in sizes:
        for relaxation in relaxations:
            for sample in range(count):
                problem = build_case(n, sample, relaxation).problem
                cases += 1
                requests.append(AllocationRequest(problem, "dpalloc"))
                for name in variant_names:
                    requests.append(AllocationRequest(
                        problem, "dpalloc", options=asdict(VARIANTS[name]),
                        label=name,
                    ))
    results = sweep_engine(engine).run_batch(
        requests, workers=resolve_workers(workers)
    )

    increases: Dict[str, List[float]] = {name: [] for name in VARIANTS}
    wins: Dict[str, int] = {name: 0 for name in VARIANTS}
    cursor = iter(results)
    for _ in range(cases):
        full = require_ok(next(cursor))
        for name in variant_names:
            variant = require_ok(next(cursor))
            increases[name].append(percent_increase(variant.area, full.area))
            if variant.area < full.area - 1e-9:
                wins[name] += 1
    return AblationResult(
        tuple(sizes),
        tuple(relaxations),
        {name: mean(vals) for name, vals in increases.items()},
        {name: max(vals) if vals else 0.0 for name, vals in increases.items()},
        wins,
        cases,
    )


def render(result: AblationResult) -> str:
    return format_table(
        ["variant", "mean area +%", "worst +%", "wins"],
        result.rows(),
        title=(
            f"Ablations -- area increase over the full heuristic "
            f"({result.cases} cases; sizes {list(result.sizes)}, "
            f"relaxations {list(result.relaxations)})"
        ),
    )


def main(samples: Optional[int] = None, workers: Optional[int] = None) -> str:
    text = render(run(samples=samples, workers=workers))
    print(text)
    return text
