"""Experiment harness regenerating every figure and table of the paper."""

from . import ablations, fig3, fig4, fig5, parity, table2
from .common import (
    DEFAULT_BASE_SEED,
    ExperimentCase,
    build_case,
    relaxed_constraint,
    resolve_samples,
    time_call,
)

__all__ = [
    "DEFAULT_BASE_SEED",
    "ExperimentCase",
    "ablations",
    "build_case",
    "fig3",
    "fig4",
    "fig5",
    "parity",
    "relaxed_constraint",
    "resolve_samples",
    "table2",
    "time_call",
]
