"""Top-level command-line interface: ``python -m repro``.

Subcommands:

* ``list-workloads`` -- the named DSP kernels shipped with the library;
* ``allocate`` -- run one allocator on a named workload or a JSON graph
  and print the datapath report (optionally export JSON / DOT / Verilog);
* ``compare`` -- run every registered allocator on one problem and
  tabulate areas (infeasible methods are reported per-row; the exit code
  is nonzero only when *every* method fails);
* ``batch`` -- fan several workloads x methods out over the engine's
  process pool, optionally against an on-disk result cache.

All dispatch goes through the allocator registry
(:mod:`repro.engine`): ``--method`` choices are discovered, never
hard-coded, so strategies registered by plugins appear automatically.

Examples::

    python -m repro list-workloads
    python -m repro allocate fir --relax 0.5
    python -m repro allocate biquad --method ilp --json out.json
    python -m repro allocate fir --relax 1.0 --verilog fir.v
    python -m repro compare motivational --relax 1.0
    python -m repro batch fir biquad dct4 --workers 4 --cache-dir .cache
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Tuple

from . import Problem
from .analysis.reporting import format_table
from .engine import AllocationRequest, Engine, allocator_names
from .gen import workloads
from .io import (
    datapath_to_dict,
    datapath_to_dot,
    graph_from_dict,
    load_json,
    save_json,
)

__all__ = ["main", "WORKLOADS"]

# name -> (graph factory, netlist factory or None)
WORKLOADS: Dict[str, Tuple[Callable, Optional[Callable]]] = {
    "motivational": (
        workloads.motivational_example, workloads.motivational_example_netlist
    ),
    "fir": (workloads.fir_filter, workloads.fir_filter_netlist),
    "biquad": (workloads.iir_biquad, workloads.iir_biquad_netlist),
    "ycbcr": (workloads.rgb_to_ycbcr, workloads.rgb_to_ycbcr_netlist),
    "dct4": (workloads.dct4, workloads.dct4_netlist),
    "lattice": (workloads.lattice_filter, workloads.lattice_filter_netlist),
    "conv3x3": (workloads.conv3x3, workloads.conv3x3_netlist),
    "cmul": (workloads.complex_multiply, workloads.complex_multiply_netlist),
}


def _load_graph(source: str):
    if source in WORKLOADS:
        return WORKLOADS[source][0]()
    data = load_json(source)
    return graph_from_dict(data)


def _build_problem(workload: str, relax: float, latency: Optional[int]) -> Problem:
    graph = _load_graph(workload)
    scratch = Problem(graph, latency_constraint=1_000_000)
    lam_min = scratch.minimum_latency()
    if latency is not None:
        constraint = latency
    else:
        constraint = max(1, int(lam_min * (1.0 + relax)))
    return scratch.with_latency_constraint(constraint)


def _engine(args) -> Engine:
    return Engine(cache_dir=getattr(args, "cache_dir", None))


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _cmd_list_workloads(_args) -> int:
    rows = []
    for name, (factory, _) in sorted(WORKLOADS.items()):
        graph = factory()
        muls = sum(1 for op in graph.operations if op.resource_kind == "mul")
        adds = len(graph) - muls
        lam = Problem(graph, latency_constraint=1_000_000).minimum_latency()
        rows.append([name, len(graph), muls, adds, lam])
    print(format_table(
        ["workload", "|O|", "muls", "adds", "lambda_min"], rows,
        title="Named workloads",
    ))
    return 0


def _cmd_allocate(args) -> int:
    problem = _build_problem(args.workload, args.relax, args.latency)
    result = _engine(args).run(AllocationRequest(problem, args.method))
    if not result.ok:
        print(f"{args.method}: {result.error}", file=sys.stderr)
        return 1
    datapath = result.datapath
    print(
        f"workload {args.workload}: |O|={len(problem.graph)}, "
        f"lambda={problem.latency_constraint}"
    )
    print(datapath.summary())

    if args.json:
        save_json(datapath_to_dict(datapath), args.json)
        print(f"wrote {args.json}")
    if args.dot:
        from pathlib import Path

        Path(args.dot).write_text(datapath_to_dot(problem.graph, datapath))
        print(f"wrote {args.dot}")
    if args.verilog:
        netlist_factory = WORKLOADS.get(args.workload, (None, None))[1]
        if netlist_factory is None:
            print("--verilog needs a workload with wiring (named kernels)",
                  file=sys.stderr)
            return 1
        from pathlib import Path

        from .rtl import generate_verilog

        design = generate_verilog(netlist_factory(), datapath)
        Path(args.verilog).write_text(design.source)
        print(f"wrote {args.verilog} ({design.unit_count} units)")
    return 0


def _result_row(name: str, result) -> list:
    if result.ok:
        dp = result.datapath
        return [name, f"{dp.area:g}", dp.makespan, dp.unit_count()]
    reason = (result.error or "failed").split(":", 1)[0]
    return [name, reason, "-", "-"]


def _cmd_compare(args) -> int:
    problem = _build_problem(args.workload, args.relax, args.latency)
    methods = allocator_names()
    results = _engine(args).run_batch(
        [AllocationRequest(problem, name) for name in methods],
        workers=args.workers,
    )
    rows = [_result_row(name, result) for name, result in zip(methods, results)]
    print(format_table(
        ["method", "area", "latency", "units"], rows,
        title=(
            f"{args.workload}: |O|={len(problem.graph)}, "
            f"lambda={problem.latency_constraint}"
        ),
    ))
    for name, result in zip(methods, results):
        if not result.ok:
            print(f"{name}: {result.error}", file=sys.stderr)
    return 0 if any(result.ok for result in results) else 1


def _cmd_batch(args) -> int:
    methods = (
        [m.strip() for m in args.methods.split(",") if m.strip()]
        if args.methods
        else allocator_names()
    )
    unknown = [m for m in methods if m not in allocator_names()]
    if unknown:
        print(
            f"unknown methods {unknown}; registered: {allocator_names()}",
            file=sys.stderr,
        )
        return 2

    requests = []
    for workload in args.workloads:
        problem = _build_problem(workload, args.relax, args.latency)
        for method in methods:
            requests.append(AllocationRequest(
                problem, method, label=workload, timeout=args.timeout,
            ))
    results = _engine(args).run_batch(requests, workers=args.workers)

    rows = []
    for result in results:
        row = _result_row(result.allocator, result)
        cached = " (cached)" if result.cached else ""
        rows.append([result.label, *row, f"{result.seconds:.3f}s{cached}"])
    print(format_table(
        ["workload", "method", "area", "latency", "units", "time"], rows,
        title=(
            f"batch: {len(args.workloads)} workloads x {len(methods)} methods"
            + (f", {args.workers} workers" if args.workers else "")
        ),
    ))
    if args.json:
        from .io import allocation_result_to_dict

        save_json(
            {
                "kind": "allocation-batch",
                "results": [allocation_result_to_dict(r) for r in results],
            },
            args.json,
        )
        print(f"wrote {args.json}")
    for result in results:
        if not result.ok:
            print(f"{result.label}/{result.allocator}: {result.error}",
                  file=sys.stderr)
    return 0 if any(result.ok for result in results) else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Heuristic datapath allocation for multiple wordlength systems",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-workloads", help="list named DSP kernels")

    methods = allocator_names()

    def add_problem_args(cmd, workload_nargs=None):
        if workload_nargs:
            cmd.add_argument(
                "workloads", nargs=workload_nargs,
                help=f"named workloads ({', '.join(sorted(WORKLOADS))}) "
                     f"or JSON graph files",
            )
        else:
            cmd.add_argument(
                "workload",
                help=f"named workload ({', '.join(sorted(WORKLOADS))}) "
                     f"or JSON graph file",
            )
        cmd.add_argument("--relax", type=float, default=0.3,
                         help="relaxation over lambda_min (default 0.3)")
        cmd.add_argument("--latency", type=int, default=None,
                         help="absolute latency constraint (overrides --relax)")
        cmd.add_argument("--cache-dir", default=None,
                         help="directory for the on-disk result cache")

    cmd = sub.add_parser("allocate", help="allocate one workload with one method")
    add_problem_args(cmd)
    cmd.add_argument("--method", choices=methods, default="dpalloc")
    cmd.add_argument("--json", help="write the datapath as JSON")
    cmd.add_argument("--dot", help="write a Graphviz rendering")
    cmd.add_argument("--verilog", help="write structural Verilog")

    cmd = sub.add_parser("compare", help="run every registered allocator")
    add_problem_args(cmd)
    cmd.add_argument("--workers", type=_positive_int, default=None,
                     help="process-pool width (default: serial)")

    cmd = sub.add_parser(
        "batch", help="run workloads x methods through the engine's pool"
    )
    add_problem_args(cmd, workload_nargs="+")
    cmd.add_argument("--methods", default=None,
                     help=f"comma-separated subset of: {', '.join(methods)}")
    cmd.add_argument("--workers", type=_positive_int, default=None,
                     help="process-pool width (default: serial)")
    cmd.add_argument("--timeout", type=float, default=None,
                     help="per-run wall-clock budget in seconds")
    cmd.add_argument("--json", help="write the full result envelopes as JSON")

    args = parser.parse_args(argv)
    handlers = {
        "list-workloads": _cmd_list_workloads,
        "allocate": _cmd_allocate,
        "compare": _cmd_compare,
        "batch": _cmd_batch,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
