"""Top-level command-line interface: ``python -m repro``.

Subcommands:

* ``list-workloads`` -- the named DSP kernels shipped with the library;
* ``allocate`` -- run one allocator on a named workload or a JSON graph
  and print the datapath report (optionally export JSON / DOT / Verilog;
  ``--trace`` records and prints the solver's per-iteration convergence
  trace, which also rides into the ``--json`` export);
* ``trace`` -- summarise the solver iteration trace stored in a
  datapath / allocation-result / allocation-batch JSON file;
* ``delta`` -- warm-start re-solve of an *edited* problem
  (``--edit latency=40``, ``--edit width:op3=8,10``, ``--edit
  limit:mul=2``): the engine replays the recorded base solve as far as
  the edits allow and re-solves only the divergent tail, with canonical
  output byte-identical to a cold solve (``--url`` sends the request to
  a running service's ``POST /delta`` instead);
* ``compare`` -- run every registered allocator on one problem and
  tabulate areas (infeasible methods are reported per-row; the exit code
  is nonzero only when *every* method fails);
* ``batch`` -- fan several workloads x methods out over the engine
  (process pool or preemptive process-per-run), optionally against an
  on-disk result cache; ``--from-shard`` executes one shard manifest
  instead;
* ``shard`` -- partition a workloads x methods sweep into N shard
  manifests by ``Problem.fingerprint()`` (run each anywhere);
* ``merge`` -- merge per-shard result files back into one
  index-ordered batch result;
* ``cache`` -- inspect / prune / clear an engine result cache;
* ``serve`` -- run one asyncio HTTP/JSON allocation worker
  (``POST /v1/allocate``, ``/v1/batch``, ``/v1/delta``,
  ``GET /v1/healthz``, ``/v1/stats`` plus the deprecated unversioned
  paths; see ``docs/service.md``);
* ``fleet`` -- run the fleet coordinator: spawn ``--workers N`` local
  ``serve`` processes (or front externally launched ones with
  ``--worker-url``), route by ``Problem.fingerprint()``, dedup
  fleet-wide, requeue work from dead workers, and shed over-limit
  priority classes with typed 429s (see ``docs/service.md``);
* ``submit`` -- deprecated alias of ``batch --url`` (prints a warning
  and maps through);
* ``lint`` -- run **reprolint**, the AST-based checker for the repo's
  parity and concurrency contracts (rules RL001..RL005, inline
  suppressions, CI baseline; see ``docs/static-analysis.md``).

All dispatch goes through the allocator registry
(:mod:`repro.engine`): ``--method`` choices are discovered, never
hard-coded, so strategies registered by plugins appear automatically.

Examples::

    python -m repro list-workloads
    python -m repro allocate fir --relax 0.5
    python -m repro allocate fir --trace --json fir.json
    python -m repro trace fir.json
    python -m repro allocate biquad --method ilp --json out.json
    python -m repro delta fir --cache-dir .cache --edit latency=40
    python -m repro delta fir --edit width:mul2=8,10 --edit limit:mul=2
    python -m repro allocate fir --relax 1.0 --verilog fir.v
    python -m repro compare motivational --relax 1.0 --workers 4
    python -m repro batch fir biquad dct4 --workers 4 --cache-dir .cache
    python -m repro batch fir dct4 --timeout 5 --executor process

Sharded sweep workflow (each shard may run on a different host)::

    python -m repro shard fir biquad dct4 lattice --shards 3 --out-dir shards/
    python -m repro batch --from-shard shards/shard-00.json --json out-00.json
    python -m repro batch --from-shard shards/shard-01.json --json out-01.json
    python -m repro batch --from-shard shards/shard-02.json --json out-02.json
    python -m repro merge out-00.json out-01.json out-02.json --json merged.json

Cache lifecycle::

    python -m repro cache stats .cache
    python -m repro cache prune .cache --max-mb 64
    python -m repro cache clear .cache

Allocation service (worker, fleet, client)::

    python -m repro serve --port 8035 --workers 4 --cache-dir .cache
    python -m repro fleet --port 8040 --workers 4 --shared-cache-dir .store
    python -m repro batch fir biquad --url http://127.0.0.1:8040
    python -m repro allocate fir --url http://127.0.0.1:8040
    python -m repro delta fir --url http://127.0.0.1:8040 --edit latency=40

``allocate``/``batch``/``compare``/``delta`` share one service surface
(``--url``/``--http-timeout``/``--priority``), one engine surface
(``--workers``/``--timeout``/``--executor``) and one cache surface
(``--cache-dir``/``--cache-max-mb``/``--shared-cache-dir``); with
``--url`` the work runs on the remote backend, without it locally,
with byte-identical canonical envelopes either way.

Static analysis (part of the pre-PR checklist)::

    python -m repro lint src/repro
    python -m repro lint --list-rules
    python -m repro lint --explain RL001
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Tuple

from . import Problem
from .analysis.reporting import format_table, format_trace
from .engine import (
    EXECUTORS,
    PRIORITY_CLASSES,
    AllocationRequest,
    Engine,
    allocator_names,
)
from .gen import workloads
from .io import (
    datapath_to_dict,
    datapath_to_dot,
    graph_from_dict,
    load_json,
    save_json,
)

__all__ = ["main", "WORKLOADS"]

# name -> (graph factory, netlist factory or None)
WORKLOADS: Dict[str, Tuple[Callable, Optional[Callable]]] = {
    "motivational": (
        workloads.motivational_example, workloads.motivational_example_netlist
    ),
    "fir": (workloads.fir_filter, workloads.fir_filter_netlist),
    "biquad": (workloads.iir_biquad, workloads.iir_biquad_netlist),
    "ycbcr": (workloads.rgb_to_ycbcr, workloads.rgb_to_ycbcr_netlist),
    "dct4": (workloads.dct4, workloads.dct4_netlist),
    "lattice": (workloads.lattice_filter, workloads.lattice_filter_netlist),
    "conv3x3": (workloads.conv3x3, workloads.conv3x3_netlist),
    "cmul": (workloads.complex_multiply, workloads.complex_multiply_netlist),
}


def _load_graph(source: str):
    if source in WORKLOADS:
        return WORKLOADS[source][0]()
    data = load_json(source)
    return graph_from_dict(data)


DEFAULT_RELAX = 0.3


def _build_problem(
    workload: str, relax: Optional[float], latency: Optional[int]
) -> Problem:
    # relax=None means "not given on the command line" (so flag-conflict
    # checks can tell); it resolves to DEFAULT_RELAX here.
    if relax is None:
        relax = DEFAULT_RELAX
    graph = _load_graph(workload)
    scratch = Problem(graph, latency_constraint=1_000_000)
    lam_min = scratch.minimum_latency()
    if latency is not None:
        constraint = latency
    else:
        constraint = max(1, int(lam_min * (1.0 + relax)))
    return scratch.with_latency_constraint(constraint)


def _engine(args) -> Engine:
    cache_dir = getattr(args, "cache_dir", None)
    cache_max_mb = getattr(args, "cache_max_mb", None)
    shared_dir = getattr(args, "shared_cache_dir", None)
    if cache_max_mb is not None and cache_dir is None:
        print("--cache-max-mb requires --cache-dir", file=sys.stderr)
        raise SystemExit(2)
    if shared_dir is not None and cache_dir is None:
        print("--shared-cache-dir requires --cache-dir", file=sys.stderr)
        raise SystemExit(2)
    return Engine(
        cache_dir=cache_dir,
        cache_max_mb=cache_max_mb,
        cache_shared_dir=shared_dir,
        executor=getattr(args, "executor", None) or "pool",
    )


def _backend(args):
    """The one :class:`repro.engine.Backend` the command runs against.

    ``--url`` selects a :class:`~repro.service.ServiceClient` (worker
    or fleet coordinator -- same wire surface); otherwise the local
    :class:`Engine`.  Both satisfy ``run``/``run_delta``/``run_batch``
    with identical envelope semantics, so command handlers do not
    branch beyond this point.
    """
    url = getattr(args, "url", None)
    if url:
        from .service import ServiceClient

        return ServiceClient(
            url, timeout=getattr(args, "http_timeout", 600.0)
        )
    return _engine(args)


# Deprecated spellings warn once per process, then map through.
_DEPRECATION_WARNED: set = set()


def _warn_deprecated(old: str, new: str) -> None:
    if old in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(old)
    print(f"warning: {old} is deprecated; use {new}", file=sys.stderr)


class _DeprecatedAlias(argparse.Action):
    """An option kept for compatibility: warn once, store normally."""

    def __init__(self, *args, new_name: str = "", **kwargs):
        self.new_name = new_name
        super().__init__(*args, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        _warn_deprecated(option_string or self.dest, self.new_name)
        setattr(namespace, self.dest, values)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _parse_queue_limit(spec: str):
    """One ``--queue-limit CLASS=N`` specification -> ``(class, n)``."""
    name, sep, value = spec.partition("=")
    if not sep or name not in PRIORITY_CLASSES:
        raise argparse.ArgumentTypeError(
            f"queue limit {spec!r}: expected CLASS=N with CLASS one of "
            f"{', '.join(PRIORITY_CLASSES)}"
        )
    try:
        limit = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"queue limit {spec!r}: bad count {value!r}"
        ) from None
    if limit < 1:
        raise argparse.ArgumentTypeError(
            f"queue limit {spec!r}: count must be >= 1"
        )
    return name, limit


def _cmd_list_workloads(_args) -> int:
    rows = []
    for name, (factory, _) in sorted(WORKLOADS.items()):
        graph = factory()
        muls = sum(1 for op in graph.operations if op.resource_kind == "mul")
        adds = len(graph) - muls
        lam = Problem(graph, latency_constraint=1_000_000).minimum_latency()
        rows.append([name, len(graph), muls, adds, lam])
    print(format_table(
        ["workload", "|O|", "muls", "adds", "lambda_min"], rows,
        title="Named workloads",
    ))
    return 0


def _cmd_allocate(args) -> int:
    problem = _build_problem(args.workload, args.relax, args.latency)
    options = {}
    if args.trace:
        if args.method == "dpalloc":
            options = {"trace": True}
        else:
            print(
                f"--trace: iteration traces are recorded by the dpalloc "
                f"solver only; running {args.method} untraced",
                file=sys.stderr,
            )
    result = _backend(args).run(
        AllocationRequest(
            problem, args.method, options=options,
            priority=getattr(args, "priority", None),
        )
    )
    if not result.ok:
        print(f"{args.method}: {result.error}", file=sys.stderr)
        return 1
    datapath = result.datapath
    print(
        f"workload {args.workload}: |O|={len(problem.graph)}, "
        f"lambda={problem.latency_constraint}"
    )
    print(datapath.summary())
    if result.trace:
        print()
        print(format_trace(result.trace))

    if args.json:
        save_json(datapath_to_dict(datapath), args.json)
        print(f"wrote {args.json}")
    if args.dot:
        from pathlib import Path

        Path(args.dot).write_text(datapath_to_dot(problem.graph, datapath))
        print(f"wrote {args.dot}")
    if args.verilog:
        netlist_factory = WORKLOADS.get(args.workload, (None, None))[1]
        if netlist_factory is None:
            print("--verilog needs a workload with wiring (named kernels)",
                  file=sys.stderr)
            return 1
        from pathlib import Path

        from .rtl import generate_verilog

        design = generate_verilog(netlist_factory(), datapath)
        Path(args.verilog).write_text(design.source)
        print(f"wrote {args.verilog} ({design.unit_count} units)")
    return 0


def _parse_edit(spec: str):
    """One ``--edit`` specification -> a :data:`repro.core.delta.Edit`.

    Forms: ``latency=N``, ``width:OP=W1[,W2,...]``, ``limit:KIND=N`` or
    ``limit:KIND=none`` (clear the kind's resource ceiling).
    """
    from .core.delta import ConstraintEdit, DeadlineEdit, WordlengthEdit

    head, sep, value = spec.partition("=")
    kind, colon, target = head.partition(":")
    try:
        if sep:
            if kind == "latency" and not colon:
                return DeadlineEdit(int(value))
            if kind == "width" and target:
                widths = tuple(int(w) for w in value.split(",") if w)
                if widths:
                    return WordlengthEdit(target, widths)
            if kind == "limit" and target:
                limit = None if value.lower() == "none" else int(value)
                return ConstraintEdit(target, limit)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"edit {spec!r}: bad value {value!r}"
        ) from None
    raise argparse.ArgumentTypeError(
        f"edit {spec!r} is not one of: latency=N, width:OP=W1[,W2,...], "
        f"limit:KIND=N|none"
    )


def _cmd_delta(args) -> int:
    from .core.delta import apply_edits
    from .engine import DeltaRequest

    problem = _build_problem(args.workload, args.relax, args.latency)
    request = DeltaRequest(edits=tuple(args.edit), base_problem=problem)
    result = _backend(args).run_delta(request)
    meta = dict(result.delta or {})
    strategy = meta.get("strategy", "?")
    if not result.ok:
        print(f"delta ({strategy}): {result.error}", file=sys.stderr)
        return 1
    edited = apply_edits(problem, request.edits)
    print(
        f"workload {args.workload}: |O|={len(problem.graph)}, "
        f"lambda={problem.latency_constraint} -> {edited.latency_constraint} "
        f"({len(request.edits)} edit(s))"
    )
    print(result.datapath.summary())
    detail = f"delta strategy: {strategy}"
    if "verified_iterations" in meta:
        detail += (
            f" (replayed {meta['verified_iterations']}, "
            f"re-solved {meta['resumed_iterations']} iterations)"
        )
    print(detail)
    if args.json:
        from .io import allocation_result_to_dict

        save_json(allocation_result_to_dict(result), args.json)
        print(f"wrote {args.json}")
    return 0


def _result_row(name: str, result) -> list:
    if result.ok:
        dp = result.datapath
        return [name, f"{dp.area:g}", dp.makespan, dp.unit_count()]
    reason = (result.error or "failed").split(":", 1)[0]
    return [name, reason, "-", "-"]


def _cmd_compare(args) -> int:
    problem = _build_problem(args.workload, args.relax, args.latency)
    methods = allocator_names()
    results = _backend(args).run_batch(
        [
            AllocationRequest(
                problem, name, timeout=args.timeout,
                priority=getattr(args, "priority", None),
            )
            for name in methods
        ],
        workers=args.workers,
    )
    rows = [_result_row(name, result) for name, result in zip(methods, results)]
    print(format_table(
        ["method", "area", "latency", "units"], rows,
        title=(
            f"{args.workload}: |O|={len(problem.graph)}, "
            f"lambda={problem.latency_constraint}"
        ),
    ))
    for name, result in zip(methods, results):
        if not result.ok:
            print(f"{name}: {result.error}", file=sys.stderr)
    return 0 if any(result.ok for result in results) else 1


def _sweep_requests(args):
    """Build the workloads x methods request list shared by ``batch``
    and ``shard``; ``None`` after printing an error (exit code 2)."""
    methods = (
        [m.strip() for m in args.methods.split(",") if m.strip()]
        if args.methods
        else allocator_names()
    )
    unknown = [m for m in methods if m not in allocator_names()]
    if unknown:
        print(
            f"unknown methods {unknown}; registered: {allocator_names()}",
            file=sys.stderr,
        )
        return None

    requests = []
    for workload in args.workloads:
        problem = _build_problem(workload, args.relax, args.latency)
        for method in methods:
            requests.append(AllocationRequest(
                problem, method, label=workload, timeout=args.timeout,
                priority=getattr(args, "priority", None),
            ))
    return requests


def _print_results_table(results, title: str) -> None:
    rows = []
    for result in results:
        row = _result_row(result.allocator, result)
        cached = " (cached)" if result.cached else ""
        rows.append([result.label, *row, f"{result.seconds:.3f}s{cached}"])
    print(format_table(
        ["workload", "method", "area", "latency", "units", "time"], rows,
        title=title,
    ))


def _report_failures(results) -> int:
    for result in results:
        if not result.ok:
            print(f"{result.label}/{result.allocator}: {result.error}",
                  file=sys.stderr)
    return 0 if any(result.ok for result in results) else 1


def _cmd_batch(args) -> int:
    if args.from_shard:
        if getattr(args, "url", None):
            print("--from-shard executes locally; it cannot be combined "
                  "with --url", file=sys.stderr)
            return 2
        if args.workloads:
            print("--from-shard replaces the workloads arguments; "
                  "give one or the other", file=sys.stderr)
            return 2
        # The manifest fixes each request's problem, method, options
        # and timeout; refuse flags that would otherwise be silently
        # dropped (execution flags -- --workers/--executor/--cache-* --
        # still apply).
        ignored = [
            flag
            for flag, given in (
                ("--methods", args.methods is not None),
                ("--timeout", args.timeout is not None),
                ("--latency", args.latency is not None),
                ("--relax", args.relax is not None),
            )
            if given
        ]
        if ignored:
            print(
                f"{', '.join(ignored)} cannot be combined with "
                f"--from-shard: the shard manifest already fixes the "
                f"requests (re-run 'shard' to change them)",
                file=sys.stderr,
            )
            return 2
        return _run_shard_file(args)
    if not args.workloads:
        print("batch needs workloads (or --from-shard MANIFEST)",
              file=sys.stderr)
        return 2
    requests = _sweep_requests(args)
    if requests is None:
        return 2
    backend = _backend(args)
    if getattr(args, "url", None):
        from .service import ServiceError

        try:
            results = backend.run_batch(requests, workers=args.workers)
        except ServiceError as exc:
            print(f"batch --url failed: {exc}", file=sys.stderr)
            return 2
        title_suffix = f", served by {args.url}"
    else:
        results = backend.run_batch(requests, workers=args.workers)
        title_suffix = f", {args.workers} workers" if args.workers else ""

    methods = sorted({r.allocator for r in results})
    _print_results_table(results, title=(
        f"batch: {len(args.workloads)} workloads x {len(methods)} methods"
        + title_suffix
    ))
    if args.json:
        from .io import batch_results_to_dict

        save_json(batch_results_to_dict(results), args.json)
        print(f"wrote {args.json}")
    return _report_failures(results)


def _run_shard_file(args) -> int:
    """``batch --from-shard``: execute one shard manifest.

    The manifest's requests carry their own timeouts/options; problem
    flags (``--relax``/``--latency``/``--methods``) do not apply.  The
    ``--json`` output is a ``shard-results`` payload (it keeps original
    request indices) for ``repro merge``.
    """
    from .engine import load_shard_manifest, run_shard

    manifest = load_shard_manifest(args.from_shard)
    payload = run_shard(
        manifest,
        engine=_engine(args),
        workers=args.workers,
    )
    from .io import allocation_result_from_dict

    results = [
        allocation_result_from_dict(entry["result"])
        for entry in payload["results"]
    ]
    _print_results_table(results, title=(
        f"shard {manifest.shard + 1}/{manifest.num_shards}: "
        f"{len(manifest.requests)} of {manifest.total} requests"
    ))
    if args.json:
        save_json(payload, args.json)
        print(f"wrote {args.json}")
    if not results:
        return 0  # an empty shard ran vacuously fine
    return _report_failures(results)


def _cmd_shard(args) -> int:
    requests = _sweep_requests(args)
    if requests is None:
        return 2
    from .engine import write_shard_manifests

    paths = write_shard_manifests(requests, args.shards, args.out_dir)
    from .engine import load_shard_manifest

    rows = [
        [path.name, len(load_shard_manifest(path).requests)]
        for path in paths
    ]
    print(format_table(
        ["manifest", "requests"], rows,
        title=f"{len(requests)} requests over {args.shards} shards "
              f"in {args.out_dir}",
    ))
    print(
        "run each with: python -m repro batch --from-shard "
        f"{args.out_dir}/shard-NN.json --json out-NN.json"
    )
    return 0


def _cmd_merge(args) -> int:
    from .engine import merge_shard_results
    from .io import batch_results_to_dict

    try:
        results = merge_shard_results(load_json(path) for path in args.results)
    except (ValueError, OSError) as exc:
        print(f"merge failed: {exc}", file=sys.stderr)
        return 2
    _print_results_table(results, title=(
        f"merged {len(args.results)} shard files: {len(results)} results"
    ))
    if args.json:
        save_json(batch_results_to_dict(results), args.json)
        print(f"wrote {args.json}")
    return _report_failures(results)


def _cmd_trace(args) -> int:
    """Summarise solver iteration traces stored in a JSON artefact."""
    from .io import allocation_result_from_dict, datapath_from_dict

    try:
        data = load_json(args.file)
    except (OSError, ValueError) as exc:
        print(f"trace: cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    kind = data.get("kind") if isinstance(data, dict) else None
    found = []
    try:
        if kind == "datapath":
            datapath = datapath_from_dict(data)
            found.append((datapath.method, datapath.trace))
        elif kind == "allocation-result":
            result = allocation_result_from_dict(data)
            found.append((result.label or result.allocator, result.trace))
        elif kind == "allocation-batch":
            for entry in data.get("results", []):
                result = allocation_result_from_dict(entry)
                label = f"{result.label or '-'}/{result.allocator}"
                found.append((label, result.trace))
        else:
            print(
                f"trace: {args.file} holds no datapath / allocation-result "
                f"/ allocation-batch payload (kind={kind!r})",
                file=sys.stderr,
            )
            return 2
    except (KeyError, TypeError, ValueError) as exc:
        print(f"trace: malformed payload in {args.file}: {exc}", file=sys.stderr)
        return 2
    traced = [(label, events) for label, events in found if events]
    if not traced:
        print(
            "trace: no iteration traces recorded -- allocate with --trace "
            "(or engine options={'trace': True}) to capture them",
            file=sys.stderr,
        )
        return 1
    for index, (label, events) in enumerate(traced):
        if index:
            print()
        last = events[-1]
        print(format_trace(
            events,
            title=(
                f"{label}: {len(events)} iterations -> makespan "
                f"{last.makespan}, area {last.area:g}"
            ),
        ))
    return 0


def _cmd_serve(args) -> int:
    """Run the asyncio HTTP/JSON allocation service until interrupted."""
    import asyncio

    from .service import AllocationServer

    # _engine() validates the flag combinations (e.g. --cache-max-mb
    # without --cache-dir exits 2 with a message, not a traceback).
    engine = _engine(args)

    async def _serve() -> None:
        server = AllocationServer(
            engine,
            host=args.host,
            port=args.port,
            max_concurrency=args.workers,
            default_timeout=args.default_timeout,
        )
        await server.start()
        print(
            f"repro service listening on {server.url} "
            f"(workers={args.workers}, executor={args.executor}, "
            f"cache={args.cache_dir or 'off'})",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("repro service stopped", file=sys.stderr)
    return 0


def _cmd_submit(args) -> int:
    """Deprecated alias: ``submit ...`` == ``batch ... --url URL``."""
    _warn_deprecated("submit", "batch --url")
    args.from_shard = None
    return _cmd_batch(args)


def _cmd_fleet(args) -> int:
    """Run the fleet coordinator (spawning workers unless given URLs)."""
    import asyncio
    import contextlib
    import signal

    from .service import FleetCoordinator
    from .service.fleet import WorkerPool

    queue_limits = dict(args.queue_limit or [])

    def _sigterm(signum: int, frame: object) -> None:
        # Supervisors (systemd/k8s) send SIGTERM; without this the
        # process dies before the ExitStack reaps spawned workers.
        raise KeyboardInterrupt

    async def _run(urls) -> None:
        coordinator = FleetCoordinator(
            urls,
            host=args.host,
            port=args.port,
            shared_dir=args.shared_cache_dir,
            queue_limits=queue_limits,
            max_attempts=args.max_attempts,
            worker_timeout=args.worker_timeout,
        )
        await coordinator.start()
        print(
            f"repro fleet listening on {coordinator.url} "
            f"fronting {len(urls)} worker(s) "
            f"(store={args.shared_cache_dir or 'off'})",
            flush=True,
        )
        try:
            await coordinator.serve_forever()
        finally:
            await coordinator.stop()

    previous = signal.signal(signal.SIGTERM, _sigterm)
    try:
        with contextlib.ExitStack() as stack:
            if args.worker_url:
                urls = list(args.worker_url)
            else:
                pool = stack.enter_context(WorkerPool(
                    args.workers,
                    shared_dir=args.shared_cache_dir,
                    executor=args.executor,
                    max_concurrency=args.worker_concurrency,
                    default_timeout=args.default_timeout,
                ))
                urls = pool.urls
            try:
                asyncio.run(_run(urls))
            except KeyboardInterrupt:
                print("repro fleet stopped", file=sys.stderr)
    finally:
        signal.signal(signal.SIGTERM, previous)
    return 0


def _cmd_lint(args) -> int:
    """Run reprolint; heavy lifting lives in repro.devtools.lint."""
    from .devtools.lint import run_from_args

    return run_from_args(args)


def _cmd_cache(args) -> int:
    import json as json_module

    engine = Engine(cache_dir=args.cache_dir)
    if args.action == "stats":
        stats = engine.cache_stats()
        print(json_module.dumps(stats, indent=2, sort_keys=True))
        if stats and stats.get("stale_dropped"):
            print(
                f"note: skipped {stats['stale_dropped']} manifest entries "
                f"whose files were deleted behind the cache's back",
                file=sys.stderr,
            )
        return 0
    if args.action == "prune":
        if args.max_mb is None:
            print("cache prune needs --max-mb", file=sys.stderr)
            return 2
        try:
            report = engine.prune_cache(args.max_mb)
        except ValueError as exc:
            print(f"cache prune: {exc}", file=sys.stderr)
            return 2
        print(
            f"evicted {report['evicted']} entries "
            f"({report['reclaimed_bytes']} bytes), "
            f"{report['remaining']} remaining"
        )
        return 0
    removed = engine.clear_cache()
    print(f"removed {removed} entries from {args.cache_dir}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Heuristic datapath allocation for multiple wordlength systems",
        epilog="Full subcommand documentation with copy-pasteable "
               "invocations: docs/cli.md (architecture notes: "
               "docs/architecture.md; HTTP service endpoints and wire "
               "schema: docs/service.md; reprolint rule catalogue and "
               "suppression workflow: docs/static-analysis.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-workloads", help="list named DSP kernels")

    methods = allocator_names()

    # ------------------------------------------------------------------
    # shared flag surfaces (argparse parents): every command that can
    # execute allocation work advertises the same service, cache and
    # engine flags, defined exactly once.
    # ------------------------------------------------------------------
    service_parent = argparse.ArgumentParser(add_help=False)
    group = service_parent.add_argument_group("service")
    group.add_argument(
        "--url", default=None,
        help="run against a repro service at this base URL -- a single "
             "worker ('serve') or a fleet coordinator ('fleet') -- "
             "instead of solving locally",
    )
    group.add_argument("--http-timeout", type=float, default=600.0,
                       help="HTTP socket timeout in seconds (default 600)")
    group.add_argument(
        "--priority", choices=PRIORITY_CLASSES, default=None,
        help="admission class for fleet coordinators "
             "(default 'normal'; ignored by local runs)",
    )

    cache_parent = argparse.ArgumentParser(add_help=False)
    group = cache_parent.add_argument_group("result cache")
    group.add_argument("--cache-dir", default=None,
                       help="directory for the on-disk result cache")
    group.add_argument("--cache-max-mb", type=float, default=None,
                       help="LRU-evict the cache beyond this size "
                            "(needs --cache-dir)")
    group.add_argument(
        "--shared-cache-dir", default=None,
        help="shared backing store the cache spills to and reads "
             "through on local misses (fleet topology; needs "
             "--cache-dir)",
    )

    engine_parent = argparse.ArgumentParser(add_help=False)
    group = engine_parent.add_argument_group("engine")
    group.add_argument("--workers", type=_positive_int, default=None,
                       help="parallel width (default: serial)")
    group.add_argument("--timeout", type=float, default=None,
                       help="per-run wall-clock budget in seconds")
    group.add_argument(
        "--executor", choices=EXECUTORS, default="pool",
        help="fresh-run execution mode: 'pool' (process pool; a "
             "timeout abandons the worker) or 'process' (one "
             "killable process per run; timeout is a hard "
             "per-solve deadline)",
    )

    def add_problem_args(cmd, workload_nargs=None):
        if workload_nargs:
            cmd.add_argument(
                "workloads", nargs=workload_nargs,
                help=f"named workloads ({', '.join(sorted(WORKLOADS))}) "
                     f"or JSON graph files",
            )
        else:
            cmd.add_argument(
                "workload",
                help=f"named workload ({', '.join(sorted(WORKLOADS))}) "
                     f"or JSON graph file",
            )
        cmd.add_argument(
            "--relax", type=float, default=None,
            help=f"relaxation over lambda_min (default {DEFAULT_RELAX})",
        )
        cmd.add_argument("--latency", type=int, default=None,
                         help="absolute latency constraint (overrides --relax)")

    cmd = sub.add_parser(
        "allocate", help="allocate one workload with one method",
        parents=[cache_parent, service_parent],
    )
    add_problem_args(cmd)
    cmd.add_argument("--method", choices=methods, default="dpalloc")
    cmd.add_argument("--trace", action="store_true",
                     help="record and print the solver's per-iteration "
                          "convergence trace (dpalloc; rides into --json)")
    cmd.add_argument("--json", help="write the datapath as JSON")
    cmd.add_argument("--dot", help="write a Graphviz rendering")
    cmd.add_argument("--verilog", help="write structural Verilog")

    cmd = sub.add_parser(
        "delta",
        help="warm-start re-solve of an edited problem (replays the "
             "recorded base solve; see docs/architecture.md)",
        parents=[cache_parent, service_parent],
    )
    add_problem_args(cmd)
    cmd.add_argument(
        "--edit", action="append", default=[], metavar="SPEC",
        type=_parse_edit,
        help="edit to apply, in order (repeatable): latency=N, "
             "width:OP=W1[,W2,...], or limit:KIND=N|none",
    )
    cmd.add_argument("--json", help="write the result envelope as JSON")

    cmd = sub.add_parser(
        "trace",
        help="summarise the solver iteration trace in a JSON artefact "
             "(datapath, allocation-result, or allocation-batch)",
    )
    cmd.add_argument("file", help="JSON file written by allocate/batch/merge")

    cmd = sub.add_parser(
        "compare", help="run every registered allocator",
        parents=[cache_parent, engine_parent, service_parent],
    )
    add_problem_args(cmd)

    cmd = sub.add_parser(
        "batch", help="run workloads x methods through the engine "
                      "(or a service/fleet with --url)",
        parents=[cache_parent, engine_parent, service_parent],
    )
    add_problem_args(cmd, workload_nargs="*")
    cmd.add_argument("--methods", default=None,
                     help=f"comma-separated subset of: {', '.join(methods)}")
    cmd.add_argument("--from-shard", default=None, metavar="MANIFEST",
                     help="execute one shard manifest written by 'shard' "
                          "instead of workloads; --json then emits a "
                          "shard-results payload for 'merge'")
    cmd.add_argument("--json", help="write the full result envelopes as JSON")

    cmd = sub.add_parser(
        "shard",
        help="partition a workloads x methods sweep into N shard manifests "
             "(deterministic on Problem.fingerprint())",
        parents=[cache_parent],
    )
    add_problem_args(cmd, workload_nargs="+")
    cmd.add_argument("--methods", default=None,
                     help=f"comma-separated subset of: {', '.join(methods)}")
    cmd.add_argument("--timeout", type=float, default=None,
                     help="per-run wall-clock budget baked into the manifests")
    cmd.add_argument("--shards", type=_positive_int, required=True,
                     help="number of shard manifests to write")
    cmd.add_argument("--out-dir", required=True,
                     help="directory for the shard-NN.json manifests")

    cmd = sub.add_parser(
        "merge",
        help="merge shard result files back into one batch result",
    )
    cmd.add_argument("results", nargs="+",
                     help="shard-results JSON files (from batch --from-shard)")
    cmd.add_argument("--json", help="write the merged allocation-batch JSON")

    cmd = sub.add_parser(
        "lint",
        help="run reprolint, the AST-based parity/concurrency contract "
             "checker (see docs/static-analysis.md)",
    )
    from .devtools.lint import add_lint_arguments

    add_lint_arguments(cmd)

    cmd = sub.add_parser("cache", help="inspect or manage a result cache")
    cmd.add_argument("action", choices=("stats", "prune", "clear"))
    cmd.add_argument("cache_dir", help="the cache directory")
    cmd.add_argument("--max-mb", type=float, default=None,
                     help="size budget for 'prune'")

    cmd = sub.add_parser(
        "serve",
        help="run one async HTTP/JSON allocation worker "
             "(see docs/service.md)",
        parents=[cache_parent],
    )
    cmd.add_argument("--host", default="127.0.0.1",
                     help="bind address (default 127.0.0.1)")
    cmd.add_argument("--port", type=int, default=8035,
                     help="TCP port (default 8035; 0 picks a free port)")
    cmd.add_argument("--workers", type=_positive_int, default=4,
                     help="max concurrent solves (default 4)")
    cmd.add_argument(
        "--executor", choices=EXECUTORS, default="process",
        help="fresh-run execution mode (default 'process': one killable "
             "worker process per solve, so hung solves cannot pile up)",
    )
    cmd.add_argument("--timeout", dest="default_timeout", type=float,
                     default=None,
                     help="per-solve budget for requests without their own")
    cmd.add_argument("--default-timeout", dest="default_timeout",
                     type=float, action=_DeprecatedAlias,
                     new_name="--timeout",
                     help="deprecated alias of --timeout")

    cmd = sub.add_parser(
        "fleet",
        help="run the fleet coordinator over N workers: fingerprint "
             "routing, fleet-wide dedup, requeue, admission control "
             "(see docs/service.md)",
    )
    cmd.add_argument("--host", default="127.0.0.1",
                     help="bind address (default 127.0.0.1)")
    cmd.add_argument("--port", type=int, default=8040,
                     help="TCP port (default 8040; 0 picks a free port)")
    cmd.add_argument("--workers", type=_positive_int, default=4,
                     help="local 'serve' worker processes to spawn "
                          "(default 4; ignored with --worker-url)")
    cmd.add_argument("--worker-url", action="append", default=[],
                     metavar="URL",
                     help="front an externally launched worker at URL "
                          "(repeatable; suppresses spawning)")
    cmd.add_argument("--shared-cache-dir", default=None,
                     help="shared result store every spawned worker "
                          "spills to and the coordinator reads through")
    cmd.add_argument("--queue-limit", action="append", default=[],
                     metavar="CLASS=N", type=_parse_queue_limit,
                     help="admission bound for a priority class "
                          f"({', '.join(PRIORITY_CLASSES)}; repeatable)")
    cmd.add_argument("--max-attempts", type=_positive_int, default=3,
                     help="forward attempts per request before a typed "
                          "503 (default 3)")
    cmd.add_argument("--worker-timeout", type=float, default=600.0,
                     help="per-forward socket budget in seconds "
                          "(default 600); a hung worker is cut off "
                          "here and the request requeued")
    cmd.add_argument("--worker-concurrency", type=_positive_int, default=4,
                     help="max concurrent solves per spawned worker "
                          "(default 4)")
    cmd.add_argument(
        "--executor", choices=EXECUTORS, default="process",
        help="execution mode for spawned workers (default 'process')",
    )
    cmd.add_argument("--timeout", dest="default_timeout", type=float,
                     default=None,
                     help="per-solve budget for spawned workers' "
                          "requests without their own")

    cmd = sub.add_parser(
        "submit",
        help="deprecated alias of 'batch --url'",
        parents=[engine_parent],
    )
    add_problem_args(cmd, workload_nargs="+")
    cmd.add_argument("--methods", default=None,
                     help=f"comma-separated subset of: {', '.join(methods)}")
    # Not service_parent: submit predates it and keeps its historical
    # non-None --url default (set_defaults on a shared parent action
    # would leak the default into every other subcommand).
    cmd.add_argument("--url", default="http://127.0.0.1:8035",
                     help="service base URL (default http://127.0.0.1:8035)")
    cmd.add_argument("--http-timeout", type=float, default=600.0,
                     help="HTTP socket timeout in seconds (default 600)")
    cmd.add_argument("--priority", choices=PRIORITY_CLASSES, default=None,
                     help="admission-control class a fleet coordinator "
                          "should queue these runs under")
    cmd.add_argument("--json", help="write the full result envelopes as JSON")
    cmd.set_defaults(cache_dir=None, cache_max_mb=None, shared_cache_dir=None)

    args = parser.parse_args(argv)
    handlers = {
        "list-workloads": _cmd_list_workloads,
        "allocate": _cmd_allocate,
        "delta": _cmd_delta,
        "compare": _cmd_compare,
        "batch": _cmd_batch,
        "shard": _cmd_shard,
        "merge": _cmd_merge,
        "cache": _cmd_cache,
        "lint": _cmd_lint,
        "trace": _cmd_trace,
        "serve": _cmd_serve,
        "fleet": _cmd_fleet,
        "submit": _cmd_submit,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
