"""Top-level command-line interface: ``python -m repro``.

Subcommands:

* ``list-workloads`` -- the named DSP kernels shipped with the library;
* ``allocate`` -- run one allocator on a named workload or a JSON graph
  and print the datapath report (optionally export JSON / DOT / Verilog);
* ``compare`` -- run every allocator on one problem and tabulate areas.

Examples::

    python -m repro list-workloads
    python -m repro allocate fir --relax 0.5
    python -m repro allocate biquad --method ilp --json out.json
    python -m repro allocate fir --relax 1.0 --verilog fir.v
    python -m repro compare motivational --relax 1.0
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Tuple

from . import InfeasibleError, Problem, allocate, validate_datapath
from .analysis.reporting import format_table
from .baselines.clique_sort import allocate_clique_sort
from .baselines.fds import allocate_fds
from .baselines.ilp import allocate_ilp
from .baselines.two_stage import allocate_two_stage
from .baselines.uniform import allocate_uniform
from .gen import workloads
from .io import (
    datapath_to_dict,
    datapath_to_dot,
    graph_from_dict,
    load_json,
    save_json,
)

__all__ = ["main", "WORKLOADS"]

# name -> (graph factory, netlist factory or None)
WORKLOADS: Dict[str, Tuple[Callable, Optional[Callable]]] = {
    "motivational": (
        workloads.motivational_example, workloads.motivational_example_netlist
    ),
    "fir": (workloads.fir_filter, workloads.fir_filter_netlist),
    "biquad": (workloads.iir_biquad, workloads.iir_biquad_netlist),
    "ycbcr": (workloads.rgb_to_ycbcr, workloads.rgb_to_ycbcr_netlist),
    "dct4": (workloads.dct4, workloads.dct4_netlist),
    "lattice": (workloads.lattice_filter, workloads.lattice_filter_netlist),
    "conv3x3": (workloads.conv3x3, workloads.conv3x3_netlist),
    "cmul": (workloads.complex_multiply, workloads.complex_multiply_netlist),
}

METHODS = {
    "dpalloc": lambda problem: allocate(problem),
    "ilp": lambda problem: allocate_ilp(problem)[0],
    "two-stage": lambda problem: allocate_two_stage(problem)[0],
    "fds": lambda problem: allocate_fds(problem)[0],
    "clique-sort": allocate_clique_sort,
    "uniform": allocate_uniform,
}


def _load_graph(source: str):
    if source in WORKLOADS:
        return WORKLOADS[source][0]()
    data = load_json(source)
    return graph_from_dict(data)


def _build_problem(args) -> Problem:
    graph = _load_graph(args.workload)
    scratch = Problem(graph, latency_constraint=1_000_000)
    lam_min = scratch.minimum_latency()
    if args.latency is not None:
        constraint = args.latency
    else:
        constraint = max(1, int(lam_min * (1.0 + args.relax)))
    return scratch.with_latency_constraint(constraint)


def _cmd_list_workloads(_args) -> int:
    rows = []
    for name, (factory, _) in sorted(WORKLOADS.items()):
        graph = factory()
        muls = sum(1 for op in graph.operations if op.resource_kind == "mul")
        adds = len(graph) - muls
        lam = Problem(graph, latency_constraint=1_000_000).minimum_latency()
        rows.append([name, len(graph), muls, adds, lam])
    print(format_table(
        ["workload", "|O|", "muls", "adds", "lambda_min"], rows,
        title="Named workloads",
    ))
    return 0


def _cmd_allocate(args) -> int:
    problem = _build_problem(args)
    try:
        datapath = METHODS[args.method](problem)
    except InfeasibleError as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return 1
    validate_datapath(problem, datapath)
    print(
        f"workload {args.workload}: |O|={len(problem.graph)}, "
        f"lambda={problem.latency_constraint}"
    )
    print(datapath.summary())

    if args.json:
        save_json(datapath_to_dict(datapath), args.json)
        print(f"wrote {args.json}")
    if args.dot:
        from pathlib import Path

        Path(args.dot).write_text(datapath_to_dot(problem.graph, datapath))
        print(f"wrote {args.dot}")
    if args.verilog:
        netlist_factory = WORKLOADS.get(args.workload, (None, None))[1]
        if netlist_factory is None:
            print("--verilog needs a workload with wiring (named kernels)",
                  file=sys.stderr)
            return 1
        from pathlib import Path

        from .rtl import generate_verilog

        design = generate_verilog(netlist_factory(), datapath)
        Path(args.verilog).write_text(design.source)
        print(f"wrote {args.verilog} ({design.unit_count} units)")
    return 0


def _cmd_compare(args) -> int:
    problem = _build_problem(args)
    rows = []
    for name, method in METHODS.items():
        try:
            datapath = method(problem)
            validate_datapath(problem, datapath)
            rows.append(
                [name, f"{datapath.area:g}", datapath.makespan,
                 datapath.unit_count()]
            )
        except InfeasibleError:
            rows.append([name, "infeasible", "-", "-"])
    print(format_table(
        ["method", "area", "latency", "units"], rows,
        title=(
            f"{args.workload}: |O|={len(problem.graph)}, "
            f"lambda={problem.latency_constraint}"
        ),
    ))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Heuristic datapath allocation for multiple wordlength systems",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-workloads", help="list named DSP kernels")

    for name, helptext in (
        ("allocate", "allocate one workload with one method"),
        ("compare", "run every allocator on one workload"),
    ):
        cmd = sub.add_parser(name, help=helptext)
        cmd.add_argument(
            "workload",
            help=f"named workload ({', '.join(sorted(WORKLOADS))}) or JSON graph file",
        )
        cmd.add_argument("--relax", type=float, default=0.3,
                         help="relaxation over lambda_min (default 0.3)")
        cmd.add_argument("--latency", type=int, default=None,
                         help="absolute latency constraint (overrides --relax)")
        if name == "allocate":
            cmd.add_argument("--method", choices=sorted(METHODS),
                             default="dpalloc")
            cmd.add_argument("--json", help="write the datapath as JSON")
            cmd.add_argument("--dot", help="write a Graphviz rendering")
            cmd.add_argument("--verilog", help="write structural Verilog")

    args = parser.parse_args(argv)
    handlers = {
        "list-workloads": _cmd_list_workloads,
        "allocate": _cmd_allocate,
        "compare": _cmd_compare,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
