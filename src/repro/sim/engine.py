"""Cycle-accurate simulation of an allocated datapath.

The simulator executes a :class:`~repro.core.solution.Datapath` produced
by any allocator against a :class:`~repro.sim.netlist.Netlist`, modelling
what the hardware actually does:

* each clique of the binding is one physical unit; an operation occupies
  its unit from its scheduled start for the *bound resource's* latency;
* an operation's result becomes architecturally visible when the unit
  finishes (``start + latency``); consumers read operand values at their
  own start cycle;
* values are computed with the unit's arithmetic at the unit's width and
  truncated to the result signal's declared width.

It verifies, cycle by cycle, the three hazard classes an allocation bug
could introduce -- reading a value before its producer finished, two
operations occupying one unit simultaneously, and executing an operation
on a unit that cannot hold its operands -- and finally checks every
computed signal against the golden reference evaluator.  A validated
datapath must simulate cleanly on *any* input assignment; the test suite
drives this with randomised and hypothesis-generated inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from ..core.solution import Datapath
from .netlist import Netlist
from .reference import apply_operation, evaluate, truncate

__all__ = ["SimulationError", "SimulationResult", "UnitEvent", "simulate"]


class SimulationError(RuntimeError):
    """The datapath exhibited a hazard or computed a wrong value."""


@dataclass(frozen=True)
class UnitEvent:
    """One operation execution on one physical unit."""

    unit: int
    operation: str
    start: int
    finish: int
    operands: Tuple[int, ...]
    result: int


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulation run."""

    values: Dict[str, int]  # every signal's final value
    events: Tuple[UnitEvent, ...]  # unit activity, ordered by (start, unit)
    cycles: int  # total cycles until the last result is ready

    def output_values(self, netlist: Netlist) -> Dict[str, int]:
        """Values of the kernel's output (sink) operations."""
        return {name: self.values[name] for name in netlist.output_ops()}

    def timeline(self) -> Dict[int, List[str]]:
        """Unit index -> ops in execution order (for reports/tests)."""
        lanes: Dict[int, List[str]] = {}
        for event in self.events:
            lanes.setdefault(event.unit, []).append(event.operation)
        return lanes


def simulate(
    netlist: Netlist,
    datapath: Datapath,
    values: Mapping[str, int],
    check_reference: bool = True,
) -> SimulationResult:
    """Execute ``datapath`` on the given inputs and verify it.

    Args:
        netlist: the kernel with operand wiring.
        datapath: an allocation of exactly this kernel's graph.
        values: integer value per free signal (input/constant).
        check_reference: compare all computed signals against the golden
            evaluator (disable only for throughput benchmarking).

    Raises:
        SimulationError: on any hazard or reference mismatch.
    """
    graph = netlist.graph
    names = set(graph.names)
    scheduled = set(datapath.schedule)
    if scheduled != names:
        raise SimulationError(
            f"datapath schedules {sorted(scheduled ^ names)} inconsistently "
            f"with the netlist"
        )

    # Initial signal state and availability times.
    state: Dict[str, int] = {}
    ready_at: Dict[str, int] = {}
    for name, width in netlist.free_signals().items():
        if name not in values:
            raise SimulationError(f"no value supplied for free signal {name!r}")
        state[name] = truncate(int(values[name]), width)
        ready_at[name] = 0

    # Map every op to its unit and bound latency.
    unit_of: Dict[str, int] = {}
    for index, clique in enumerate(datapath.binding.cliques):
        for op_name in clique.ops:
            unit_of[op_name] = index

    events: List[UnitEvent] = []
    unit_busy_until: Dict[int, int] = {}
    order = sorted(graph.names, key=lambda n: (datapath.schedule[n], n))
    for op_name in order:
        op = graph.operation(op_name)
        start = datapath.schedule[op_name]
        latency = datapath.bound_latencies[op_name]
        finish = start + latency
        unit = unit_of.get(op_name)
        if unit is None:
            raise SimulationError(f"operation {op_name!r} is not bound to a unit")
        clique = datapath.binding.cliques[unit]

        # Hazard 1: operand not yet available.
        operand_values = []
        for source in netlist.wiring[op_name]:
            if source not in ready_at:
                if source in names:
                    producer_finish = (
                        datapath.schedule[source]
                        + datapath.bound_latencies[source]
                    )
                    raise SimulationError(
                        f"data hazard: {op_name!r} starts at {start} but "
                        f"operand {source!r} is ready at {producer_finish}"
                    )
                raise SimulationError(
                    f"{op_name!r} reads {source!r} which is never produced"
                )
            if ready_at[source] > start:
                raise SimulationError(
                    f"data hazard: {op_name!r} starts at {start} but operand "
                    f"{source!r} is ready at {ready_at[source]}"
                )
            operand_values.append(state[source])

        # Hazard 2: structural conflict on the unit.
        if unit_busy_until.get(unit, 0) > start:
            raise SimulationError(
                f"structural hazard: unit {unit} busy until "
                f"{unit_busy_until[unit]} but {op_name!r} starts at {start}"
            )
        unit_busy_until[unit] = finish

        # Hazard 3: the unit cannot hold the operands.
        if not clique.resource.covers(op):
            raise SimulationError(
                f"width hazard: unit {unit} ({clique.resource}) cannot "
                f"execute {op}"
            )

        result = apply_operation(
            op.kind, operand_values, netlist.out_widths[op_name]
        )
        state[op_name] = result
        ready_at[op_name] = finish
        events.append(
            UnitEvent(
                unit=unit,
                operation=op_name,
                start=start,
                finish=finish,
                operands=tuple(operand_values),
                result=result,
            )
        )

    cycles = max((e.finish for e in events), default=0)
    if cycles != datapath.makespan:
        raise SimulationError(
            f"simulated {cycles} cycles but the datapath reports "
            f"makespan {datapath.makespan}"
        )

    if check_reference:
        golden = evaluate(netlist, values)
        for name in graph.names:
            if state[name] != golden[name]:
                raise SimulationError(
                    f"value mismatch on {name!r}: datapath computed "
                    f"{state[name]}, reference says {golden[name]}"
                )

    events.sort(key=lambda e: (e.start, e.unit, e.operation))
    return SimulationResult(values=state, events=tuple(events), cycles=cycles)
