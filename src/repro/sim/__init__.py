"""Bit-true functional verification of allocated datapaths."""

from .engine import SimulationError, SimulationResult, UnitEvent, simulate
from .netlist import Netlist
from .reference import apply_operation, evaluate, truncate

__all__ = [
    "Netlist",
    "SimulationError",
    "SimulationResult",
    "UnitEvent",
    "apply_operation",
    "evaluate",
    "simulate",
    "truncate",
]
