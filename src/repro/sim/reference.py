"""Golden reference evaluation of a netlist (bit-true fixed point).

Value semantics shared by the reference evaluator, the cycle-accurate
datapath simulator, and the RTL back-end:

* every signal is an **unsigned integer truncated to its declared
  width** (``value mod 2**width``), the conventional behaviour of
  fixed-point datapaths after wordlength optimisation;
* ``mul`` computes the exact product of its operands, then truncates to
  the result width; executing on a *wider* multiplier cannot change the
  value because the unit computes the exact product of the
  (zero-extended) operands -- the invariant that makes the paper's
  "small op on a big unit" sharing semantically free;
* ``add`` / ``sub`` compute modulo ``2**out_width`` (wrap-around).

The simulator asserts cycle-by-cycle equality against this evaluator,
so any allocation bug that corrupts data movement is caught.
"""

from __future__ import annotations

from typing import Dict, Mapping

from .netlist import Netlist

__all__ = ["truncate", "apply_operation", "evaluate"]


def truncate(value: int, width: int) -> int:
    """Keep the low ``width`` bits of ``value`` (fixed-point truncation)."""
    if width < 1:
        raise ValueError("width must be >= 1")
    return value & ((1 << width) - 1)


def apply_operation(kind: str, operands: Mapping[int, int] | list, out_width: int) -> int:
    """Execute one operation on integer operand values."""
    a, b = operands
    if kind == "mul":
        raw = a * b
    elif kind == "add":
        raw = a + b
    elif kind == "sub":
        raw = a - b
    else:
        raise KeyError(f"no value semantics for operation kind {kind!r}")
    return truncate(raw, out_width)


def evaluate(netlist: Netlist, values: Mapping[str, int]) -> Dict[str, int]:
    """Evaluate the whole netlist on the given input/constant values.

    Args:
        netlist: the kernel.
        values: one integer per free signal (inputs and constants);
            values are truncated to the signal's declared width.

    Returns:
        value of *every* signal, free and computed.

    Raises:
        KeyError: a free signal is missing from ``values``.
    """
    state: Dict[str, int] = {}
    for name, width in netlist.free_signals().items():
        if name not in values:
            raise KeyError(f"no value supplied for free signal {name!r}")
        state[name] = truncate(int(values[name]), width)

    for op_name in netlist.graph.topological_order():
        op = netlist.graph.operation(op_name)
        sources = netlist.wiring[op_name]
        operands = [state[s] for s in sources]
        state[op_name] = apply_operation(
            op.kind, operands, netlist.out_widths[op_name]
        )
    return state
