"""Netlists: sequencing graphs plus full operand wiring.

The allocation algorithms only need the *dependence* structure of a
kernel, but functional verification and RTL generation need to know
exactly which signal drives which operand port.  A :class:`Netlist`
couples a :class:`~repro.ir.seqgraph.SequencingGraph` with:

* the primary input and constant signals (name and width);
* per operation, the ordered operand source signals;
* per operation, the declared result-signal width (the wordlength a
  front-end such as the Synoptix-style optimiser chose).

Netlists are produced from a :class:`~repro.ir.builder.DFGBuilder` via
:meth:`Netlist.from_builder`; all value semantics (truncation, operator
meaning) live in :mod:`repro.sim.reference`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..ir.builder import DFGBuilder
from ..ir.seqgraph import SequencingGraph

__all__ = ["Netlist"]


@dataclass(frozen=True)
class Netlist:
    """A sequencing graph with operand wiring and signal widths.

    Attributes:
        graph: the sequencing graph (operation set + dependencies).
        inputs: primary input signal widths by name.
        constants: constant (coefficient) signal widths by name.
        wiring: operation name -> ordered tuple of operand signal names
            (each an input, a constant, or another operation's name).
        out_widths: operation name -> result signal width in bits.
    """

    graph: SequencingGraph
    inputs: Dict[str, int]
    constants: Dict[str, int]
    wiring: Dict[str, Tuple[str, ...]]
    out_widths: Dict[str, int]

    def __post_init__(self) -> None:
        known = set(self.inputs) | set(self.constants) | set(self.graph.names)
        for op_name in self.graph.names:
            if op_name not in self.wiring:
                raise ValueError(f"operation {op_name!r} has no wiring")
            for source in self.wiring[op_name]:
                if source not in known:
                    raise ValueError(
                        f"operation {op_name!r} reads unknown signal {source!r}"
                    )
            if op_name not in self.out_widths:
                raise ValueError(f"operation {op_name!r} has no result width")
            if self.out_widths[op_name] < 1:
                raise ValueError(f"operation {op_name!r}: result width < 1")
        overlap = (set(self.inputs) | set(self.constants)) & set(self.graph.names)
        if overlap:
            raise ValueError(f"signal names collide with op names: {sorted(overlap)}")

    @classmethod
    def from_builder(cls, builder: DFGBuilder) -> "Netlist":
        """Build a netlist from a :class:`DFGBuilder`'s recorded wiring."""
        exported = builder.export_wiring()
        return cls(
            graph=builder.graph(),
            inputs=dict(exported["inputs"]),
            constants=dict(exported["constants"]),
            wiring={k: tuple(v) for k, v in exported["wiring"].items()},
            out_widths=dict(exported["out_widths"]),
        )

    # ------------------------------------------------------------------
    # convenience queries
    # ------------------------------------------------------------------
    def signal_width(self, name: str) -> int:
        """Declared width of any signal (input, constant, or op result)."""
        if name in self.inputs:
            return self.inputs[name]
        if name in self.constants:
            return self.constants[name]
        if name in self.out_widths:
            return self.out_widths[name]
        raise KeyError(f"unknown signal {name!r}")

    def free_signals(self) -> Dict[str, int]:
        """All externally supplied signals (inputs and constants)."""
        merged = dict(self.inputs)
        merged.update(self.constants)
        return merged

    def output_ops(self) -> List[str]:
        """Operations whose results leave the kernel (graph sinks)."""
        return self.graph.sinks()

    def consumers_of(self, signal: str) -> List[str]:
        """Operations reading ``signal`` on any operand port."""
        return sorted(
            op for op, sources in self.wiring.items() if signal in sources
        )
