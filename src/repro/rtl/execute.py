"""Cycle-driven execution of the generated RTL's semantics.

No Verilog simulator ships in this environment, so this module executes
the *exact semantics* of the text :func:`repro.rtl.generate_verilog`
emits -- independently from :mod:`repro.sim`'s event-driven engine:

* a cycle counter sweeps ``0 .. makespan``;
* each unit's operand muxes select the active operation's sources during
  its ``[start, finish)`` window (zero otherwise), reading producer
  *registers* and input ports;
* the unit computes at the emitted output width (port-derived width,
  widened to the widest consumer register -- Verilog's assignment-context
  sizing), so subtraction wraps exactly as the RTL does;
* on the clock edge ending cycle ``finish - 1``, the operation's result
  register captures the unit output truncated to the declared width.

Agreement between this executor, the event-driven simulator, and the
golden reference on random inputs is the repository's substitute for an
RTL co-simulation, and is enforced by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.solution import Datapath
from ..sim.netlist import Netlist
from ..sim.reference import truncate
from .verilog import _unit_port_widths

__all__ = ["execute_rtl_semantics"]


@dataclass(frozen=True)
class _Window:
    """One operation's execution window on its unit (a mux arm)."""

    op_name: str
    begin: int
    finish: int
    src_a: str
    src_b: str
    operator: str  # '*', '+', or '-'


@dataclass(frozen=True)
class _UnitTable:
    """Static description of one emitted unit."""

    a_width: int
    b_width: int
    y_width: int
    windows: Tuple[_Window, ...]


def _build_unit_tables(netlist: Netlist, datapath: Datapath) -> List[_UnitTable]:
    graph = netlist.graph
    tables: List[_UnitTable] = []
    for clique in datapath.binding.cliques:
        a_width, b_width, y_width = _unit_port_widths(
            clique.resource.kind, clique.resource.widths
        )
        y_width = max(y_width, max(netlist.out_widths[o] for o in clique.ops))
        windows: List[_Window] = []
        for op_name in sorted(clique.ops, key=lambda n: datapath.schedule[n]):
            op = graph.operation(op_name)
            begin = datapath.schedule[op_name]
            finish = begin + datapath.bound_latencies[op_name]
            src_a, src_b = netlist.wiring[op_name]
            if clique.resource.kind == "mul":
                if op.operand_widths[0] < op.operand_widths[1]:
                    src_a, src_b = src_b, src_a
                operator = "*"
            elif op.kind == "sub":
                operator = "-"
            else:
                operator = "+"
            windows.append(
                _Window(op_name, begin, finish, src_a, src_b, operator)
            )
        tables.append(_UnitTable(a_width, b_width, y_width, tuple(windows)))
    return tables


def execute_rtl_semantics(
    netlist: Netlist,
    datapath: Datapath,
    values: Mapping[str, int],
) -> Dict[str, int]:
    """Run the generated RTL's semantics; returns every register's value.

    Raises:
        KeyError: a free signal has no supplied value.
    """
    free = netlist.free_signals()
    ports: Dict[str, int] = {
        name: truncate(int(values[name]), width) for name, width in free.items()
    }
    registers: Dict[str, int] = {name: 0 for name in netlist.graph.names}
    tables = _build_unit_tables(netlist, datapath)

    def read_signal(name: str) -> int:
        return ports[name] if name in ports else registers[name]

    makespan = max(1, datapath.makespan)
    for cnt in range(makespan):
        # Combinational phase: each unit's output for this cycle.
        outputs: List[Optional[Tuple[_Window, int]]] = []
        for table in tables:
            active: Optional[Tuple[_Window, int]] = None
            for window in table.windows:
                if window.begin <= cnt < window.finish:
                    a = truncate(read_signal(window.src_a), table.a_width)
                    b = truncate(read_signal(window.src_b), table.b_width)
                    if window.operator == "*":
                        raw = a * b
                    elif window.operator == "-":
                        raw = a - b
                    else:
                        raw = a + b
                    active = (window, truncate(raw, table.y_width))
                    break
            outputs.append(active)

        # Clock edge: capture results whose final cycle this is.
        for active in outputs:
            if active is None:
                continue
            window, value = active
            if cnt == window.finish - 1:
                registers[window.op_name] = truncate(
                    value, netlist.out_widths[window.op_name]
                )

    return dict(registers)
