"""RTL export: structural Verilog reflecting the allocation decisions."""

from .execute import execute_rtl_semantics
from .verilog import VerilogDesign, generate_verilog

__all__ = ["VerilogDesign", "execute_rtl_semantics", "generate_verilog"]
