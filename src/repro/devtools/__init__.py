"""Developer tooling that ships with the library.

:mod:`repro.devtools.lint` is **reprolint**, the AST-based invariant
checker behind ``repro lint`` and the CI ``reprolint`` job.  It encodes
the repo's correctness contracts -- byte-identity parity of canonical
results and thread/async safety of the service tier -- as static rules
(RL001..RL005) so that the *class* of bug is caught at diff time, not
only when a workload happens to trip the dynamic parity sweep.

:mod:`repro.devtools.passaudit` builds an intraproject call graph and
effect inference on top of that framework and contributes the solver
contract rules (RL006 pass effect contracts, RL007 incremental-reuse
invalidation) plus the interprocedural order-taint backing RL001 and
the committed ``tools/pass-effects.json`` effect map.

See ``docs/static-analysis.md`` for the rule catalogue and the
suppression / baseline workflow.
"""

from . import lint

__all__ = ["lint"]
