"""RL006/RL007: the solver pipeline's effect and invalidation contracts.

Registered into the reprolint framework on import (the framework's
lazy rule loader imports this module alongside the built-in rules).
Both rules run :func:`repro.devtools.passaudit.effects.analyze_project`
over the in-scope modules and compare the *inferred* effects of every
``Pass`` subclass against what the source declares.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

from ..lint.framework import (
    Finding,
    LintRule,
    ModuleSource,
    register_rule,
)
from .effects import PassReport, ProjectEffects, analyze_project

__all__ = ["EffectContractRule", "InvalidationRule"]

# The bounded analysis follows helpers through the solver's own
# package, the IR it schedules over, and the shared utils they call
# into (``wcg.kind_cover`` -> ``utils.covering``).
EFFECT_SCOPE = ("core", "ir", "utils")


def _fmt(attrs: Set[str]) -> str:
    return ", ".join(f"state.{a}" for a in sorted(attrs))


@register_rule
class EffectContractRule(LintRule):
    """RL006 effect contracts: every ``Pass`` declares exactly what it
    touches, and the declaration is machine-checked.

    Each ``Pass`` subclass carries ``reads``/``writes`` class
    attributes -- literal ``frozenset({...})`` of ``SolverState``
    field names.  The rule infers the real effect set of ``run`` by
    following attribute loads/stores, container mutations
    (``.add``/``.append``/``[...]=``) and helper calls through the
    bounded call graph (``repro.core.*`` / ``repro.ir.*``), then
    flags, in both directions:

    * an **undeclared effect** -- ``run`` (possibly transitively)
      reads or writes a state field the contract omits;
    * a **phantom effect** -- the contract declares a field the
      inference never sees exercised (only when the summary is
      *complete*, i.e. every call resolved; an incomplete summary is
      itself reported rather than silently weakening the check).

    Memoising query methods that write private caches inside logical
    reads declare ``# passaudit: const(reason)``; a reasonless or
    dangling pragma is flagged here.  Fix by updating the contract to
    match the real effects -- or the code to match the contract; that
    choice surfacing in review is the point of the rule.
    """

    code = "RL006"
    name = "pass-effect-contract"
    contract = "solver: declared pass reads/writes match inferred effects"
    scope = EFFECT_SCOPE

    def check_project(
        self, modules: Sequence[ModuleSource]
    ) -> Iterable[Finding]:
        project = analyze_project(modules)
        findings: List[Finding] = []
        for module, line, message in project.graph.pragma_problems:
            findings.append(module.finding(self.code, line, message))
        for report in project.passes:
            findings.extend(self._check_pass(report))
        return findings

    def _check_pass(self, report: PassReport) -> Iterable[Finding]:
        module = report.cls.module
        cls_node = report.cls.node
        if report.run is None or report.state_param is None:
            return  # abstract base shapes carry no contract
        if report.declared_reads is None or report.declared_writes is None:
            missing = [
                name for name, decl in (
                    ("reads", report.declared_reads),
                    ("writes", report.declared_writes),
                ) if decl is None
            ]
            yield module.finding(
                self.code, cls_node,
                f"pass {report.name} declares no {'/'.join(missing)} "
                f"contract -- add literal frozenset class attributes "
                f"(see docs/static-analysis.md)",
            )
            return
        for direction, decl in (
            ("reads", report.declared_reads),
            ("writes", report.declared_writes),
        ):
            if not decl.literal:
                yield module.finding(
                    self.code, decl.node,
                    f"pass {report.name}.{direction} must be a literal "
                    f"frozenset of state-field strings so the contract "
                    f"is statically checkable",
                )
                return
        if not report.complete:
            yield module.finding(
                self.code, report.run.node,
                f"effect summary for {report.name}.run is incomplete "
                f"({report.incomplete_why}); the contract cannot be "
                f"verified -- make the helper resolvable or scan it",
            )
        assert report.declared_reads is not None
        assert report.declared_writes is not None
        for direction, inferred, decl in (
            ("reads", report.reads, report.declared_reads),
            ("writes", report.writes, report.declared_writes),
        ):
            undeclared = inferred - decl.attrs
            if undeclared:
                yield module.finding(
                    self.code, decl.node,
                    f"{report.name}.run {direction[:-1]}s "
                    f"{_fmt(undeclared)} but the {direction} contract "
                    f"does not declare it",
                )
            phantom = decl.attrs - inferred
            if phantom and report.complete:
                yield module.finding(
                    self.code, decl.node,
                    f"{report.name}.{direction} declares {_fmt(phantom)} "
                    f"but run never exercises it -- stale contract",
                )


@register_rule
class InvalidationRule(LintRule):
    """RL007 incremental-reuse invalidation: writers mark dirtiness,
    memo consumers refresh.

    The incremental solver reuses derived state across pipeline
    iterations; the pass module declares the reuse protocol as module
    literals:

    * ``REUSE_CHANNELS = {"field": ("channel", ...)}`` -- a pass
      whose inferred effects *write* ``state.field`` must also write
      **every** listed dirtiness channel, because downstream passes
      consult those channels to decide what derived state is still
      valid.  Dropping one invalidation (the classic incremental-bug
      shape: refining ``wcg`` without marking ``dirty_cover_kinds``)
      is flagged at the pass, with the affected downstream readers
      named.
    * ``REUSE_MEMOS = ("chain_cache", ...)`` -- a pass that *reads* a
      memo structure (``ChainCache``, ``BoundPathEngine``) must also
      write/refresh it: memos are refreshed by their consumer, never
      trusted stale.

    The rule fires only where the coupling is real -- some *other*
    pass must read the written field or one of its channels.  An
    intentionally lazy consumer takes
    ``# reprolint: disable=RL007(reason)`` stating why staleness is
    sound.
    """

    code = "RL007"
    name = "reuse-invalidation"
    contract = "solver: every reuse-tracked write marks its dirtiness channels"
    scope = EFFECT_SCOPE

    def check_project(
        self, modules: Sequence[ModuleSource]
    ) -> Iterable[Finding]:
        project = analyze_project(modules)
        findings: List[Finding] = []
        for report in project.passes:
            if report.run is None or report.state_param is None:
                continue
            protocol = project.protocols.get(report.cls.module_name)
            if protocol is None:
                continue
            self._check_channels(project, report, protocol.channels,
                                 findings)
            self._check_memos(report, protocol.memos, findings)
        return findings

    def _check_channels(
        self,
        project: ProjectEffects,
        report: PassReport,
        channels: "dict[str, tuple[str, ...]]",
        findings: List[Finding],
    ) -> None:
        module = report.cls.module
        for fieldname in sorted(set(report.writes) & set(channels)):
            required = channels[fieldname]
            missing = [c for c in required if c not in report.writes]
            if not missing:
                continue
            readers = sorted({
                other.name
                for other in project.passes
                if other.cls is not report.cls
                and (
                    fieldname in other.reads
                    or any(c in other.reads for c in required)
                )
            })
            if not readers:
                continue  # no cross-pass coupling to invalidate for
            findings.append(module.finding(
                self.code, report.run.node,
                f"{report.name}.run writes state.{fieldname} without "
                f"marking dirtiness channel"
                f"{'s' if len(missing) > 1 else ''} "
                f"{', '.join('state.' + c for c in missing)} -- "
                f"{', '.join(readers)} reuse"
                f"{'s' if len(readers) == 1 else ''} derived state "
                f"keyed on it",
            ))

    def _check_memos(
        self,
        report: PassReport,
        memos: "tuple[str, ...]",
        findings: List[Finding],
    ) -> None:
        module = report.cls.module
        assert report.run is not None
        for memo in memos:
            if memo in report.reads and memo not in report.writes:
                findings.append(module.finding(
                    self.code, report.run.node,
                    f"{report.name}.run consumes memo state.{memo} "
                    f"without refreshing it -- memo structures are "
                    f"refreshed by their consumer, never trusted stale",
                ))
