"""Iteration-order taint summaries: does a helper *return* hash order?

The intra-function RL001 rule sees a set being iterated in the same
scope.  It is blind to the interprocedural shape that actually bit the
FDS baseline: a helper builds (or materialises) a set, returns it (or
a ``list()`` of it), and the *caller* folds the result into a
canonical value.  This module computes, per scanned function, an
:class:`OrderTaintSummary`:

* ``returns_unordered`` -- the return value exposes hash/scan order
  with no assumptions about the arguments (``return {a, b}``,
  ``return set(xs)``, ``return list(self._members)`` for a set-typed
  attribute);
* ``taint_params`` -- parameters whose set-likeness flows into the
  return value (``return list(pool)``, ``return [x for x in pool]``,
  ``return pool | other``).  ``sorted(...)`` anywhere on the path
  breaks the taint, exactly as in the intra-function rule.

Summaries are computed to fixpoint through the call graph, so taint
survives helper-calls-helper chains and crosses module boundaries via
the import table.  RL001 consults :meth:`OrderTaint.call_dangerous`
per call site: a call is treated as set-like when the callee returns
unordered content, or when a set-like argument binds to a tainted
parameter.  The hypothesis runs never produce findings themselves --
``def f(xs): return list(xs)`` is innocent until someone passes it a
set.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph, ClassInfo, FunctionInfo, ImportEntry

__all__ = ["OrderTaint", "OrderTaintSummary", "TaintConfig"]


@dataclass(frozen=True)
class TaintConfig:
    """The set-likeness vocabulary, supplied by the RL001 rule so the
    two analyses can never drift apart."""

    factories: frozenset
    scan_calls: frozenset
    scan_methods: frozenset
    set_methods: frozenset
    set_ops: tuple
    iter_sinks: frozenset
    order_safe: frozenset


@dataclass
class OrderTaintSummary:
    returns_unordered: bool = False
    taint_params: Set[str] = field(default_factory=set)


class OrderTaint:
    """Fixpoint order-taint summaries over a :class:`CallGraph`."""

    def __init__(
        self,
        graph: CallGraph,
        config: TaintConfig,
        class_set_attrs: Optional[
            Callable[[ClassInfo], Set[str]]
        ] = None,
    ) -> None:
        self.graph = graph
        self.config = config
        self._class_set_attrs = class_set_attrs or (lambda cls: set())
        self.summaries: Dict[FunctionInfo, OrderTaintSummary] = {}
        self._compute()

    # -- fixpoint -------------------------------------------------------
    def _compute(self) -> None:
        functions = self.graph.all_functions()
        self.summaries = {fi: OrderTaintSummary() for fi in functions}
        # Taint only ever grows, so this terminates; the cap is a
        # defensive bound against pathological graphs.
        for _round in range(10):
            changed = False
            for fi in functions:
                summary = self._summarize(fi)
                current = self.summaries[fi]
                if (
                    summary.returns_unordered != current.returns_unordered
                    or summary.taint_params != current.taint_params
                ):
                    self.summaries[fi] = summary
                    changed = True
            if not changed:
                break

    def _summarize(self, fi: FunctionInfo) -> OrderTaintSummary:
        hypothesis_params = [
            p for p in fi.params if p != fi.self_param
        ]
        summary = OrderTaintSummary(
            returns_unordered=self._returns_dangerous(fi, None)
        )
        for param in hypothesis_params:
            if self._returns_dangerous(fi, param):
                summary.taint_params.add(param)
        return summary

    def _returns_dangerous(
        self, fi: FunctionInfo, tainted_param: Optional[str]
    ) -> bool:
        env: Dict[str, bool] = {}
        if tainted_param is not None:
            env[tainted_param] = True
        walker = _TaintWalker(self, fi, env)
        for stmt in fi.node.body:
            walker.visit(stmt)
        return walker.returns_dangerous

    # -- call-site API used by RL001 ------------------------------------
    def call_dangerous(
        self,
        module_name: str,
        owner: Optional[ast.ClassDef],
        call: ast.Call,
        arg_dangerous: Callable[[ast.AST], bool],
    ) -> bool:
        """Is this call's return value order-tainted at this site?"""
        candidates = self._resolve_call(module_name, owner, call)
        for callee in candidates:
            summary = self.summaries.get(callee)
            if summary is None:
                continue
            if summary.returns_unordered:
                return True
            if not summary.taint_params:
                continue
            for param, arg in self._bind(callee, call):
                if param in summary.taint_params and arg_dangerous(arg):
                    return True
        return False

    def _resolve_call(
        self,
        module_name: str,
        owner: Optional[ast.ClassDef],
        call: ast.Call,
    ) -> List[FunctionInfo]:
        func = call.func
        if isinstance(func, ast.Name):
            target = self.graph.resolve_name(module_name, func.id)
            if isinstance(target, FunctionInfo):
                return [target]
            if isinstance(target, (ClassInfo, ImportEntry)):
                return []
            return []
        if isinstance(func, ast.Attribute):
            # The RL001 vocabulary (set methods, scan methods, join)
            # is handled by the rule itself; here only *project*
            # methods resolve, by owner or unique name.
            if func.attr in self.config.set_methods:
                return []
            receiver_is_self = (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
            )
            owner_info: Optional[ClassInfo] = None
            if owner is not None:
                for key in self.graph.classes:
                    candidate = self.graph.classes[key]
                    if candidate.node is owner:
                        owner_info = candidate
                        break
            return self.graph.resolve_method(
                owner_info, receiver_is_self, func.attr)
        return []

    @staticmethod
    def _bind(
        callee: FunctionInfo, call: ast.Call
    ) -> List[Tuple[str, ast.AST]]:
        positional = list(callee.positional_params)
        if callee.self_param is not None or callee.is_classmethod:
            positional = positional[1:]
        bound: List[Tuple[str, ast.AST]] = []
        index = 0
        for arg in call.args:
            if isinstance(arg, ast.Starred):
                break
            if index >= len(positional):
                break
            bound.append((positional[index], arg))
            index += 1
        names = set(callee.params)
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in names:
                bound.append((keyword.arg, keyword.value))
        return bound


class _TaintWalker:
    """Source-ordered walk of one function body under one hypothesis.

    Tracks which locals hold order-dangerous values (sets, or ordered
    materialisations of sets) and whether any ``return`` exposes one.
    Produces no findings -- it only feeds summaries.
    """

    def __init__(
        self, taint: OrderTaint, fi: FunctionInfo, env: Dict[str, bool]
    ) -> None:
        self.taint = taint
        self.config = taint.config
        self.fi = fi
        self.env = env
        self.self_attrs: Set[str] = set()
        if fi.owner is not None:
            self.self_attrs = taint._class_set_attrs(fi.owner)
        self.returns_dangerous = False

    # -- expression danger ---------------------------------------------
    def dangerous(self, node: ast.AST) -> bool:
        config = self.config
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return self.env.get(node.id, False)
        if isinstance(node, ast.Attribute):
            return (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.self_attrs
            )
        if isinstance(node, ast.Call):
            return self._call_dangerous(node)
        if isinstance(node, ast.BinOp):
            # Set operators keep set-ness; ``+`` keeps a tainted
            # prefix order through list concatenation.
            if isinstance(node.op, config.set_ops + (ast.Add,)):
                return self.dangerous(node.left) or self.dangerous(node.right)
            return False
        if isinstance(node, ast.IfExp):
            return self.dangerous(node.body) or self.dangerous(node.orelse)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return any(
                self.dangerous(gen.iter) for gen in node.generators
            )
        if isinstance(node, ast.Starred):
            return self.dangerous(node.value)
        return False

    def _call_dangerous(self, node: ast.Call) -> bool:
        config = self.config
        func = node.func
        qual = _qualname(func)
        if qual in config.factories or qual in config.scan_calls:
            return True
        if isinstance(func, ast.Name):
            if func.id in config.order_safe:
                return False
            if func.id in config.iter_sinks:
                # list()/tuple()/... of a dangerous value materialises
                # the bad order instead of erasing it.
                return any(self.dangerous(arg) for arg in node.args)
        if isinstance(func, ast.Attribute):
            if func.attr in config.scan_methods:
                return True
            if func.attr in config.set_methods:
                return self.dangerous(func.value)
            if func.attr == "join":
                return any(self.dangerous(arg) for arg in node.args)
        # Project helpers: consult their (current-round) summaries.
        return self.taint.call_dangerous(
            self.fi.module_name,
            self.fi.owner.node if self.fi.owner is not None else None,
            node,
            self.dangerous,
        )

    # -- statements -----------------------------------------------------
    def visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Return):
            if node.value is not None and self.dangerous(node.value):
                self.returns_dangerous = True
            return
        if isinstance(node, ast.Assign):
            value_dangerous = self.dangerous(node.value)
            for target in node.targets:
                self._bind_target(target, value_dangerous)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._bind_target(node.target, self.dangerous(node.value))
            return
        if isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name):
                keeps = isinstance(
                    node.op, self.config.set_ops + (ast.Add,))
                self.env[node.target.id] = keeps and (
                    self.env.get(node.target.id, False)
                    or self.dangerous(node.value)
                )
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iter_dangerous = self.dangerous(node.iter)
            self._bind_target(node.target, False)
            if iter_dangerous:
                # Appending inside a loop over a dangerous iterable
                # materialises its order into the accumulator.
                for sub in ast.walk(node):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in ("append", "extend", "insert")
                        and isinstance(sub.func.value, ast.Name)
                    ):
                        self.env[sub.func.value.id] = True
            for stmt in node.body + node.orelse:
                self.visit(stmt)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            return  # separate scopes; summaries cover the functions
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    def _bind_target(self, target: ast.AST, value: bool) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, False)


def _qualname(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _qualname(node.value)
        if base is not None:
            return f"{base}.{node.attr}"
    return None


def build_taint(
    modules: Sequence[object],
    config: TaintConfig,
    class_set_attrs: Optional[Callable[[ClassInfo], Set[str]]] = None,
) -> OrderTaint:
    """Convenience constructor used by RL001's ``check_project``."""
    return OrderTaint(CallGraph(list(modules)), config, class_set_attrs)
