"""passaudit: interprocedural effect analysis for the solver pipeline.

Built on the reprolint framework (:mod:`repro.devtools.lint`), this
package makes the solver's incremental-reuse contracts *statically*
checkable instead of relying on the dynamic parity sweep alone:

* :mod:`.callgraph` -- a bounded intraproject call graph over the
  scanned modules (``repro.core.*`` / ``repro.ir.*``), with import
  resolution, per-class method indexing and the
  ``# passaudit: const(reason)`` pragma that declares a memoising
  query method logically read-only;
* :mod:`.effects` -- AST effect inference: for every ``Pass``
  subclass, the set of ``SolverState`` attributes its ``run`` reads
  and writes, following helper calls through the call graph, plus the
  committed effect map (``tools/pass-effects.json``);
* :mod:`.ordertaint` -- iteration-order taint summaries (does a
  helper's *return value* expose set/hash order?) that make RL001
  interprocedural;
* :mod:`.rules` -- RL006 (declared ``reads``/``writes`` contracts
  match the inference) and RL007 (writes to reuse-tracked fields mark
  their dirtiness channels; memo structures are refreshed by their
  consumers).

Everything here is stdlib-only (``ast`` + ``re``) so it runs through
``tools/run_lint.py`` on a bare interpreter.
"""

from __future__ import annotations

from .callgraph import CallGraph, ClassInfo, FunctionInfo, module_name
from .effects import (
    EFFECT_MAP_KIND,
    PassReport,
    ProjectEffects,
    analyze_project,
    effect_map,
)
from .ordertaint import OrderTaint, TaintConfig

__all__ = [
    "CallGraph",
    "ClassInfo",
    "EFFECT_MAP_KIND",
    "FunctionInfo",
    "OrderTaint",
    "PassReport",
    "ProjectEffects",
    "TaintConfig",
    "analyze_project",
    "effect_map",
    "module_name",
]
