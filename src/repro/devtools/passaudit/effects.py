"""Effect inference: which ``SolverState`` attributes each pass touches.

For every function in the call graph a :class:`FunctionEffects` summary
is computed to fixpoint: per parameter, the set of *first-level*
attributes read and written, whether the parameter's object itself is
mutated, and whether the summary is complete (every call on a path
from the function resolved inside the scanned module set).

Reads and writes are collected from

* attribute loads (``state.wcg`` anywhere in an expression),
* attribute stores, augmented stores and deletes (``state.schedule =``),
* subscript stores through an attribute (``state.kind_covers[k] =``),
* mutator method calls on an attribute (``state.trace.append(...)``,
  ``state.pending_bound_ops.clear()``),
* and transitively through helper calls: arguments are bound to the
  callee's parameters and the callee's summary effects flow back to
  the caller's view of its own parameters (``refine_once(state.wcg,
  ...)`` marks ``wcg`` written because ``refine_once`` calls
  ``wcg.refine``).

The analysis is flow-insensitive but source-ordered: simple aliases
(``wcg = state.wcg``; ``cache = state.chain_cache``) are tracked so
mutation through the alias is attributed to the state attribute.
Methods carrying ``# passaudit: const(reason)`` have their self-writes
dropped -- the sanctioned escape hatch for lazily memoising queries.

Deliberate approximations (documented so reviewers know the bounds):
calls into the stdlib/builtins are assumed argument-pure; effects on
objects reached through *second-level* attributes
(``state.problem.area_model``) are attributed to the first attribute;
a capitalised unresolved import is assumed to be an external
constructor.  Anything else unresolved marks the summary incomplete,
which RL006 surfaces rather than silently under-reporting.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..lint.framework import ModuleSource
from .callgraph import (
    CallGraph,
    ClassInfo,
    FunctionInfo,
    ImportEntry,
)

__all__ = [
    "EFFECT_MAP_KIND",
    "FunctionEffects",
    "PassContract",
    "PassReport",
    "ProjectEffects",
    "ReuseProtocol",
    "analyze_project",
    "effect_map",
]

EFFECT_MAP_KIND = "pass-effects"

# Container methods that mutate their receiver in place (the tail are
# the networkx graph mutators the IR layer leans on).
MUTATORS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "extendleft", "insert", "pop", "popitem", "popleft", "remove",
    "reverse", "setdefault", "sort", "update",
    "add_node", "add_edge", "add_nodes_from", "add_edges_from",
    "remove_node", "remove_edge",
})

# Container/str methods known not to mutate their receiver, so a call
# on a tracked object does not void the summary's completeness.
PURE_METHODS = frozenset({
    "copy", "count", "difference", "endswith", "format", "get",
    "index", "intersection", "isdisjoint", "issubset", "issuperset",
    "items", "join", "keys", "lower", "lstrip", "most_common",
    "replace", "rstrip", "split", "splitlines", "startswith", "strip",
    "symmetric_difference", "title", "union", "upper", "values",
})

# A local-name binding: the parameter itself, or a first-level
# attribute of a parameter (`wcg = state.wcg`).
Binding = Union[Tuple[str, str], Tuple[str, str, str], None]


@dataclass
class FunctionEffects:
    """Per-parameter effect summary of one function."""

    reads: Dict[str, Set[str]] = field(default_factory=dict)
    writes: Dict[str, Set[str]] = field(default_factory=dict)
    mutates: Set[str] = field(default_factory=set)
    complete: bool = True
    incomplete_why: str = ""

    def read(self, param: str, attr: str) -> None:
        self.reads.setdefault(param, set()).add(attr)

    def write(self, param: str, attr: str) -> None:
        self.writes.setdefault(param, set()).add(attr)

    def mark_incomplete(self, why: str) -> None:
        if self.complete:
            self.complete = False
            self.incomplete_why = why

    def same_as(self, other: "FunctionEffects") -> bool:
        return (
            self.reads == other.reads
            and self.writes == other.writes
            and self.mutates == other.mutates
            and self.complete == other.complete
        )


def _strip_const(effects: FunctionEffects, fi: FunctionInfo) -> None:
    """Apply a ``# passaudit: const`` pragma: drop self-writes."""
    self_param = fi.self_param
    if self_param is None:
        return
    effects.writes.pop(self_param, None)
    effects.mutates.discard(self_param)


class _FunctionAnalyzer:
    """One source-ordered walk of a function body."""

    def __init__(
        self,
        graph: CallGraph,
        fi: FunctionInfo,
        summaries: Dict[FunctionInfo, FunctionEffects],
    ) -> None:
        self.graph = graph
        self.fi = fi
        self.summaries = summaries
        self.effects = FunctionEffects()
        self.env: Dict[str, Binding] = {
            p: ("param", p) for p in fi.params
        }
        self.local_funcs: Set[str] = set()

    def run(self) -> FunctionEffects:
        for stmt in self.fi.node.body:
            self.visit(stmt)
        if self.fi.is_const():
            _strip_const(self.effects, self.fi)
        return self.effects

    # -- bindings -------------------------------------------------------
    def binding_of(self, node: ast.AST) -> Binding:
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            root, chain = self._attr_root(node)
            if root is None or not chain:
                return None
            base = self.env.get(root)
            if base is not None and base[0] == "param":
                return ("attr", base[1], chain[0])
            if base is not None and base[0] == "attr":
                # attr of an aliased attr: still the same first level.
                return ("attr", base[1], base[2])
        return None

    @staticmethod
    def _attr_root(
        node: ast.Attribute,
    ) -> Tuple[Optional[str], List[str]]:
        """Root ``Name`` and attribute chain of ``a.b.c`` (-> a, [b, c])."""
        chain: List[str] = []
        current: ast.AST = node
        while isinstance(current, ast.Attribute):
            chain.append(current.attr)
            current = current.value
        chain.reverse()
        if isinstance(current, ast.Name):
            return current.id, chain
        return None, chain

    # -- the walk -------------------------------------------------------
    def visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            self.visit(node.value)
            for target in node.targets:
                self._assign_target(target, node.value)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self.visit(node.value)
                self._assign_target(node.target, node.value)
        elif isinstance(node, ast.AugAssign):
            self.visit(node.value)
            self._store_target(node.target, also_read=True)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._store_target(target)
        elif isinstance(node, ast.Call):
            self._visit_call(node)
        elif isinstance(node, ast.Attribute):
            self._record_attr_load(node)
            for child in ast.iter_child_nodes(node):
                self.visit(child)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.Lambda)):
            self._visit_nested(node)
        elif isinstance(node, ast.ClassDef):
            pass  # nested classes are separate scopes
        else:
            for child in ast.iter_child_nodes(node):
                self.visit(child)

    def _visit_nested(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]
    ) -> None:
        # Nested functions/lambdas close over our locals and are (in
        # this codebase) always called; include their bodies with the
        # nested parameters shadowed.
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.local_funcs.add(node.name)
        args = node.args
        shadowed = [a.arg for a in args.posonlyargs + args.args
                    + args.kwonlyargs]
        saved = {name: self.env.get(name) for name in shadowed}
        for name in shadowed:
            self.env[name] = None
        body = node.body if isinstance(node.body, list) else [node.body]
        for stmt in body:
            self.visit(stmt)
        for name, binding in saved.items():
            if binding is None:
                self.env.pop(name, None)
            else:
                self.env[name] = binding

    def _record_attr_load(self, node: ast.Attribute) -> None:
        root, chain = self._attr_root(node)
        if root is None or not chain:
            return
        base = self.env.get(root)
        if base is not None and base[0] == "param":
            self.effects.read(base[1], chain[0])

    def _assign_target(self, target: ast.AST, value: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = self.binding_of(value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    self.env[element.id] = None
                else:
                    self._store_target(element)
        else:
            self._store_target(target)

    def _store_target(self, target: ast.AST, also_read: bool = False) -> None:
        if isinstance(target, ast.Name):
            if also_read:
                return  # augmented store to a local: no state effect
            self.env[target.id] = None
            return
        if isinstance(target, ast.Attribute):
            root, chain = self._attr_root(target)
            if root is not None and chain:
                base = self.env.get(root)
                if base is not None and base[0] == "param":
                    self.effects.write(base[1], chain[0])
                    if also_read or len(chain) > 1:
                        self.effects.read(base[1], chain[0])
                elif base is not None and base[0] == "attr":
                    # store through an alias of state.X mutates X
                    self.effects.write(base[1], base[2])
            return
        if isinstance(target, ast.Subscript):
            self.visit(target.slice)
            binding = self.binding_of(target.value)
            if binding is not None and binding[0] == "param":
                self.effects.mutates.add(binding[1])
            elif binding is not None and binding[0] == "attr":
                self.effects.write(binding[1], binding[2])
                self.effects.read(binding[1], binding[2])
            if isinstance(target.value, (ast.Attribute, ast.Call,
                                         ast.Subscript)):
                self.visit(target.value)
            return
        if isinstance(target, ast.Starred):
            self._store_target(target.value, also_read=also_read)
            return
        for child in ast.iter_child_nodes(target):
            self.visit(child)

    # -- calls ----------------------------------------------------------
    def _visit_call(self, node: ast.Call) -> None:
        # Evaluate receiver and arguments first (records their reads
        # and handles nested calls).
        if isinstance(node.func, ast.Attribute):
            self.visit(node.func.value)
        for arg in node.args:
            self.visit(arg.value if isinstance(arg, ast.Starred) else arg)
        for keyword in node.keywords:
            self.visit(keyword.value)

        if isinstance(node.func, ast.Name):
            self._call_by_name(node, node.func.id)
        elif isinstance(node.func, ast.Attribute):
            self._call_method(node, node.func)

    def _call_by_name(self, node: ast.Call, name: str) -> None:
        if name in self.local_funcs:
            return  # nested def: its body is already inlined above
        target = self.graph.resolve_name(self.fi.module_name, name)
        if isinstance(target, FunctionInfo):
            self._apply_callee(target, node, receiver=None)
            return
        if isinstance(target, ClassInfo):
            init = target.methods.get("__init__")
            if init is not None:
                self._apply_callee(init, node, receiver=None,
                                   skip_self=True)
            # No __init__ (dataclass/plain exception): the constructor
            # stores references without mutating its arguments.
            return
        if isinstance(target, ImportEntry):
            if target.internal and target.symbol is not None:
                # An intraproject symbol outside the scanned modules.
                # Capitalised names are (by repo convention) classes;
                # constructors do not mutate their arguments.
                if not target.symbol[:1].isupper():
                    self.effects.mark_incomplete(
                        f"{self.fi.qualname}: call to {name}() resolves "
                        f"outside the scanned modules "
                        f"({target.target_module})"
                    )
            return  # stdlib / third-party: assumed argument-pure
        if self.graph.is_builtin(name):
            return
        if name[:1].isupper():
            return  # unresolved constructor-shaped name
        self.effects.mark_incomplete(
            f"{self.fi.qualname}: call to unresolvable name {name}()"
        )

    def _call_method(self, node: ast.Call, func: ast.Attribute) -> None:
        receiver = func.value
        recv_binding = self.binding_of(receiver)
        receiver_is_self = (
            isinstance(receiver, ast.Name)
            and self.fi.owner is not None
            and receiver.id == self.fi.self_param
        )
        candidates = self.graph.resolve_method(
            self.fi.owner, receiver_is_self, func.attr)
        if candidates:
            for candidate in candidates:
                self._apply_callee(candidate, node, receiver=recv_binding)
            return
        if func.attr in MUTATORS:
            self._mutate_binding(recv_binding)
            return
        if func.attr in PURE_METHODS:
            return
        if recv_binding is not None:
            # An unresolvable method on a parameter-connected object:
            # it could mutate state we cannot see.
            self.effects.mark_incomplete(
                f"{self.fi.qualname}: unresolvable method "
                f".{func.attr}() on a tracked object"
            )

    def _mutate_binding(self, binding: Binding) -> None:
        if binding is None:
            return
        if binding[0] == "param":
            self.effects.mutates.add(binding[1])
        else:
            self.effects.write(binding[1], binding[2])

    def _apply_callee(
        self,
        callee: FunctionInfo,
        node: ast.Call,
        receiver: Binding,
        skip_self: bool = False,
    ) -> None:
        summary = self.summaries.get(callee)
        if summary is None:
            return
        if not summary.complete:
            self.effects.mark_incomplete(
                summary.incomplete_why
                or f"{callee.qualname}: incomplete summary"
            )

        bound: List[Tuple[str, Binding]] = []
        positional = list(callee.positional_params)
        if callee.is_classmethod and positional:
            positional = positional[1:]  # cls is not a tracked object
        elif (
            callee.owner is not None and not callee.is_static and positional
        ):
            if skip_self:
                positional = positional[1:]
            else:
                bound.append((positional[0], receiver))
                positional = positional[1:]

        index = 0
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                break
            if index >= len(positional):
                break
            bound.append((positional[index], self.binding_of(arg)))
            index += 1
        param_names = set(callee.params)
        for keyword in node.keywords:
            if keyword.arg is not None and keyword.arg in param_names:
                bound.append((keyword.arg, self.binding_of(keyword.value)))

        for param, binding in bound:
            if binding is None:
                continue
            callee_reads = summary.reads.get(param, set())
            callee_writes = summary.writes.get(param, set())
            touched = bool(callee_writes) or param in summary.mutates
            if binding[0] == "param":
                own = binding[1]
                for attr in callee_reads:
                    self.effects.read(own, attr)
                for attr in callee_writes:
                    self.effects.write(own, attr)
                if param in summary.mutates:
                    self.effects.mutates.add(own)
            else:  # ("attr", param, attr)
                if touched:
                    self.effects.write(binding[1], binding[2])


def compute_function_effects(
    graph: CallGraph,
) -> Dict[FunctionInfo, FunctionEffects]:
    """Fixpoint over every scanned function's effect summary."""
    functions = graph.all_functions()
    summaries: Dict[FunctionInfo, FunctionEffects] = {
        fi: FunctionEffects() for fi in functions
    }
    # Effects only grow and completeness only falls, so this
    # terminates; the cap is a defensive bound.
    for _round in range(20):
        changed = False
        for fi in functions:
            updated = _FunctionAnalyzer(graph, fi, summaries).run()
            if not updated.same_as(summaries[fi]):
                summaries[fi] = updated
                changed = True
        if not changed:
            break
    return summaries


# ----------------------------------------------------------------------
# pass contracts
# ----------------------------------------------------------------------
@dataclass
class PassContract:
    """A declared ``reads``/``writes`` frozenset on a Pass subclass."""

    attrs: Set[str]
    node: ast.AST
    literal: bool = True


@dataclass
class PassReport:
    """Inferred + declared effects for one ``Pass`` subclass."""

    cls: ClassInfo
    run: Optional[FunctionInfo]
    state_param: Optional[str]
    reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)
    complete: bool = True
    incomplete_why: str = ""
    declared_reads: Optional[PassContract] = None
    declared_writes: Optional[PassContract] = None

    @property
    def name(self) -> str:
        return self.cls.name

    @property
    def key(self) -> str:
        return f"{self.cls.module_name}:{self.cls.name}"


@dataclass
class ReuseProtocol:
    """Module-level reuse declarations read from the pass module."""

    module: ModuleSource
    channels: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    memos: Tuple[str, ...] = ()


@dataclass
class ProjectEffects:
    """Everything one passaudit analysis produced."""

    graph: CallGraph
    summaries: Dict[FunctionInfo, FunctionEffects]
    passes: List[PassReport]
    protocols: Dict[str, ReuseProtocol]  # keyed by module name


def _is_pass_subclass(cls: ClassInfo) -> bool:
    return "Pass" in cls.base_names()


def _contract_from(node: ast.AST, value: ast.AST) -> PassContract:
    """Parse ``frozenset({...})`` of string literals; mark non-literals."""
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "frozenset"
        and len(value.args) <= 1
        and not value.keywords
    ):
        if not value.args:
            return PassContract(set(), node)
        inner = value.args[0]
        if isinstance(inner, (ast.Set, ast.List, ast.Tuple)):
            attrs: Set[str] = set()
            for element in inner.elts:
                if (
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ):
                    attrs.add(element.value)
                else:
                    return PassContract(set(), node, literal=False)
            return PassContract(attrs, node)
    return PassContract(set(), node, literal=False)


def _pass_contracts(
    cls: ClassInfo,
) -> Tuple[Optional[PassContract], Optional[PassContract]]:
    declared: Dict[str, PassContract] = {}
    for item in cls.node.body:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(item, ast.Assign):
            targets, value = list(item.targets), item.value
        elif isinstance(item, ast.AnnAssign) and item.value is not None:
            targets, value = [item.target], item.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id in ("reads", "writes")
                and value is not None
            ):
                declared[target.id] = _contract_from(item, value)
    return declared.get("reads"), declared.get("writes")


def _string_elements(node: ast.AST) -> Optional[Tuple[str, ...]]:
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        out: List[str] = []
        for element in node.elts:
            if (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                out.append(element.value)
            else:
                return None
        return tuple(out)
    return None


def _protocol_for(module: ModuleSource) -> ReuseProtocol:
    protocol = ReuseProtocol(module=module)
    for item in module.tree.body:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(item, ast.Assign):
            targets, value = list(item.targets), item.value
        elif isinstance(item, ast.AnnAssign) and item.value is not None:
            targets, value = [item.target], item.value
        for target in targets:
            if not isinstance(target, ast.Name) or value is None:
                continue
            if target.id == "REUSE_CHANNELS" and isinstance(value, ast.Dict):
                for key, entry in zip(value.keys, value.values):
                    if not (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                    ):
                        continue
                    channels = _string_elements(entry)
                    if channels is not None:
                        protocol.channels[key.value] = channels
            elif target.id == "REUSE_MEMOS":
                memos = _string_elements(value)
                if memos is not None:
                    protocol.memos = memos
    return protocol


# RL006 and RL007 both run over the same in-scope module list within
# one lint invocation; a tiny keyed cache avoids computing the fixpoint
# twice.  Keys are object identities -- safe because every cached
# ProjectEffects holds its modules alive, so a live entry's ids cannot
# be reused by new objects.
_CACHE: Dict[Tuple[int, ...], "ProjectEffects"] = {}


def analyze_project(modules: Sequence[ModuleSource]) -> ProjectEffects:
    """Run the full effect analysis over the given modules (cached)."""
    key = tuple(id(m) for m in modules)
    hit = _CACHE.get(key)
    if hit is not None:
        return hit
    result = _analyze_project(modules)
    if len(_CACHE) >= 4:
        _CACHE.pop(next(iter(_CACHE)))
    _CACHE[key] = result
    return result


def _analyze_project(modules: Sequence[ModuleSource]) -> ProjectEffects:
    graph = CallGraph(modules)
    summaries = compute_function_effects(graph)
    passes: List[PassReport] = []
    protocols: Dict[str, ReuseProtocol] = {}
    for key in sorted(graph.classes):
        cls = graph.classes[key]
        if not _is_pass_subclass(cls):
            continue
        if cls.module_name not in protocols:
            protocols[cls.module_name] = _protocol_for(cls.module)
        run = cls.methods.get("run")
        declared_reads, declared_writes = _pass_contracts(cls)
        report = PassReport(
            cls=cls,
            run=run,
            state_param=None,
            declared_reads=declared_reads,
            declared_writes=declared_writes,
        )
        if run is not None:
            positional = run.positional_params
            subject_index = 0 if run.is_static else 1
            if len(positional) > subject_index:
                report.state_param = positional[subject_index]
                summary = summaries[run]
                report.reads = set(
                    summary.reads.get(report.state_param, set()))
                report.writes = set(
                    summary.writes.get(report.state_param, set()))
                report.complete = summary.complete
                report.incomplete_why = summary.incomplete_why
        passes.append(report)
    return ProjectEffects(
        graph=graph, summaries=summaries, passes=passes,
        protocols=protocols,
    )


def effect_map(project: ProjectEffects) -> Dict[str, object]:
    """The committed, diffable ``tools/pass-effects.json`` payload."""
    passes: Dict[str, object] = {}
    for report in sorted(project.passes, key=lambda r: r.key):
        passes[report.key] = {
            "reads": sorted(report.reads),
            "writes": sorted(report.writes),
            "complete": report.complete,
        }
    channels: Dict[str, List[str]] = {}
    memos: Set[str] = set()
    for modname in sorted(project.protocols):
        protocol = project.protocols[modname]
        for fieldname in sorted(protocol.channels):
            channels[fieldname] = sorted(protocol.channels[fieldname])
        memos.update(protocol.memos)
    return {
        "kind": EFFECT_MAP_KIND,
        "version": 1,
        "passes": passes,
        "protocol": {
            "channels": channels,
            "memos": sorted(memos),
        },
    }
