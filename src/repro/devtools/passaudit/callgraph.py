"""Bounded intraproject call graph for the passaudit analyses.

The graph is built from the :class:`~repro.devtools.lint.framework.ModuleSource`
objects a rule's ``check_project`` receives, so it sees exactly the
modules in scope -- nothing is imported or executed.  Resolution is
deliberately bounded:

* a bare-name call resolves to a function/class in the same module or
  through the module's ``import``/``from ... import`` table (relative
  imports are resolved against the module key, absolute ``repro.``
  imports are stripped to the same package-relative namespace);
* ``self.method(...)`` resolves within the owning class;
* ``receiver.method(...)`` resolves by *unique method name* across
  every scanned class -- when several classes define the name, all
  candidates are returned and callers union their effects.

Anything outside the scanned set is either assumed effect-free (the
stdlib, builtins) or reported as unresolvable so downstream analyses
can mark their summaries incomplete instead of silently guessing.

The ``# passaudit: const(reason)`` pragma, parsed here, declares a
method *logically* read-only: memoising query methods (lazy caches
such as ``WordlengthCompatibilityGraph.compatible_resources`` or
``SequencingGraph.topological_order``) write private cache attributes
inside what is semantically a pure query.  The pragma drops the
method's self-writes from effect summaries; the reason is mandatory
and a reasonless or dangling pragma is itself reported (RL006).
"""

from __future__ import annotations

import ast
import builtins
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..lint.framework import ModuleSource

__all__ = [
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "ImportEntry",
    "module_name",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

_BUILTIN_NAMES = frozenset(dir(builtins))

# The reason group is greedy to the line's last ``)`` so reasons may
# themselves mention calls like ``refine()``.
_CONST_RE = re.compile(
    r"#\s*passaudit:\s*const(?:\((?P<reason>.*)\))?"
)


def module_name(module: ModuleSource) -> str:
    """Dotted package-relative module name (``core.solver``)."""
    parts = list(module.module_key)
    if not parts:
        return ""
    last = parts[-1]
    if last.endswith(".py"):
        last = last[:-3]
    if last == "__init__":
        parts = parts[:-1]
    else:
        parts[-1] = last
    return ".".join(parts)


@dataclass(eq=False)
class ClassInfo:
    """One scanned class and its directly defined methods."""

    module: ModuleSource
    module_name: str
    node: ast.ClassDef
    methods: Dict[str, "FunctionInfo"] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name

    def base_names(self) -> List[str]:
        names = []
        for base in self.node.bases:
            if isinstance(base, ast.Name):
                names.append(base.id)
            elif isinstance(base, ast.Attribute):
                names.append(base.attr)
        return names


@dataclass(eq=False)
class FunctionInfo:
    """One scanned function or method."""

    module: ModuleSource
    module_name: str
    node: FunctionNode
    owner: Optional[ClassInfo] = None
    is_static: bool = False
    is_classmethod: bool = False
    # None: no pragma.  Otherwise the (possibly empty) reason string.
    const_reason: Optional[str] = None
    const_line: int = 0

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def qualname(self) -> str:
        if self.owner is not None:
            return f"{self.module_name}:{self.owner.name}.{self.name}"
        return f"{self.module_name}:{self.name}"

    @property
    def params(self) -> Tuple[str, ...]:
        """Bindable parameter names, in positional order (kw-only last)."""
        args = self.node.args
        names = [a.arg for a in args.posonlyargs]
        names += [a.arg for a in args.args]
        names += [a.arg for a in args.kwonlyargs]
        return tuple(names)

    @property
    def positional_params(self) -> Tuple[str, ...]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs]
        names += [a.arg for a in args.args]
        return tuple(names)

    @property
    def self_param(self) -> Optional[str]:
        """The implicit-receiver parameter name, for bound methods."""
        if self.owner is None or self.is_static:
            return None
        positional = self.positional_params
        return positional[0] if positional else None

    def is_const(self) -> bool:
        return self.const_reason is not None


@dataclass(frozen=True)
class ImportEntry:
    """One name the module imported: where it came from."""

    target_module: str  # package-relative dotted name ("core.binding")
    symbol: Optional[str]  # None for `import x` module bindings
    internal: bool  # True when the target lives under the repro tree


def _first_def_line(node: FunctionNode) -> int:
    lines = [node.lineno]
    lines.extend(d.lineno for d in node.decorator_list)
    return min(lines)


class CallGraph:
    """Function/class index plus import-aware name resolution."""

    def __init__(self, modules: Sequence[ModuleSource]) -> None:
        self.modules: List[ModuleSource] = list(modules)
        self.module_names: Dict[str, ModuleSource] = {}
        self.functions: Dict[Tuple[str, str], FunctionInfo] = {}
        self.classes: Dict[Tuple[str, str], ClassInfo] = {}
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        self.imports: Dict[str, Dict[str, ImportEntry]] = {}
        # (module, line, message) hygiene problems from const pragmas.
        self.pragma_problems: List[Tuple[ModuleSource, int, str]] = []
        for module in self.modules:
            self._index_module(module)

    # -- construction ---------------------------------------------------
    def _index_module(self, module: ModuleSource) -> None:
        modname = module_name(module)
        self.module_names[modname] = module
        pragmas = self._const_pragmas(module)
        claimed: Dict[int, bool] = {line: False for line in pragmas}

        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._function_info(module, modname, node, None,
                                           pragmas, claimed)
                self.functions[(modname, node.name)] = info
            elif isinstance(node, ast.ClassDef):
                cls = ClassInfo(module=module, module_name=modname, node=node)
                self.classes[(modname, node.name)] = cls
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        info = self._function_info(module, modname, item,
                                                   cls, pragmas, claimed)
                        cls.methods[item.name] = info
                        self.methods_by_name.setdefault(
                            item.name, []
                        ).append(info)
        self.imports[modname] = self._import_table(module, modname)

        for line, used in sorted(claimed.items()):
            if not used:
                self.pragma_problems.append((
                    module, line,
                    "passaudit const pragma is not attached to any "
                    "function definition",
                ))

    @staticmethod
    def _const_pragmas(module: ModuleSource) -> Dict[int, str]:
        """``{line: reason}`` for every const pragma in the module."""
        pragmas: Dict[int, str] = {}
        for index, text in enumerate(module.lines, start=1):
            match = _CONST_RE.search(text)
            if match is not None:
                pragmas[index] = (match.group("reason") or "").strip()
        return pragmas

    def _function_info(
        self,
        module: ModuleSource,
        modname: str,
        node: FunctionNode,
        owner: Optional[ClassInfo],
        pragmas: Dict[int, str],
        claimed: Dict[int, bool],
    ) -> FunctionInfo:
        decorators = {
            d.id for d in node.decorator_list if isinstance(d, ast.Name)
        }
        const_reason: Optional[str] = None
        const_line = 0
        # The pragma may sit on the line above the def (or its first
        # decorator) or on any line of the (possibly multi-line)
        # signature itself.
        first = _first_def_line(node)
        body_start = node.body[0].lineno if node.body else node.lineno + 1
        for line in range(first - 1, body_start):
            if line in pragmas:
                claimed[line] = True
                const_reason = pragmas[line]
                const_line = line
                break
        if const_reason is not None and not const_reason:
            self.pragma_problems.append((
                module, const_line,
                f"passaudit const pragma on {node.name}() gives no reason "
                f"-- write '# passaudit: const(why the writes are "
                f"logically read-only)'",
            ))
        return FunctionInfo(
            module=module,
            module_name=modname,
            node=node,
            owner=owner,
            is_static="staticmethod" in decorators,
            is_classmethod="classmethod" in decorators,
            const_reason=const_reason,
            const_line=const_line,
        )

    def _import_table(
        self, module: ModuleSource, modname: str
    ) -> Dict[str, ImportEntry]:
        table: Dict[str, ImportEntry] = {}
        package = modname.split(".")[:-1] if modname else []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target, internal = self._strip_repro(alias.name)
                    if alias.asname is not None:
                        table[alias.asname] = ImportEntry(
                            target, None, internal)
                    else:
                        top = alias.name.split(".")[0]
                        t, internal = self._strip_repro(top)
                        table[top] = ImportEntry(t, None, internal)
            elif isinstance(node, ast.ImportFrom):
                target = self._resolve_from(node, package)
                if target is None:
                    continue
                target_module, internal = target
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    table[alias.asname or alias.name] = ImportEntry(
                        target_module, alias.name, internal)
        return table

    @staticmethod
    def _strip_repro(name: str) -> Tuple[str, bool]:
        if name == "repro":
            return "", True
        if name.startswith("repro."):
            return name[len("repro."):], True
        return name, False

    @staticmethod
    def _resolve_from(
        node: ast.ImportFrom, package: List[str]
    ) -> Optional[Tuple[str, bool]]:
        if node.level == 0:
            target, internal = CallGraph._strip_repro(node.module or "")
            return target, internal
        # Relative import: level 1 is the current package, each extra
        # level climbs one parent.  A level that climbs past the scan
        # root still resolves (empty base) -- the scanned module keys
        # are already package-relative.
        climb = node.level - 1
        base = package[: len(package) - climb] if climb else list(package)
        if climb > len(package):
            base = []
        tail = node.module.split(".") if node.module else []
        return ".".join(base + tail), True

    # -- resolution -----------------------------------------------------
    def resolve_name(
        self, modname: str, name: str, _depth: int = 0
    ) -> Union[FunctionInfo, ClassInfo, ImportEntry, None]:
        """Resolve a bare name to a scanned function/class.

        Returns the :class:`ImportEntry` itself when the name is
        imported but its target is outside the scanned set (callers
        decide whether that is benign-external or incompleteness).
        Returns ``None`` for names with no import/definition at all.
        """
        if _depth > 4:
            return None
        found = self.functions.get((modname, name))
        if found is not None:
            return found
        cls = self.classes.get((modname, name))
        if cls is not None:
            return cls
        entry = self.imports.get(modname, {}).get(name)
        if entry is None:
            return None
        if entry.symbol is None:
            return entry  # a module object, not a callable
        if entry.target_module in self.module_names:
            resolved = self.resolve_name(
                entry.target_module, entry.symbol, _depth + 1)
            if resolved is not None:
                return resolved
        return entry

    def resolve_method(
        self, owner: Optional[ClassInfo], receiver_is_self: bool, name: str
    ) -> List[FunctionInfo]:
        """Candidate methods for a ``receiver.name(...)`` call."""
        if receiver_is_self and owner is not None:
            own = owner.methods.get(name)
            if own is not None:
                return [own]
        return list(self.methods_by_name.get(name, []))

    def all_functions(self) -> List[FunctionInfo]:
        """Every indexed function, in deterministic order."""
        out: List[FunctionInfo] = []
        for key in sorted(self.functions):
            out.append(self.functions[key])
        for key in sorted(self.classes):
            cls = self.classes[key]
            for mname in sorted(cls.methods):
                out.append(cls.methods[mname])
        return out

    @staticmethod
    def is_builtin(name: str) -> bool:
        return name in _BUILTIN_NAMES
