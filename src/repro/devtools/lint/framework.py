"""reprolint core: modules, rules, suppressions, baseline, reports.

The framework is deliberately small and dependency-free (``ast`` +
``tokenize``):

* :class:`ModuleSource` -- one parsed file: source text, AST, the
  package-relative *module key* used for rule scoping, and the parsed
  ``# reprolint: disable=...`` suppression comments;
* :class:`LintRule` -- base class every rule subclasses; rules
  self-register with :func:`register_rule` and carry their own docs
  (``repro lint --explain RL001`` prints the class docstring);
* :func:`run_lint` -- collect files, run every in-scope rule, apply
  suppressions and the baseline, and return a :class:`LintReport` with
  stable per-finding fingerprints;
* baseline I/O -- a checked JSON file of grandfathered finding
  fingerprints, so a new rule can land before every historical finding
  is fixed without letting *new* findings through CI.

Suppression syntax (line-scoped)::

    risky_call()  # reprolint: disable=RL002(seed comes from the request)

A comment on its own line suppresses the next statement line.  A
suppression must name a known rule code **and give a reason**;
reasonless, unknown-code and unused suppressions are themselves
findings (code ``RL000``), so the suppression surface stays auditable.

Exit-code semantics (used by the CLI and ``tools/run_lint.py``):
``0`` no new findings, ``1`` new findings, ``2`` usage/internal error.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "BASELINE_KIND",
    "Finding",
    "LintReport",
    "LintRule",
    "ModuleSource",
    "all_rules",
    "collect_modules",
    "get_rule",
    "load_baseline",
    "register_rule",
    "run_lint",
    "save_baseline",
]

PathLike = Union[str, Path]

BASELINE_KIND = "reprolint-baseline"
REPORT_KIND = "reprolint-report"
META_CODE = "RL000"

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=(?P<body>.+)$")
_CODE_RE = re.compile(r"(?P<code>RL\d{3})\s*(?:\((?P<reason>[^()]*)\))?")


# ----------------------------------------------------------------------
# findings
# ----------------------------------------------------------------------
@dataclass
class Finding:
    """One rule violation at one source location.

    ``status`` is assigned by the runner: ``new`` (fails the run),
    ``baselined`` (grandfathered by the baseline file) or
    ``suppressed`` (an inline pragma with a reason matched it).
    """

    rule: str
    path: str  # root-relative posix path
    line: int
    column: int
    message: str
    snippet: str = ""
    status: str = "new"
    reason: str = ""  # suppression reason when status == "suppressed"
    fingerprint: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column + 1}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "snippet": self.snippet,
            "status": self.status,
            "reason": self.reason,
            "fingerprint": self.fingerprint,
        }


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
@dataclass
class Suppression:
    """One parsed ``# reprolint: disable=RLxxx(reason)`` entry."""

    code: str
    reason: str
    comment_line: int  # physical line holding the comment
    target_line: int  # line whose findings it suppresses
    used: bool = False


def _parse_suppressions(
    text: str, lines: Sequence[str]
) -> Tuple[List[Suppression], List[Tuple[int, str]]]:
    """Parse suppression comments from ``text``.

    Returns ``(suppressions, problems)`` where each problem is a
    ``(line, message)`` pair for malformed pragmas (no parseable rule
    code after ``disable=``).
    """
    suppressions: List[Suppression] = []
    problems: List[Tuple[int, str]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions, problems
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        row = token.start[0]
        standalone = lines[row - 1].lstrip().startswith("#")
        target = row
        if standalone:
            # A comment on its own line governs the next line that
            # holds code (skipping blanks and further comments).
            target = row + 1
            while target <= len(lines):
                stripped = lines[target - 1].strip()
                if stripped and not stripped.startswith("#"):
                    break
                target += 1
        entries = list(_CODE_RE.finditer(match.group("body")))
        if not entries:
            problems.append(
                (row, "suppression names no rule code (expected RLxxx)")
            )
            continue
        for entry in entries:
            suppressions.append(Suppression(
                code=entry.group("code"),
                reason=(entry.group("reason") or "").strip(),
                comment_line=row,
                target_line=target,
            ))
    return suppressions, problems


# ----------------------------------------------------------------------
# module sources
# ----------------------------------------------------------------------
@dataclass
class ModuleSource:
    """One parsed python file handed to the rules."""

    path: Path  # absolute
    display: str  # root-relative posix path (stable across machines)
    module_key: Tuple[str, ...]  # package-relative parts for scoping
    text: str
    lines: List[str]
    tree: ast.Module
    suppressions: List[Suppression] = field(default_factory=list)
    pragma_problems: List[Tuple[int, str]] = field(default_factory=list)

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self, rule: str, node_or_line: Union[ast.AST, int], message: str,
        column: Optional[int] = None,
    ) -> Finding:
        """Build a finding anchored at an AST node or a line number."""
        if isinstance(node_or_line, int):
            line, col = node_or_line, (column or 0)
        else:
            line = getattr(node_or_line, "lineno", 1)
            col = getattr(node_or_line, "col_offset", 0)
            if column is not None:
                col = column
        return Finding(
            rule=rule,
            path=self.display,
            line=line,
            column=col,
            message=message,
            snippet=self.snippet(line),
        )


def _module_key(file_path: Path, root: Path) -> Tuple[str, ...]:
    """Package-relative parts used for rule scoping.

    Files inside a ``repro`` package directory are keyed relative to
    it (``src/repro/core/binding.py`` -> ``("core", "binding.py")``),
    so scoped rules hit the same modules whether the scan root is the
    repo, ``src`` or ``src/repro``.  Files outside any ``repro``
    package (test fixtures, scratch trees) are keyed relative to the
    scan root, which lets fixtures opt into a scope by mimicking the
    layout (``<tmp>/core/case.py``).
    """
    parts = file_path.parts
    if "repro" in parts:
        index = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        return parts[index + 1:]
    try:
        relative = file_path.relative_to(root)
    except ValueError:
        return (file_path.name,)
    return relative.parts


def load_module(path: Path, root: Path, display: str) -> ModuleSource:
    """Parse one file (raises ``SyntaxError`` / ``OSError`` upward)."""
    text = path.read_text()
    lines = text.splitlines()
    tree = ast.parse(text, filename=str(path))
    suppressions, problems = _parse_suppressions(text, lines)
    return ModuleSource(
        path=path,
        display=display,
        module_key=_module_key(path, root),
        text=text,
        lines=lines,
        tree=tree,
        suppressions=suppressions,
        pragma_problems=problems,
    )


# ----------------------------------------------------------------------
# rules
# ----------------------------------------------------------------------
class LintRule:
    """Base class for reprolint rules.

    Class attributes:

    * ``code`` -- the stable ``RLxxx`` identifier;
    * ``name`` -- short kebab-case name for listings;
    * ``contract`` -- one line naming the repo invariant the rule
      protects (shown by ``--list-rules``);
    * ``scope`` -- top-level ``repro`` subpackages the rule applies to
      (empty tuple = every scanned module).

    Subclasses implement :meth:`check_module` and/or
    :meth:`check_project` (for cross-module properties such as
    registry name collisions) and document themselves in the class
    docstring, which ``repro lint --explain CODE`` prints verbatim.
    """

    code: str = ""
    name: str = ""
    contract: str = ""
    scope: Tuple[str, ...] = ()

    def applies_to(self, module: ModuleSource) -> bool:
        if not self.scope:
            return True
        return bool(module.module_key) and module.module_key[0] in self.scope

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        return ()

    def check_project(
        self, modules: Sequence[ModuleSource]
    ) -> Iterable[Finding]:
        return ()


_RULES: Dict[str, LintRule] = {}


def register_rule(cls: type) -> type:
    """Class decorator adding a rule instance to the global registry."""
    instance = cls()
    if not instance.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    existing = _RULES.get(instance.code)
    if existing is not None and type(existing) is not cls:
        raise ValueError(
            f"rule code {instance.code} already registered "
            f"({type(existing).__name__})"
        )
    _RULES[instance.code] = instance
    return cls


def all_rules() -> List[LintRule]:
    """Registered rules, sorted by code (framework RL000 included)."""
    _ensure_rules_loaded()
    return [_RULES[code] for code in sorted(_RULES)]


def get_rule(code: str) -> Optional[LintRule]:
    _ensure_rules_loaded()
    return _RULES.get(code)


def _ensure_rules_loaded() -> None:
    # The built-in rules live in a sibling module that registers on
    # import; loading lazily keeps `import repro` free of lint costs.
    # The passaudit package contributes RL006/RL007 the same way.
    from . import rules  # noqa: F401
    from ..passaudit import rules as _passaudit_rules  # noqa: F401


class _SuppressionHygiene(LintRule):
    """RL000 suppression-hygiene: the pragma surface stays auditable.

    ``# reprolint: disable=RLxxx(reason)`` is the only sanctioned way
    to silence a finding, and this meta-rule keeps that escape hatch
    honest: a suppression must (a) parse, (b) name a registered rule
    code, (c) give a non-empty reason, and (d) actually match a
    finding on its target line.  Violations of any of these are RL000
    findings -- a reasonless pragma is *inert* (the underlying finding
    still fires) so CI can never be silenced without a recorded why.
    """

    code = META_CODE
    name = "suppression-hygiene"
    contract = "suppressions stay auditable: known code, reason, still needed"
    scope = ()


_RULES[META_CODE] = _SuppressionHygiene()


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------
def finding_fingerprint(finding: Finding, occurrence: int) -> str:
    """Stable identity for baselining.

    Line numbers drift with every edit, so the fingerprint hashes the
    rule, the file, the *stripped source line* and an occurrence index
    (disambiguating identical lines in one file, counted in line
    order).  Grandfathered findings survive unrelated edits; touching
    the flagged line itself re-surfaces the finding, which is the
    desired pressure.
    """
    payload = "::".join(
        [finding.rule, finding.path, finding.snippet, str(occurrence)]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def assign_fingerprints(findings: Sequence[Finding]) -> None:
    counts: Dict[Tuple[str, str, str], int] = {}
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.column)):
        key = (finding.rule, finding.path, finding.snippet)
        occurrence = counts.get(key, 0)
        counts[key] = occurrence + 1
        finding.fingerprint = finding_fingerprint(finding, occurrence)


def load_baseline(path: PathLike) -> Dict[str, Dict[str, Any]]:
    """Load a baseline file; raises ``ValueError`` on a malformed one."""
    raw = Path(path).read_text()
    data = json.loads(raw)
    if (
        not isinstance(data, dict)
        or data.get("kind") != BASELINE_KIND
        or not isinstance(data.get("entries"), dict)
    ):
        raise ValueError(
            f"{path} is not a {BASELINE_KIND} file (regenerate with "
            f"'repro lint --write-baseline')"
        )
    return data["entries"]


def save_baseline(path: PathLike, findings: Sequence[Finding]) -> int:
    """Write the baseline for ``findings`` (new + previously baselined)."""
    entries = {
        finding.fingerprint: {
            "rule": finding.rule,
            "path": finding.path,
            "snippet": finding.snippet,
        }
        for finding in findings
        if finding.status in ("new", "baselined")
    }
    payload = {
        "kind": BASELINE_KIND,
        "version": 1,
        "entries": entries,
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(entries)


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
@dataclass
class LintReport:
    """Everything one lint run produced."""

    root: str
    files: int
    rules: List[str]
    findings: List[Finding] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)

    @property
    def new(self) -> List[Finding]:
        return [f for f in self.findings if f.status == "new"]

    @property
    def baselined(self) -> List[Finding]:
        return [f for f in self.findings if f.status == "baselined"]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.status == "suppressed"]

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": REPORT_KIND,
            "version": 1,
            "root": self.root,
            "files": self.files,
            "rules": self.rules,
            "counts": {
                "new": len(self.new),
                "baselined": len(self.baselined),
                "suppressed": len(self.suppressed),
            },
            "stale_baseline": list(self.stale_baseline),
            "findings": [f.to_dict() for f in self.findings],
        }


def _collect_files(paths: Sequence[PathLike]) -> List[Tuple[Path, Path]]:
    """Expand ``paths`` into ``(root, file)`` pairs, sorted per root.

    Raises ``FileNotFoundError`` for a path that does not exist --
    a silent empty scan would read as a clean bill of health.
    """
    pairs: List[Tuple[Path, Path]] = []
    for raw in paths:
        path = Path(raw).resolve()
        if path.is_file():
            pairs.append((path.parent, path))
        elif path.is_dir():
            for file in sorted(path.rglob("*.py")):
                if "__pycache__" in file.parts:
                    continue
                pairs.append((path, file))
        else:
            raise FileNotFoundError(f"lint path does not exist: {raw}")
    return pairs


def _display_path(file_path: Path, base: Optional[Path] = None) -> str:
    for candidate in filter(None, (base, Path.cwd())):
        try:
            return file_path.relative_to(candidate).as_posix()
        except ValueError:
            continue
    return file_path.as_posix()


def collect_modules(
    paths: Sequence[PathLike],
    display_root: Optional[PathLike] = None,
) -> List[ModuleSource]:
    """Load every ``*.py`` under ``paths`` as a :class:`ModuleSource`.

    Strict counterpart of the collection loop in :func:`run_lint`:
    parse and I/O errors propagate instead of degrading to findings.
    Used by consumers (the passaudit effect-map commands) that need
    the module set without running any rules.
    """
    base = Path(display_root).resolve() if display_root is not None else None
    modules: List[ModuleSource] = []
    for root, file_path in _collect_files(paths):
        display = _display_path(file_path, base)
        modules.append(load_module(file_path, root, display))
    return modules


def run_lint(
    paths: Sequence[PathLike],
    rule_codes: Optional[Sequence[str]] = None,
    baseline: Optional[Dict[str, Dict[str, Any]]] = None,
    display_root: Optional[PathLike] = None,
) -> LintReport:
    """Lint ``paths`` and return the full report.

    Args:
        paths: files and/or directories (directories recurse ``*.py``).
        rule_codes: restrict to these codes (RL000 always runs).
        baseline: grandfathered-fingerprint entries from
            :func:`load_baseline`; matching findings are reported with
            ``status="baselined"`` and do not fail the run.
        display_root: base that finding paths are reported relative to
            (default: the cwd).  Baseline fingerprints hash these
            paths, so the CLI pins this to the repo root to stay
            cwd-independent.

    Raises:
        FileNotFoundError: a given path does not exist.
        ValueError: an unknown rule code was requested.
    """
    selected = all_rules()
    if rule_codes:
        wanted = set(rule_codes) | {META_CODE}
        unknown = wanted - {rule.code for rule in selected}
        if unknown:
            raise ValueError(
                f"unknown rule codes: {', '.join(sorted(unknown))} "
                f"(known: {', '.join(r.code for r in selected)})"
            )
        selected = [rule for rule in selected if rule.code in wanted]

    base = Path(display_root).resolve() if display_root is not None else None
    modules: List[ModuleSource] = []
    findings: List[Finding] = []
    files = 0
    for root, file_path in _collect_files(paths):
        display = _display_path(file_path, base)
        files += 1
        try:
            modules.append(load_module(file_path, root, display))
        except SyntaxError as exc:
            findings.append(Finding(
                rule=META_CODE,
                path=display,
                line=exc.lineno or 1,
                column=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
            ))
        except OSError as exc:
            findings.append(Finding(
                rule=META_CODE, path=display, line=1, column=0,
                message=f"file is unreadable: {exc}",
            ))

    for rule in selected:
        if rule.code == META_CODE:
            continue
        in_scope = [m for m in modules if rule.applies_to(m)]
        for module in in_scope:
            findings.extend(rule.check_module(module))
        findings.extend(rule.check_project(in_scope))

    findings.extend(_apply_suppressions(modules, findings))
    assign_fingerprints(findings)
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))

    stale: List[str] = []
    if baseline:
        present = {f.fingerprint for f in findings}
        stale = sorted(fp for fp in baseline if fp not in present)
        for finding in findings:
            if finding.status == "new" and finding.fingerprint in baseline:
                finding.status = "baselined"

    return LintReport(
        root=str(base if base is not None else Path.cwd()),
        files=files,
        rules=[rule.code for rule in selected],
        findings=findings,
        stale_baseline=stale,
    )


def _apply_suppressions(
    modules: Sequence[ModuleSource], findings: List[Finding]
) -> List[Finding]:
    """Mark suppressed findings in place; return the RL000 findings."""
    meta: List[Finding] = []
    by_module = {module.display: module for module in modules}
    known_codes = {rule.code for rule in all_rules()}

    for finding in findings:
        module = by_module.get(finding.path)
        if module is None:
            continue
        for suppression in module.suppressions:
            if suppression.code != finding.rule:
                continue
            if suppression.target_line != finding.line:
                continue
            suppression.used = True
            if suppression.reason:
                finding.status = "suppressed"
                finding.reason = suppression.reason
            # A reasonless match is recorded as used (so it is not
            # *also* reported as unused) but stays inert: the finding
            # remains "new" and RL000 below explains why.

    for module in modules:
        for line, message in module.pragma_problems:
            meta.append(module.finding(META_CODE, line, message))
        for suppression in module.suppressions:
            if suppression.code not in known_codes:
                meta.append(module.finding(
                    META_CODE, suppression.comment_line,
                    f"suppression names unknown rule "
                    f"{suppression.code}",
                ))
            elif not suppression.reason:
                meta.append(module.finding(
                    META_CODE, suppression.comment_line,
                    f"suppression of {suppression.code} gives no reason "
                    f"-- write disable={suppression.code}(why)",
                ))
            elif not suppression.used:
                meta.append(module.finding(
                    META_CODE, suppression.comment_line,
                    f"unused suppression of {suppression.code}: no such "
                    f"finding on line {suppression.target_line}",
                ))
    return meta


# ----------------------------------------------------------------------
# report formatting
# ----------------------------------------------------------------------
def format_text(
    report: LintReport,
    show_baselined: bool = False,
    show_suppressed: bool = False,
) -> str:
    out: List[str] = []
    shown = list(report.new)
    if show_baselined:
        shown.extend(report.baselined)
    if show_suppressed:
        shown.extend(report.suppressed)
    shown.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    for finding in shown:
        tag = "" if finding.status == "new" else f" [{finding.status}]"
        out.append(
            f"{finding.location()}: {finding.rule}{tag}: {finding.message}"
        )
        if finding.snippet:
            out.append(f"    {finding.snippet}")
        if finding.reason:
            out.append(f"    reason: {finding.reason}")
    if report.stale_baseline:
        out.append(
            f"note: {len(report.stale_baseline)} stale baseline entr"
            f"{'y' if len(report.stale_baseline) == 1 else 'ies'} no longer "
            f"match any finding (refresh with --write-baseline)"
        )
    out.append(
        f"reprolint: {report.files} files, {len(report.rules)} rules -- "
        f"{len(report.new)} new, {len(report.baselined)} baselined, "
        f"{len(report.suppressed)} suppressed"
    )
    return "\n".join(out)
