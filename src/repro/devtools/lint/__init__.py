"""reprolint: the repo's AST-based invariant checker.

Public surface:

* :func:`run_lint` / :class:`LintReport` -- programmatic runs;
* :class:`LintRule` / :func:`register_rule` -- write project rules;
* :class:`Finding`, baseline I/O, :func:`format_text`;
* :func:`main` -- the CLI (``repro lint`` / ``python -m
  repro.devtools.lint`` / ``tools/run_lint.py``).

Rule catalogue and workflow: ``docs/static-analysis.md`` or
``repro lint --list-rules`` / ``--explain CODE``.
"""

from .cli import add_lint_arguments, main, run_from_args
from .framework import (
    Finding,
    LintReport,
    LintRule,
    all_rules,
    format_text,
    get_rule,
    load_baseline,
    register_rule,
    run_lint,
    save_baseline,
)
from . import rules  # noqa: F401  (registers RL001..RL005 on import)
# RL006/RL007 live in repro.devtools.passaudit.rules and are pulled in
# lazily by the framework's rule loader, keeping this import light.

__all__ = [
    "Finding",
    "LintReport",
    "LintRule",
    "add_lint_arguments",
    "all_rules",
    "format_text",
    "get_rule",
    "load_baseline",
    "main",
    "register_rule",
    "run_from_args",
    "run_lint",
    "save_baseline",
]
