"""The built-in reprolint rules, RL001..RL005.

Each rule protects one of the repo's standing correctness contracts
(see ``docs/static-analysis.md``):

* **RL001 / RL002** -- the byte-identity parity contract: the
  incremental solver must equal ``REPRO_SOLVER=scratch`` and served
  envelopes must equal ``Engine.run_batch``, byte for byte.  Any
  hash-ordered iteration or wall-clock/random input on a
  canonical-result path can silently break that.
* **RL003 / RL004** -- the concurrency contract: ``ResultCache`` (and
  anything else declaring ``_lock``) is shared by concurrent service
  requests, and ``AsyncEngine``/``AllocationServer`` coroutines must
  never block the event loop.
* **RL005** -- registry/envelope hygiene: allocator registrations are
  the extension surface; collisions and wrongly-typed strategies fail
  far from their cause at runtime.

Rules are syntactic with a little per-scope inference -- no imports of
the checked code, no type checker.  That trades a few misses for zero
runtime dependence; intentional sites get reasoned inline
suppressions (``# reprolint: disable=RLxxx(reason)``).
"""

from __future__ import annotations

import ast
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..passaudit.callgraph import CallGraph, ClassInfo, module_name
from ..passaudit.ordertaint import OrderTaint, TaintConfig
from .framework import Finding, LintRule, ModuleSource, register_rule

__all__ = [
    "AsyncBlockingRule",
    "LockDisciplineRule",
    "NondeterministicInputRule",
    "RegistryHygieneRule",
    "SetIterationRule",
]

# Subpackages whose outputs feed canonical (byte-compared) results.
CANONICAL_SCOPE = ("core", "ir", "baselines", "io")


def _qualname(node: ast.AST) -> Optional[str]:
    """Dotted name of a Name/Attribute chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _qualname(node.value)
        if base is not None:
            return f"{base}.{node.attr}"
    return None


def _walk_scope(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function/class
    definitions (they are separate scopes, checked on their own)."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(child))


def _function_scopes(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, Optional[ast.ClassDef]]]:
    """Every function/async-function in ``tree`` with its owning class
    (``None`` for free functions), however deeply nested."""

    def visit(node: ast.AST, owner: Optional[ast.ClassDef]) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from visit(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, owner
                yield from visit(child, None)
            else:
                yield from visit(child, owner)

    return visit(tree, None)


# ======================================================================
# RL001 -- determinism: unordered iteration
# ======================================================================
@register_rule
class SetIterationRule(LintRule):
    """RL001 determinism: no order-sensitive consumption of unordered
    containers on canonical-result paths.

    ``set``/``frozenset`` iteration order is a function of object
    hashes (and, for strings, of ``PYTHONHASHSEED``), and directory
    scans (``Path.glob``/``iterdir``, ``os.listdir``/``scandir``)
    follow filesystem order.  Inside ``core/``, ``ir/``,
    ``baselines/`` and ``io/`` -- the modules whose outputs are
    byte-compared by the parity sweep -- any iteration order that
    reaches a result must come from ``sorted(...)`` or an
    insertion-ordered container (``dict`` is exempt for exactly that
    reason).

    Flagged sinks over a set-typed or scan-ordered expression:
    ``for``/``async for`` and comprehension iteration, ``list()`` /
    ``tuple()`` / ``iter()`` / ``enumerate()`` / ``map()`` /
    ``filter()`` / ``zip()`` / ``reversed()`` conversion,
    ``str.join``, ``*``-unpacking, and ``set.pop()`` (removes an
    *arbitrary* element).  Order-insensitive consumers (``len``,
    ``sum``, ``min``, ``max``, ``any``, ``all``, ``sorted``, ``set``,
    ``frozenset``, membership tests) are fine.

    The inference is per-scope and syntactic: literals, ``set()`` /
    ``frozenset()`` calls, set operators between known sets, set
    methods returning sets, plain assignments of those, and
    ``self.X`` attributes that are *only ever* assigned set-valued
    expressions in their class.

    It is also **interprocedural** through the bounded call graph
    (:mod:`repro.devtools.passaudit`): a call expression is set-like
    when the resolved helper *returns* unordered content -- either
    unconditionally (``return {a for a in ...}``) or because a
    set-like argument at this call site binds to a parameter whose
    order taints the return value (``return list(pool)``,
    ``return [x for x in pool]``).  ``sorted(...)`` inside the helper
    breaks the taint, exactly as it does locally, and the helper
    itself is never flagged for what its callers pass it.  A genuinely
    order-irrelevant iteration (e.g. feeding a commutative reduction
    the rule cannot see through) takes
    ``# reprolint: disable=RL001(reason)``.
    """

    code = "RL001"
    name = "unordered-iteration"
    contract = "parity: canonical results never depend on hash/fs order"
    scope = CANONICAL_SCOPE

    _FACTORIES = {"set", "frozenset"}
    _SCAN_CALLS = {"os.listdir", "os.scandir"}
    _SCAN_METHODS = {"glob", "rglob", "iterdir"}
    _SET_METHODS = {
        "union", "intersection", "difference", "symmetric_difference", "copy",
    }
    _SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    _ITER_SINKS = {
        "list", "tuple", "iter", "enumerate", "map", "filter", "zip",
        "reversed",
    }
    _ORDER_SAFE = {
        "sorted", "len", "sum", "min", "max", "any", "all", "set",
        "frozenset",
    }

    def check_project(
        self, modules: Sequence[ModuleSource]
    ) -> Iterable[Finding]:
        # All the work happens here (not per-module) because the
        # order-taint summaries need every in-scope module at once.
        findings: List[Finding] = []
        per_module_attrs = {
            id(module): self._class_set_attrs(module.tree)
            for module in modules
        }

        def class_set_attrs(cls: ClassInfo) -> Set[str]:
            attrs = per_module_attrs.get(id(cls.module), {})
            return attrs.get(cls.node, set())

        taint = OrderTaint(
            CallGraph(list(modules)), self._taint_config(), class_set_attrs,
        )
        for module in modules:
            class_attrs = per_module_attrs[id(module)]
            self._check_scope(module, module.tree, {}, None, class_attrs,
                              findings, taint, None)
            for function, owner in _function_scopes(module.tree):
                attrs = class_attrs.get(owner, set()) if owner else set()
                self._check_scope(module, function, {}, attrs, class_attrs,
                                  findings, taint, owner)
        return findings

    @classmethod
    def _taint_config(cls) -> TaintConfig:
        """Hand the rule's set-likeness vocabulary to the taint layer
        so the two analyses can never drift apart."""
        return TaintConfig(
            factories=frozenset(cls._FACTORIES),
            scan_calls=frozenset(cls._SCAN_CALLS),
            scan_methods=frozenset(cls._SCAN_METHODS),
            set_methods=frozenset(cls._SET_METHODS),
            set_ops=tuple(cls._SET_OPS),
            iter_sinks=frozenset(cls._ITER_SINKS),
            order_safe=frozenset(cls._ORDER_SAFE),
        )

    # -- set-typed inference -------------------------------------------
    def _class_set_attrs(
        self, tree: ast.Module
    ) -> Dict[ast.ClassDef, Set[str]]:
        """Per class: ``self.X`` attrs only ever assigned set values."""
        result: Dict[ast.ClassDef, Set[str]] = {}
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            always: Dict[str, bool] = {}
            for sub in ast.walk(node):
                if not isinstance(sub, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    sub.targets if isinstance(sub, ast.Assign)
                    else [sub.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        is_set = sub.value is not None and self._is_setlike(
                            sub.value, {}, set()
                        )
                        prior = always.get(target.attr)
                        always[target.attr] = (
                            is_set if prior is None else (prior and is_set)
                        )
            result[node] = {attr for attr, ok in always.items() if ok}
        return result

    def _is_setlike(
        self,
        node: ast.AST,
        env: Dict[str, bool],
        self_attrs: Set[str],
        call_taint: Optional[Callable[[ast.Call], bool]] = None,
    ) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return env.get(node.id, False)
        if isinstance(node, ast.Attribute):
            return (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self_attrs
            )
        if isinstance(node, ast.Call):
            qual = _qualname(node.func)
            if qual in self._FACTORIES or qual in self._SCAN_CALLS:
                return True
            if isinstance(node.func, ast.Attribute):
                if node.func.attr in self._SCAN_METHODS:
                    return True
                if node.func.attr in self._SET_METHODS:
                    return self._is_setlike(node.func.value, env, self_attrs,
                                            call_taint)
            if call_taint is not None and call_taint(node):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, self._SET_OPS):
            return (
                self._is_setlike(node.left, env, self_attrs, call_taint)
                or self._is_setlike(node.right, env, self_attrs, call_taint)
            )
        if isinstance(node, ast.IfExp):
            return (
                self._is_setlike(node.body, env, self_attrs, call_taint)
                or self._is_setlike(node.orelse, env, self_attrs, call_taint)
            )
        return False

    # -- the per-scope checker -----------------------------------------
    def _check_scope(
        self,
        module: ModuleSource,
        scope: ast.AST,
        env: Dict[str, bool],
        self_attrs: Optional[Set[str]],
        class_attrs: Dict[ast.ClassDef, Set[str]],
        findings: List[Finding],
        taint: Optional[OrderTaint] = None,
        owner: Optional[ast.ClassDef] = None,
    ) -> None:
        attrs = self_attrs or set()
        modname = module_name(module)
        # Comprehensions handed *directly* to an order-insensitive
        # consumer (``sorted(n for n in pending if ...)``) are exempt:
        # the consumer erases the iteration order.  Outer calls are
        # processed before their argument comprehensions (source
        # order), so the exemption is in place in time.
        exempt: Set[int] = set()

        def call_taint(call: ast.Call) -> bool:
            if taint is None:
                return False
            return taint.call_dangerous(modname, owner, call, setlike)

        def setlike(node: ast.AST) -> bool:
            return self._is_setlike(node, env, attrs, call_taint)

        def bind_target(target: ast.AST, value_setlike: bool) -> None:
            if isinstance(target, ast.Name):
                env[target.id] = value_setlike
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    bind_target(element, False)

        def flag(node: ast.AST, what: str) -> None:
            findings.append(module.finding(
                self.code, node,
                f"{what} -- hash/filesystem order reaches canonical "
                f"results; sort first or use an ordered container",
            ))

        def handle(node: ast.AST) -> None:
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if setlike(node.iter):
                    flag(node, "iteration over an unordered container")
                bind_target(node.target, False)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp, ast.SetComp)):
                if id(node) in exempt:
                    return
                for generator in node.generators:
                    if setlike(generator.iter):
                        flag(generator.iter,
                             "comprehension over an unordered container")
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id in self._ORDER_SAFE:
                    for arg in node.args:
                        if isinstance(arg, (ast.ListComp, ast.GeneratorExp,
                                            ast.SetComp, ast.DictComp)):
                            exempt.add(id(arg))
                if (
                    isinstance(func, ast.Name)
                    and func.id in self._ITER_SINKS
                    and any(setlike(arg) for arg in node.args)
                ):
                    flag(node, f"{func.id}() materialises an unordered "
                               f"container in arbitrary order")
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "join"
                    and any(setlike(arg) for arg in node.args)
                ):
                    flag(node, "join() over an unordered container")
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "pop"
                    and not node.args
                    and setlike(func.value)
                ):
                    flag(node, "set.pop() removes an arbitrary element")
            elif isinstance(node, ast.Starred) and setlike(node.value):
                flag(node, "*-unpacking an unordered container")
            elif isinstance(node, ast.Assign):
                value_setlike = setlike(node.value)
                for target in node.targets:
                    bind_target(target, value_setlike)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                bind_target(node.target, setlike(node.value))
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name):
                    keeps = isinstance(node.op, self._SET_OPS)
                    env[node.target.id] = (
                        env.get(node.target.id, False) and keeps
                    ) or (keeps and setlike(node.value))

        # Statements in source order so assignments precede uses; the
        # walker stays out of nested function/class scopes.
        for node in sorted(
            _walk_scope(scope),
            key=lambda n: (getattr(n, "lineno", 0),
                           getattr(n, "col_offset", 0)),
        ):
            handle(node)


# ======================================================================
# RL002 -- determinism: nondeterministic inputs
# ======================================================================
@register_rule
class NondeterministicInputRule(LintRule):
    """RL002 nondeterministic inputs: no wall clock, RNG or process
    identity on canonical-result paths.

    Two runs of the same ``Problem`` must produce byte-identical
    canonical envelopes (the parity sweep diffs them), so inside
    ``core/``, ``ir/``, ``baselines/`` and ``io/`` nothing may read
    ``time.*`` clocks, ``datetime.now``/``utcnow``, ``random.*`` /
    ``numpy.random.*`` without an explicit seed, ``os.urandom`` /
    ``uuid`` / ``secrets``, or ``id()`` (CPython addresses differ per
    process -- an ``id()``-keyed dict iterates differently run to
    run).

    Explicitly seeded constructions are allowed as written:
    ``random.Random(seed)``, ``random.seed(seed)`` and
    ``numpy.random.default_rng(seed)`` with at least one argument.
    Anything intentional (e.g. a timing field that is documented as
    non-canonical) takes ``# reprolint: disable=RL002(reason)``.
    Timing/telemetry belongs in the engine envelope layer, which is
    deliberately outside this rule's scope.
    """

    code = "RL002"
    name = "nondeterministic-input"
    contract = "parity: same problem in, byte-identical canonical bytes out"
    scope = CANONICAL_SCOPE

    _BANNED = {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "datetime.now", "datetime.utcnow", "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "os.urandom", "os.getrandom",
        "uuid.uuid1", "uuid.uuid3", "uuid.uuid4", "uuid.uuid5",
    }
    _BANNED_PREFIXES = ("random.", "secrets.", "np.random.", "numpy.random.")
    _SEEDED_OK = {
        "random.Random", "random.seed",
        "np.random.default_rng", "numpy.random.default_rng",
        "np.random.RandomState", "numpy.random.RandomState",
    }

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = _qualname(node.func)
            if qual is None:
                continue
            if qual == "id":
                findings.append(module.finding(
                    self.code, node,
                    "id() is a per-process address -- never stable across "
                    "runs; key on a content fingerprint instead",
                ))
                continue
            if qual in self._SEEDED_OK and node.args:
                continue  # explicitly seeded: deterministic as written
            if qual in self._BANNED or qual.startswith(self._BANNED_PREFIXES):
                findings.append(module.finding(
                    self.code, node,
                    f"{qual}() is nondeterministic input on a "
                    f"canonical-result path; thread a seed/timestamp in "
                    f"from the caller",
                ))
        return findings


# ======================================================================
# RL003 -- lock discipline
# ======================================================================
@register_rule
class LockDisciplineRule(LintRule):
    """RL003 lock discipline: guarded state is only touched under
    ``self._lock``.

    Applies to every class that declares a ``self._lock`` (or
    class-level ``_lock``) attribute -- the repo convention for
    "instances are shared across threads" (``ResultCache`` is the
    archetype; the service tier hits one instance from many
    requests).  *Guarded* attributes are those the class mutates
    outside ``__init__``; attributes assigned only in ``__init__``
    are construction-time configuration and stay free.

    Every public method (no leading underscore; underscore-prefixed
    helpers are by convention called with the lock already held) that
    reads or writes a guarded attribute must do so inside a
    ``with self._lock:`` block.  Accesses outside one are findings.
    A deliberately lock-free fast path takes
    ``# reprolint: disable=RL003(reason)`` stating the safety
    argument (e.g. "read of a monotonic counter, staleness is fine").
    """

    code = "RL003"
    name = "lock-discipline"
    contract = "concurrency: shared mutable state only under self._lock"
    scope = ()

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                self._check_class(module, node, findings)
        return findings

    def _check_class(
        self, module: ModuleSource, classdef: ast.ClassDef,
        findings: List[Finding],
    ) -> None:
        if not self._declares_lock(classdef):
            return
        guarded = self._guarded_attrs(classdef)
        if not guarded:
            return
        for item in classdef.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name.startswith("_"):
                continue  # helpers run with the lock already held
            if any(
                isinstance(d, ast.Name) and d.id in ("staticmethod",
                                                     "classmethod")
                for d in item.decorator_list
            ):
                continue
            covered = self._covered_nodes(item)
            reported: Set[str] = set()
            for sub in ast.walk(item):
                if (
                    isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                    and sub.attr in guarded
                    and id(sub) not in covered
                    and sub.attr not in reported
                ):
                    reported.add(sub.attr)
                    findings.append(module.finding(
                        self.code, sub,
                        f"{classdef.name}.{item.name}() touches guarded "
                        f"attribute self.{sub.attr} outside 'with "
                        f"self._lock' ({classdef.name} declares _lock)",
                    ))

    @staticmethod
    def _declares_lock(classdef: ast.ClassDef) -> bool:
        for node in ast.walk(classdef):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr == "_lock"
                    ):
                        return True
                    if isinstance(target, ast.Name) and target.id == "_lock":
                        return True
        return False

    @staticmethod
    def _guarded_attrs(classdef: ast.ClassDef) -> Set[str]:
        """Attributes mutated outside ``__init__``/``__new__``."""
        guarded: Set[str] = set()
        for item in classdef.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in ("__init__", "__new__"):
                continue
            for node in ast.walk(item):
                target = None
                if isinstance(node, (ast.Assign,)):
                    for t in node.targets:
                        if isinstance(t, ast.Attribute):
                            target = t
                            _collect_self_attr(target, guarded)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    if isinstance(node.target, ast.Attribute):
                        _collect_self_attr(node.target, guarded)
                elif isinstance(node, ast.Delete):
                    for t in node.targets:
                        if isinstance(t, ast.Attribute):
                            _collect_self_attr(t, guarded)
        guarded.discard("_lock")
        return guarded

    @staticmethod
    def _covered_nodes(function: ast.AST) -> Set[int]:
        """ids of AST nodes lexically inside a ``with self._lock``."""
        covered: Set[int] = set()
        for node in ast.walk(function):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            holds_lock = any(
                isinstance(item.context_expr, ast.Attribute)
                and item.context_expr.attr == "_lock"
                and isinstance(item.context_expr.value, ast.Name)
                and item.context_expr.value.id == "self"
                for item in node.items
            )
            if not holds_lock:
                continue
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    covered.add(id(sub))
        return covered


def _collect_self_attr(attribute: ast.Attribute, into: Set[str]) -> None:
    if (
        isinstance(attribute.value, ast.Name)
        and attribute.value.id == "self"
    ):
        into.add(attribute.attr)


# ======================================================================
# RL004 -- async hygiene
# ======================================================================
@register_rule
class AsyncBlockingRule(LintRule):
    """RL004 async hygiene: coroutine bodies in ``service/`` never
    block the event loop.

    The service promises non-blocking operation (``AsyncEngine``
    offloads every solve to a worker thread; ``/stats`` offloads the
    manifest rescan), so a synchronous call inside an ``async def`` in
    ``repro/service/`` stalls *every* connection, not one request.

    Flagged when called (not awaited, not inside a nested ``def`` --
    nested sync functions are executor targets by construction):
    ``time.sleep``, ``open()``/``input()``, ``Path.read_text`` /
    ``write_text`` / ``read_bytes`` / ``write_bytes``,
    ``subprocess.run/call/check_call/check_output/Popen``,
    ``os.system``/``os.popen``, ``urllib.request.urlopen``,
    ``socket.create_connection``, and synchronous engine entry points
    (``<...>engine.run`` / ``run_batch`` / ``run_many``) -- route
    those through ``AsyncEngine`` or ``loop.run_in_executor``.  A call
    that is provably bounded takes
    ``# reprolint: disable=RL004(reason)``.
    """

    code = "RL004"
    name = "blocking-in-async"
    contract = "concurrency: the service event loop never blocks"
    scope = ("service",)

    _BLOCKING_QUAL = {
        "time.sleep", "os.system", "os.popen",
        "subprocess.run", "subprocess.call", "subprocess.check_call",
        "subprocess.check_output", "subprocess.Popen",
        "urllib.request.urlopen", "socket.create_connection",
    }
    _BLOCKING_NAMES = {"open", "input"}
    _BLOCKING_METHODS = {
        "read_text", "write_text", "read_bytes", "write_bytes",
    }
    _ENGINE_METHODS = {"run", "run_batch", "run_many"}

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        for function, _owner in _function_scopes(module.tree):
            if not isinstance(function, ast.AsyncFunctionDef):
                continue
            awaited = {
                id(node.value)
                for node in _walk_scope(function)
                if isinstance(node, ast.Await)
            }
            for node in _walk_scope(function):
                if isinstance(node, ast.Call) and id(node) not in awaited:
                    self._check_call(module, function, node, findings)
        return findings

    def _check_call(
        self, module: ModuleSource, function: ast.AsyncFunctionDef,
        node: ast.Call, findings: List[Finding],
    ) -> None:
        qual = _qualname(node.func)

        def flag(why: str) -> None:
            findings.append(module.finding(
                self.code, node,
                f"{why} inside 'async def {function.name}' blocks the "
                f"event loop; await it via AsyncEngine / "
                f"loop.run_in_executor",
            ))

        if qual in self._BLOCKING_QUAL:
            flag(f"blocking call {qual}()")
        elif isinstance(node.func, ast.Name) and (
            node.func.id in self._BLOCKING_NAMES
        ):
            flag(f"synchronous {node.func.id}()")
        elif isinstance(node.func, ast.Attribute):
            if node.func.attr in self._BLOCKING_METHODS:
                flag(f"synchronous file I/O .{node.func.attr}()")
            elif node.func.attr in self._ENGINE_METHODS:
                receiver = _qualname(node.func.value) or ""
                if receiver.split(".")[-1].lower().endswith("engine"):
                    flag(
                        f"synchronous engine call "
                        f"{receiver}.{node.func.attr}()"
                    )


# ======================================================================
# RL005 -- registry / envelope hygiene
# ======================================================================
@register_rule
class RegistryHygieneRule(LintRule):
    """RL005 registry hygiene: allocator registrations stay auditable
    and envelope-shaped.

    ``@register_allocator(name)`` is the extension surface every
    consumer (CLI ``--method``, experiments, the service) discovers
    strategies through, so registration sites must be statically
    auditable:

    * the name must be a **string literal** (a computed name defeats
      collision auditing and spawn-safe re-registration);
    * one name, one strategy: duplicate literal names across the
      scanned tree are flagged at every site after the first
      (at runtime the second registration raises -- but only on the
      import order that happens to load both);
    * the strategy must actually produce a result the engine can wrap
      into an ``AllocationResult`` envelope: a function body with no
      ``return <value>`` is flagged, and an explicit return annotation
      must mention ``Datapath``, ``Tuple``/``tuple`` (the
      ``(Datapath, extras)`` convention) or ``AllocationResult``.
    """

    code = "RL005"
    name = "registry-hygiene"
    contract = "registry: one literal name per strategy, envelope-shaped"
    scope = ()

    _DECORATOR = "register_allocator"
    _RETURN_OK = ("Datapath", "AllocationResult", "Tuple", "tuple")

    def check_project(
        self, modules: Sequence[ModuleSource]
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        seen: Dict[str, Tuple[str, int]] = {}  # name -> first site
        for module in modules:
            for node in ast.walk(module.tree):
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                for decorator in node.decorator_list:
                    call = self._registration(decorator)
                    if call is None:
                        continue
                    self._check_site(module, node, call, seen, findings)
        return findings

    def _registration(self, decorator: ast.AST) -> Optional[ast.Call]:
        if isinstance(decorator, ast.Call):
            qual = _qualname(decorator.func) or ""
            if qual.split(".")[-1] == self._DECORATOR:
                return decorator
        return None

    def _check_site(
        self,
        module: ModuleSource,
        node: ast.AST,
        call: ast.Call,
        seen: Dict[str, Tuple[str, int]],
        findings: List[Finding],
    ) -> None:
        name_node = call.args[0] if call.args else None
        if not (
            isinstance(name_node, ast.Constant)
            and isinstance(name_node.value, str)
        ):
            findings.append(module.finding(
                self.code, call,
                "register_allocator() name must be a string literal so "
                "collisions are statically auditable",
            ))
        else:
            name = name_node.value
            first = seen.get(name)
            if first is not None:
                findings.append(module.finding(
                    self.code, call,
                    f"allocator name {name!r} already registered at "
                    f"{first[0]}:{first[1]}",
                ))
            else:
                seen[name] = (module.display, call.lineno)

        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.returns is not None:
                annotation = ast.dump(node.returns)
                if not any(ok in annotation for ok in self._RETURN_OK):
                    findings.append(module.finding(
                        self.code, node.returns,
                        f"allocator {node.name}() return annotation must "
                        f"be Datapath, (Datapath, extras) or "
                        f"AllocationResult",
                    ))
            has_value_return = any(
                isinstance(sub, ast.Return) and sub.value is not None
                for sub in _walk_scope(node)
            )
            if not has_value_return:
                findings.append(module.finding(
                    self.code, node,
                    f"allocator {node.name}() never returns a value -- "
                    f"the engine cannot build an AllocationResult "
                    f"envelope from None",
                ))
