"""Command-line front-end for reprolint (``repro lint``).

Also invoked by ``tools/run_lint.py`` (the CI entry) and importable as
``python -m repro.devtools.lint``.  Argument handling lives here so
:mod:`repro.cli` only registers a subparser and delegates.

Exit codes: ``0`` no new findings, ``1`` new findings, ``2`` usage or
input error (bad path, unknown rule, malformed baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from ..passaudit.effects import analyze_project, effect_map
from ..passaudit.rules import EFFECT_SCOPE
from .framework import (
    BASELINE_KIND,
    LintReport,
    all_rules,
    collect_modules,
    format_text,
    get_rule,
    load_baseline,
    run_lint,
    save_baseline,
)

__all__ = ["add_lint_arguments", "main", "run_from_args"]

DEFAULT_BASELINE = Path("tools") / "reprolint-baseline.json"
DEFAULT_EFFECTS = Path("tools") / "pass-effects.json"
DEFAULT_PATHS = [Path("src") / "repro"]


def _repo_root() -> Path:
    """Root that the repo-relative defaults resolve against.

    ``repro lint`` defaults (``src/repro``, the checked baseline) and
    finding paths are repo-root relative; anchoring them at the cwd
    would silently skip the baseline when invoked from a subdirectory
    and scatter ``tools/`` directories on ``--write-baseline``.  Walk
    up from the cwd for a ``pyproject.toml`` sitting beside
    ``src/repro`` (any invocation from inside the checkout), fall back
    to the checkout holding this file, and finally to the cwd itself
    (installed package outside any checkout).
    """
    for base in (Path.cwd(), *Path.cwd().parents):
        if (
            (base / "pyproject.toml").is_file()
            and (base / "src" / "repro").is_dir()
        ):
            return base
    here = Path(__file__).resolve()
    # <root>/src/repro/devtools/lint/cli.py in a source checkout.
    if len(here.parents) > 4 and here.parents[3].name == "src":
        root = here.parents[4]
        if (root / "pyproject.toml").is_file():
            return root
    return Path.cwd()


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the ``lint`` flags on ``parser`` (shared between the
    ``repro lint`` subcommand and the standalone entry point)."""
    parser.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: src/repro under the "
             "repo root, wherever the command is invoked from)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help="report format (default text; json emits the full "
             "reprolint-report payload; github emits ::error workflow "
             "annotations for new findings)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all; "
             "RL000 suppression hygiene always runs)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list every rule with the contract it protects and exit",
    )
    parser.add_argument(
        "--explain", default=None, metavar="CODE",
        help="print one rule's full documentation and exit",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline of grandfathered findings (default "
             f"{DEFAULT_BASELINE} under the repo root, when it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline: report every finding as new",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0 "
             "(grandfathers them; new findings after that fail)",
    )
    parser.add_argument(
        "--show-baselined", action="store_true",
        help="include baselined findings in text output",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include suppressed findings (and their reasons) in text output",
    )
    parser.add_argument(
        "--fail-stale", action="store_true",
        help="exit 1 when the baseline holds entries no finding matches "
             "any more (CI keeps the baseline minimal)",
    )
    parser.add_argument(
        "--prune-baseline", action="store_true",
        help="rewrite the baseline file without its stale entries and "
             "exit 0",
    )
    parser.add_argument(
        "--write-effects", action="store_true",
        help="regenerate the committed pass-effect map from the current "
             "sources and exit 0",
    )
    parser.add_argument(
        "--check-effects", action="store_true",
        help="exit 1 when the committed pass-effect map no longer "
             "matches what the analysis infers from the sources",
    )
    parser.add_argument(
        "--effects-file", default=None, metavar="FILE",
        help=f"pass-effect map location (default {DEFAULT_EFFECTS} "
             f"under the repo root)",
    )


def _cmd_list_rules() -> int:
    rows = []
    for rule in all_rules():
        scope = "/".join(rule.scope) if rule.scope else "all modules"
        rows.append((rule.code, rule.name, scope, rule.contract))
    width_name = max(len(r[1]) for r in rows)
    width_scope = max(len(r[2]) for r in rows)
    for code, name, scope, contract in rows:
        print(f"{code}  {name:<{width_name}}  {scope:<{width_scope}}  "
              f"{contract}")
    print("\nrepro lint --explain CODE prints a rule's full documentation.")
    return 0


def _cmd_explain(code: str) -> int:
    rule = get_rule(code.strip().upper())
    if rule is None:
        known = ", ".join(r.code for r in all_rules())
        print(f"unknown rule {code!r}; known: {known}", file=sys.stderr)
        return 2
    doc = (type(rule).__doc__ or "").strip()
    print(f"{rule.code} ({rule.name})")
    print(f"contract: {rule.contract}")
    scope = "/".join(rule.scope) if rule.scope else "all scanned modules"
    print(f"scope: {scope}\n")
    print(doc)
    return 0


def _gh_escape_data(value: str) -> str:
    """Escape a workflow-command message (GitHub Actions syntax)."""
    return (
        value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def _gh_escape_prop(value: str) -> str:
    """Escape a workflow-command property value."""
    return (
        _gh_escape_data(value).replace(":", "%3A").replace(",", "%2C")
    )


def format_github(report: LintReport) -> str:
    """GitHub Actions ``::error`` annotations for the new findings.

    One workflow command per new finding -- the Actions runner turns
    them into inline PR annotations -- followed by the usual summary
    line (plain text is passed through to the job log untouched).
    """
    out: List[str] = []
    for finding in report.new:
        out.append(
            f"::error file={_gh_escape_prop(finding.path)},"
            f"line={finding.line},col={finding.column + 1},"
            f"title={_gh_escape_prop('reprolint ' + finding.rule)}"
            f"::{_gh_escape_data(finding.message)}"
        )
    out.append(
        f"reprolint: {report.files} files, {len(report.rules)} rules -- "
        f"{len(report.new)} new, {len(report.baselined)} baselined, "
        f"{len(report.suppressed)} suppressed"
    )
    return "\n".join(out)


def _effects_payload(paths: List[Path], root: Path) -> "dict[str, object]":
    """The pass-effect map inferred from the sources under ``paths``."""
    modules = [
        module
        for module in collect_modules(paths, display_root=root)
        if module.module_key and module.module_key[0] in EFFECT_SCOPE
    ]
    return effect_map(analyze_project(modules))


def _cmd_write_effects(paths: List[Path], root: Path,
                       effects_path: Path) -> int:
    try:
        payload = _effects_payload(paths, root)
    except (OSError, SyntaxError) as exc:
        print(f"lint: cannot analyze sources: {exc}", file=sys.stderr)
        return 2
    effects_path.parent.mkdir(parents=True, exist_ok=True)
    effects_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    passes = payload["passes"]
    assert isinstance(passes, dict)
    print(f"lint: wrote effect contracts for {len(passes)} passes to "
          f"{effects_path}")
    return 0


def _cmd_check_effects(paths: List[Path], root: Path,
                       effects_path: Path) -> int:
    if not effects_path.exists():
        print(f"lint: no effect map at {effects_path} (generate with "
              f"--write-effects)", file=sys.stderr)
        return 2
    try:
        committed = json.loads(effects_path.read_text())
    except (OSError, ValueError) as exc:
        print(f"lint: bad effect map {effects_path}: {exc}",
              file=sys.stderr)
        return 2
    try:
        current = _effects_payload(paths, root)
    except (OSError, SyntaxError) as exc:
        print(f"lint: cannot analyze sources: {exc}", file=sys.stderr)
        return 2
    if committed == current:
        passes = current["passes"]
        assert isinstance(passes, dict)
        print(f"lint: effect map is current ({len(passes)} passes)")
        return 0
    old_passes = committed.get("passes") if isinstance(committed, dict) else {}
    new_passes = current["passes"]
    assert isinstance(new_passes, dict)
    if not isinstance(old_passes, dict):
        old_passes = {}
    drifted = sorted(
        key
        for key in set(old_passes) | set(new_passes)
        if old_passes.get(key) != new_passes.get(key)
    )
    what = ", ".join(drifted) if drifted else "protocol metadata"
    print(f"lint: {effects_path} is stale ({what} drifted) -- "
          f"regenerate with --write-effects and commit the diff",
          file=sys.stderr)
    return 1


def _cmd_prune_baseline(
    baseline_path: Path,
    baseline: "dict[str, dict[str, object]]",
    report: LintReport,
) -> int:
    present = {f.fingerprint for f in report.findings}
    kept = {fp: entry for fp, entry in baseline.items() if fp in present}
    dropped = len(baseline) - len(kept)
    payload = {"kind": BASELINE_KIND, "version": 1, "entries": kept}
    baseline_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"lint: pruned {dropped} stale baseline entr"
          f"{'y' if dropped == 1 else 'ies'} ({len(kept)} remain)")
    return 0


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a parsed ``lint`` invocation; returns the exit code."""
    if args.list_rules:
        return _cmd_list_rules()
    if args.explain:
        return _cmd_explain(args.explain)

    root = _repo_root()
    paths: List[Path] = (
        [Path(p) for p in args.paths]
        or [root / p for p in DEFAULT_PATHS]
    )
    rule_codes = (
        [code.strip().upper() for code in args.rules.split(",") if code.strip()]
        if args.rules
        else None
    )

    effects_path = (
        Path(args.effects_file) if args.effects_file is not None
        else root / DEFAULT_EFFECTS
    )
    if args.write_effects:
        return _cmd_write_effects(paths, root, effects_path)
    if args.check_effects:
        return _cmd_check_effects(paths, root, effects_path)

    baseline_path: Optional[Path] = None
    if not args.no_baseline:
        if args.baseline is not None:
            baseline_path = Path(args.baseline)
        elif (root / DEFAULT_BASELINE).exists() or args.write_baseline:
            baseline_path = root / DEFAULT_BASELINE

    baseline = None
    if baseline_path is not None and baseline_path.exists():
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"lint: bad baseline {baseline_path}: {exc}",
                  file=sys.stderr)
            return 2

    try:
        report: LintReport = run_lint(
            paths, rule_codes, baseline, display_root=root
        )
    except FileNotFoundError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        if baseline_path is None:
            print("lint: --write-baseline conflicts with --no-baseline",
                  file=sys.stderr)
            return 2
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        count = save_baseline(baseline_path, report.findings)
        print(f"lint: wrote {count} grandfathered findings to "
              f"{baseline_path}")
        return 0

    if args.prune_baseline:
        if baseline_path is None or baseline is None:
            print("lint: --prune-baseline needs an existing baseline file",
                  file=sys.stderr)
            return 2
        return _cmd_prune_baseline(baseline_path, baseline, report)

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    elif args.format == "github":
        print(format_github(report))
    else:
        print(format_text(
            report,
            show_baselined=args.show_baselined,
            show_suppressed=args.show_suppressed,
        ))

    exit_code = report.exit_code
    if args.fail_stale and report.stale_baseline:
        stale = report.stale_baseline
        for fingerprint in stale:
            print(f"stale baseline entry: {fingerprint}", file=sys.stderr)
        print(f"lint: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} -- drop with "
              f"'repro lint --prune-baseline'", file=sys.stderr)
        exit_code = max(exit_code, 1)
    return exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="reprolint: AST-based checker for the repo's parity "
                    "and concurrency contracts (docs/static-analysis.md)",
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
