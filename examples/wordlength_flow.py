"""Full front-end-to-datapath flow: error budget -> wordlengths -> datapath.

The paper assumes per-operation wordlengths are given "from output-error
specification by a further design automation tool such as Synoptix", and
lists the interaction of that derivation with high-level synthesis as
future work.  This script closes the loop:

1. a 6-tap FIR is described at generous precision;
2. the Synoptix-style optimiser trims signal wordlengths against an
   output noise budget;
3. DPAlloc allocates datapaths for both the original and the trimmed
   kernel under the same latency constraint;
4. the trimmed datapath is functionally verified by simulation.

(The two single solves use direct ``allocate()`` for clarity;
production front-ends should submit both through
``repro.engine.Engine.run_batch`` to get envelopes, caching and
parallelism for free -- see ``examples/engine_batch.py``.)

Run with::

    python examples/wordlength_flow.py
"""

import random

from repro import Problem, allocate, validate_datapath
from repro.analysis.reporting import format_table
from repro.gen.workloads import fir_filter_netlist
from repro.sim import simulate
from repro.wordlength import optimize_wordlengths


def allocate_for(graph, latency_constraint):
    problem = Problem(graph, latency_constraint=latency_constraint)
    datapath = allocate(problem)
    validate_datapath(problem, datapath)
    return datapath


def main() -> None:
    # Start from a generous description: every coefficient at 16 bits.
    # The front-end's job is to discover how few bits each one needs.
    netlist = fir_filter_netlist(
        taps=6, data_width=12, coeff_widths=[16] * 6
    )
    scratch = Problem(netlist.graph, latency_constraint=1_000_000)
    constraint = int(1.5 * scratch.minimum_latency())

    rows = []
    baseline = allocate_for(netlist.graph, constraint)
    rows.append(["declared widths", "-", f"{baseline.area:g}",
                 baseline.unit_count()])

    datapaths = {}
    for budget in (1e-2, 1e-4, 1e-6):
        result = optimize_wordlengths(netlist, error_budget=budget)
        dp = allocate_for(result.graph, constraint)
        datapaths[budget] = (result, dp)
        worst = max(result.predicted_noise.values())
        rows.append([
            f"budget {budget:g}", f"{worst:.2e}", f"{dp.area:g}",
            dp.unit_count(),
        ])

    print(format_table(
        ["wordlengths", "worst output noise", "area", "units"],
        rows,
        title=(
            f"6-tap FIR, lambda = {constraint}: error budget vs datapath "
            f"area (DPAlloc)"
        ),
    ))

    # Functional check of the most aggressively trimmed design.
    result, dp = datapaths[1e-2]
    rng = random.Random(42)
    values = {
        name: rng.randrange(1 << width)
        for name, width in result.netlist.free_signals().items()
    }
    sim = simulate(result.netlist, dp, values)
    print(
        f"\ntrimmed design simulated OK: {sim.cycles} cycles, "
        f"output = {sim.output_values(result.netlist)}"
    )
    trimmed = result.trimmed_bits
    print(f"bits trimmed by the front-end at budget 1e-2: {trimmed}")


if __name__ == "__main__":
    main()
