"""Quickstart: allocate a small multiple-wordlength datapath.

Builds a tiny fixed-point DFG with the signal-level builder, runs the
paper's DPAlloc heuristic under two latency constraints, and prints the
resulting schedules/bindings.  This example calls ``allocate()``
directly to keep the algorithm in view; production flows route through
the :class:`repro.engine.Engine` front door (registry dispatch, result
envelopes, batching, caching) -- see ``examples/engine_batch.py``.
Run with::

    python examples/quickstart.py
"""

from repro import DFGBuilder, Problem, allocate, validate_datapath


def main() -> None:
    # y = (x * c1) + (x * c2), with differently quantised coefficients.
    builder = DFGBuilder()
    x = builder.input("x", 12)
    c1 = builder.constant("c1", 10)
    c2 = builder.constant("c2", 5)
    p1 = builder.mul(x, c1, name="p1", out_width=16)
    p2 = builder.mul(x, c2, name="p2", out_width=16)
    builder.add(p1, p2, name="y")
    graph = builder.graph()

    scratch = Problem(graph, latency_constraint=1_000_000)
    lambda_min = scratch.minimum_latency()
    print(f"graph: {len(graph)} operations, lambda_min = {lambda_min} cycles")

    for label, constraint in (
        ("tight (lambda_min)", lambda_min),
        ("relaxed (+100%)", 2 * lambda_min),
    ):
        problem = scratch.with_latency_constraint(constraint)
        datapath = allocate(problem)
        validate_datapath(problem, datapath)  # independent checker
        print(f"\n=== {label}: lambda = {constraint} ===")
        print(datapath.summary())


if __name__ == "__main__":
    main()
