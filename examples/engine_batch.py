"""Batch allocation through the engine: pooling, caching, envelopes.

The engine (:mod:`repro.engine`) is the single front door over every
allocation strategy.  This script sweeps a small batch of random TGFF
problems through two strategies and demonstrates the three platform
features the per-script dispatch tables never had:

1. **deterministic parallelism** -- ``run_batch(..., workers=2)``
   returns envelopes byte-for-byte identical to the serial run;
2. **on-disk result caching** keyed by ``Problem.fingerprint()`` -- the
   second pass never re-solves;
3. **uniform failure reporting** -- an infeasible case is a result row,
   not a crash.

Run with::

    python examples/engine_batch.py
"""

import tempfile

from repro.analysis.reporting import format_table
from repro.engine import AllocationRequest, Engine
from repro.experiments import build_case


def main() -> None:
    requests = []
    for num_ops in (6, 9, 12):
        for sample in range(3):
            problem = build_case(num_ops, sample, relaxation=0.2).problem
            requests.append(AllocationRequest(
                problem, "dpalloc", label=f"tgff-{num_ops}-{sample}",
            ))
            requests.append(AllocationRequest(
                problem, "uniform", label=f"tgff-{num_ops}-{sample}",
            ))

    with tempfile.TemporaryDirectory() as cache_dir:
        engine = Engine(cache_dir=cache_dir)

        serial = engine.run_batch(requests)

        # Second pass: every envelope is served from the cache.
        cached = engine.run_batch(requests, workers=2)
        assert all(r.cached for r in cached)
        assert [r.canonical_json() for r in serial] == \
               [r.canonical_json() for r in cached]

        rows = []
        for result in serial:
            rows.append([
                result.label,
                result.allocator,
                f"{result.datapath.area:g}" if result.ok else "infeasible",
                result.datapath.makespan if result.ok else "-",
                f"{result.seconds * 1e3:.1f} ms",
            ])
        print(format_table(
            ["case", "method", "area", "latency", "time"],
            rows,
            title=f"engine batch: {len(requests)} runs, then a full cache hit",
        ))
        print(
            f"\nsecond pass: {sum(r.cached for r in cached)}/{len(cached)} "
            f"cache hits, envelopes identical to the serial run"
        )


if __name__ == "__main__":
    main()
