"""Walkthrough of the wordlength compatibility graph (paper Fig. 2).

Reconstructs the paper's section 2.1/2.2 example: two multiplies, one of
which is refined away from the big '20x18 mult' resource-wordlength, and
shows why the classic per-step resource constraint (Eqn. 2) wrongly
accepts a one-multiplier schedule that the paper's Eqn. 3 correctly
rejects -- the situation that motivates scheduling with incomplete
wordlength information.

Run with::

    python examples/wcg_walkthrough.py
"""

from repro.core.scheduling import Eqn2Tracker, Eqn3Tracker
from repro.core.wcg import WordlengthCompatibilityGraph
from repro.ir.ops import Operation
from repro.resources.latency import SonicLatencyModel
from repro.resources.types import ResourceType


def show_h(wcg: WordlengthCompatibilityGraph) -> None:
    for op in wcg.operations:
        edges = ", ".join(str(r) for r in wcg.compatible_resources(op.name))
        bound = wcg.upper_bound_latency(op.name)
        print(f"  H({op.name}) = {{{edges}}}   L_{op.name} = {bound}")


def main() -> None:
    latency = SonicLatencyModel()
    big = ResourceType("mul", (20, 18))   # 5 cycles
    small = ResourceType("mul", (8, 8))   # 2 cycles
    o1 = Operation("o1", "mul", (8, 8))
    o2 = Operation("o2", "mul", (20, 18))

    wcg = WordlengthCompatibilityGraph([o1, o2], [big, small], latency)
    print("initial wordlength compatibility graph:")
    show_h(wcg)
    print(f"  scheduling set S = {[str(s) for s in wcg.scheduling_set()]}")

    print("\nrefine o1 (delete its slowest H edges, as DPAlloc would):")
    deleted = wcg.refine("o1")
    print(f"  deleted edges: {[str(r) for r in deleted]}")
    show_h(wcg)
    print(f"  scheduling set S = {[str(s) for s in wcg.scheduling_set()]}")

    print(
        "\nCan the refined graph be scheduled 'using one multiplier'?  The\n"
        "ops can be serialised in time, but they now need two different\n"
        "resource-wordlengths -- two physical units:"
    )
    eqn2 = Eqn2Tracker(wcg, {"mul": 1})
    eqn2.place("o1", 0, 2)
    print(f"  Eqn. 2 admits o2 at step 10: {eqn2.admits('o2', 10, 5)}   (wrong)")

    eqn3 = Eqn3Tracker(wcg, {"mul": 1})
    eqn3.place("o1", 0, 2)
    print(f"  Eqn. 3 admits o2 at step 10: {eqn3.admits('o2', 10, 5)}   (correct)")
    print("  Eqn. 3 LHS for 'mul' after placing both would be 2 > N = 1")


if __name__ == "__main__":
    main()
