"""Solver convergence traces: record, export, summarise.

The DPAlloc solver emits a per-iteration :class:`repro.TraceEvent`
(move taken, makespan, area, scheduling-set size) when asked to trace.
This script exercises the whole trace tooling chain:

1. an engine run with ``options={"trace": True}`` -- the trace rides
   the :class:`~repro.engine.AllocationResult` envelope and is printed
   as a convergence table;
2. the CLI flow, exactly as a shell user would drive it::

       python -m repro allocate fir --relax 0.2 --trace --json fir.json
       python -m repro trace fir.json

   (both invocations run in-process below, against a temp directory).

Watching the makespan fall and the scheduling set grow move by move is
the fastest way to see the refine-and-reschedule loop of the paper's
section 2.4 actually converge.  Run with::

    python examples/trace_convergence.py
"""

import tempfile
from pathlib import Path

from repro import Problem
from repro.analysis.reporting import format_trace
from repro.cli import main as repro_cli
from repro.engine import AllocationRequest, Engine
from repro.gen.workloads import fir_filter


def main() -> None:
    # --- 1. engine API: the trace arrives on the result envelope -----
    graph = fir_filter(taps=4)
    scratch = Problem(graph, latency_constraint=1_000_000)
    problem = scratch.with_latency_constraint(scratch.minimum_latency())
    result = Engine().run(
        AllocationRequest(problem, "dpalloc", options={"trace": True})
    )
    assert result.ok and result.trace
    refines = sum(1 for e in result.trace if e.move == "refine")
    bumps = sum(1 for e in result.trace if e.move == "bump")
    print(
        f"fir @ lambda_min: {len(result.trace)} iterations "
        f"({refines} refinements, {bumps} unit bumps)\n"
    )
    print(format_trace(result.trace, title="engine run (options trace=True)"))

    # --- 2. CLI flow: allocate --trace --json, then repro trace ------
    with tempfile.TemporaryDirectory() as tmp:
        artefact = Path(tmp) / "fir.json"
        print(f"\n$ python -m repro allocate fir --relax 0.2 --trace "
              f"--json {artefact.name}")
        repro_cli([
            "allocate", "fir", "--relax", "0.2", "--trace",
            "--json", str(artefact),
        ])
        print(f"\n$ python -m repro trace {artefact.name}")
        repro_cli(["trace", str(artefact)])


if __name__ == "__main__":
    main()
