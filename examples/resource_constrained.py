"""Resource-constrained allocation with user unit budgets (section 2.2).

Besides pure area minimisation, the paper's Eqn. 3 machinery supports
hard per-kind unit budgets ``N_y``.  This script allocates an IIR biquad
under shrinking multiplier budgets and shows how the schedule stretches
while the budget is honoured -- and how an impossible budget is reported.

(Direct ``allocate()`` raises ``InfeasibleError`` on impossible
budgets; through :class:`repro.engine.Engine` the same failure comes
back as an ``AllocationResult`` row instead -- the engine path to use
when a sweep must survive infeasible cells; see
``examples/engine_batch.py``.)

Run with::

    python examples/resource_constrained.py
"""

from repro import InfeasibleError, Problem, allocate, validate_datapath
from repro.analysis.reporting import format_table
from repro.gen.workloads import iir_biquad


def main() -> None:
    graph = iir_biquad()
    scratch = Problem(graph, latency_constraint=1_000_000)
    lambda_min = scratch.minimum_latency()
    generous = 3 * lambda_min
    print(
        f"IIR biquad: {len(graph)} ops, lambda_min = {lambda_min}, "
        f"allocating with lambda = {generous}\n"
    )

    rows = []
    for budget in (4, 3, 2, 1):
        problem = Problem(
            graph,
            latency_constraint=generous,
            resource_constraints={"mul": budget},
        )
        try:
            dp = allocate(problem)
            validate_datapath(problem, dp)
            rows.append(
                [budget, dp.unit_count("mul"), dp.unit_count("add"),
                 dp.makespan, f"{dp.area:g}"]
            )
        except InfeasibleError as exc:
            rows.append([budget, "-", "-", "-", f"infeasible: {exc}"])

    print(format_table(
        ["mul budget", "mul units", "add units", "makespan", "area"],
        rows,
        title="Shrinking the multiplier budget (lambda fixed)",
    ))

    # An impossible combination: one multiplier, but a tight deadline.
    tight = Problem(
        graph, latency_constraint=lambda_min, resource_constraints={"mul": 1}
    )
    try:
        allocate(tight)
        print("\nunexpectedly feasible!")
    except InfeasibleError as exc:
        print(f"\ntight lambda with one multiplier -> {exc}")


if __name__ == "__main__":
    main()
