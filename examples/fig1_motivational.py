"""The paper's Fig. 1 trade-off on the motivational example graph.

Fig. 1 of the paper shows a multiple-wordlength sequencing graph whose
area-optimal implementation executes *small* multiplies on a *larger,
slower* multiplier -- impossible for methods that fix each operation's
latency up front.  This script sweeps the latency constraint and shows
the heuristic trading latency slack for area, including the exact unit
mix chosen at each point.

(Direct ``allocate()`` calls keep the single-solve algorithm in view;
sweeps like this run in production through ``Engine.run_batch`` -- see
``examples/engine_batch.py`` and ``examples/fir_filter_design.py``.)

Run with::

    python examples/fig1_motivational.py
"""

from repro import Problem, allocate, validate_datapath
from repro.analysis.reporting import format_table
from repro.gen.workloads import motivational_example


def main() -> None:
    graph = motivational_example()
    scratch = Problem(graph, latency_constraint=1_000_000)
    lambda_min = scratch.minimum_latency()

    print("operations:")
    for op in graph.operations:
        preds = ", ".join(graph.predecessors(op.name)) or "-"
        print(f"  {op}  <- {preds}")
    print(f"lambda_min = {lambda_min} cycles\n")

    rows = []
    datapaths = {}
    for relaxation in (0.0, 0.5, 1.0, 2.0, 4.0):
        constraint = max(1, int(lambda_min * (1 + relaxation)))
        problem = scratch.with_latency_constraint(constraint)
        dp = allocate(problem)
        validate_datapath(problem, dp)
        datapaths[relaxation] = dp
        units = "; ".join(
            str(c.resource) for c in dp.cliques if c.resource.kind == "mul"
        )
        rows.append(
            [f"{int(relaxation * 100)}%", constraint, dp.makespan,
             f"{dp.area:g}", dp.unit_count(), units]
        )

    print(format_table(
        ["relax", "lambda", "achieved", "area", "units", "multipliers"],
        rows,
        title="Latency slack -> area trade-off (DPAlloc)",
    ))

    tight, loose = datapaths[0.0], datapaths[4.0]
    saved = 100 * (tight.area - loose.area) / tight.area
    print(
        f"\nWith 4x slack the 8x8 and 10x6 multiplies share the wide "
        f"multiplier:\n{loose.summary()}\n"
        f"\narea saving vs the tight design: {saved:.0f}%"
    )


if __name__ == "__main__":
    main()
