"""Designing a multiple-wordlength FIR filter datapath, all methods.

The introduction of the paper motivates multiple-wordlength synthesis
with DSP kernels whose coefficient wordlengths differ tap by tap.  This
script designs a 6-tap FIR with tapering coefficient widths using every
allocator in the library -- the DPAlloc heuristic, the optimal ILP [5],
the two-stage baseline [4], descending-wordlength clique partitioning
[14], and the uniform-wordlength (DSP-processor style) design -- across
a sweep of latency constraints.

Run with::

    python examples/fir_filter_design.py
"""

from repro import InfeasibleError, Problem, allocate, validate_datapath
from repro.analysis.reporting import format_table
from repro.baselines.clique_sort import allocate_clique_sort
from repro.baselines.fds import allocate_fds
from repro.baselines.ilp import allocate_ilp
from repro.baselines.two_stage import allocate_two_stage
from repro.baselines.uniform import allocate_uniform
from repro.gen.workloads import fir_filter


def attempt(fn, problem):
    try:
        dp = fn(problem)
        if isinstance(dp, tuple):
            dp = dp[0]
        validate_datapath(problem, dp)
        return f"{dp.area:g}"
    except InfeasibleError:
        return "infeasible"


def main() -> None:
    graph = fir_filter(taps=6, data_width=12)
    widths = [
        op.operand_widths for op in graph.operations if op.kind == "mul"
    ]
    print(f"6-tap FIR, per-tap multiply widths: {widths}")

    scratch = Problem(graph, latency_constraint=1_000_000)
    lambda_min = scratch.minimum_latency()
    print(f"lambda_min = {lambda_min} cycles\n")

    rows = []
    for relaxation in (0.0, 0.2, 0.5, 1.0, 2.0):
        constraint = max(1, int(lambda_min * (1 + relaxation)))
        problem = scratch.with_latency_constraint(constraint)
        rows.append(
            [
                f"{int(relaxation * 100)}%",
                constraint,
                attempt(allocate, problem),
                attempt(lambda p: allocate_ilp(p, time_limit=60.0), problem),
                attempt(allocate_two_stage, problem),
                attempt(allocate_fds, problem),
                attempt(allocate_clique_sort, problem),
                attempt(allocate_uniform, problem),
            ]
        )

    print(format_table(
        ["relax", "lambda", "DPAlloc", "ILP [5]", "two-stage [4]",
         "FDS", "clique-sort [14]", "uniform"],
        rows,
        title="Area by method and latency constraint (smaller is better)",
    ))
    print(
        "\nReading: the two-stage and clique-sort baselines cannot exploit "
        "slack (their\ncolumns are constant), while the heuristic tracks the "
        "ILP optimum as slack grows.\nForce-directed scheduling (FDS) shows "
        "how far classical wordlength-blind slack\nexploitation goes: it "
        "serialises within equal-latency classes and then its\ncolumn goes "
        "flat -- the rest of the gap is the paper's contribution, sharing\n"
        "across wordlengths on larger, slower units.  The uniform design is "
        "infeasible\nat tight constraints; on this kernel it catches up at "
        "high slack because the\nwidest tap dominates anyway -- see "
        "fig1_motivational.py for a kernel where\nuniformity stays expensive."
    )


if __name__ == "__main__":
    main()
