"""Designing a multiple-wordlength FIR filter datapath, all methods.

The introduction of the paper motivates multiple-wordlength synthesis
with DSP kernels whose coefficient wordlengths differ tap by tap.  This
script designs a 6-tap FIR with tapering coefficient widths using every
registered allocator -- the DPAlloc heuristic, the optimal ILP [5], the
two-stage baseline [4], force-directed scheduling, descending-wordlength
clique partitioning [14], and the uniform-wordlength (DSP-processor
style) design -- across a sweep of latency constraints.  The whole
methods x constraints grid is a single ``Engine.run_batch`` call through
the allocator registry; infeasible cells come back as result envelopes,
not exceptions.

Run with::

    python examples/fir_filter_design.py
"""

from repro import Problem
from repro.analysis.reporting import format_table
from repro.engine import AllocationRequest, Engine, allocator_names
from repro.gen.workloads import fir_filter

COLUMNS = {
    "dpalloc": "DPAlloc",
    "ilp": "ILP [5]",
    "two-stage": "two-stage [4]",
    "fds": "FDS",
    "clique-sort": "clique-sort [14]",
    "uniform": "uniform",
}


def main() -> None:
    graph = fir_filter(taps=6, data_width=12)
    widths = [
        op.operand_widths for op in graph.operations if op.kind == "mul"
    ]
    print(f"6-tap FIR, per-tap multiply widths: {widths}")

    scratch = Problem(graph, latency_constraint=1_000_000)
    lambda_min = scratch.minimum_latency()
    print(f"lambda_min = {lambda_min} cycles\n")

    methods = [name for name in COLUMNS if name in allocator_names()]
    relaxations = (0.0, 0.2, 0.5, 1.0, 2.0)
    requests = []
    for relaxation in relaxations:
        constraint = max(1, int(lambda_min * (1 + relaxation)))
        problem = scratch.with_latency_constraint(constraint)
        for method in methods:
            options = {"time_limit": 60.0} if method == "ilp" else {}
            requests.append(AllocationRequest(problem, method, options=options))

    results = iter(Engine().run_batch(requests))
    rows = []
    for relaxation in relaxations:
        constraint = max(1, int(lambda_min * (1 + relaxation)))
        cells = []
        for _ in methods:
            result = next(results)
            cells.append(
                f"{result.datapath.area:g}" if result.ok else "infeasible"
            )
        rows.append([f"{int(relaxation * 100)}%", constraint, *cells])

    print(format_table(
        ["relax", "lambda", *(COLUMNS[m] for m in methods)],
        rows,
        title="Area by method and latency constraint (smaller is better)",
    ))
    print(
        "\nReading: the two-stage and clique-sort baselines cannot exploit "
        "slack (their\ncolumns are constant), while the heuristic tracks the "
        "ILP optimum as slack grows.\nForce-directed scheduling (FDS) shows "
        "how far classical wordlength-blind slack\nexploitation goes: it "
        "serialises within equal-latency classes and then its\ncolumn goes "
        "flat -- the rest of the gap is the paper's contribution, sharing\n"
        "across wordlengths on larger, slower units.  The uniform design is "
        "infeasible\nat tight constraints; on this kernel it catches up at "
        "high slack because the\nwidest tap dominates anyway -- see "
        "fig1_motivational.py for a kernel where\nuniformity stays expensive."
    )


if __name__ == "__main__":
    main()
