"""Interconnect-aware area reporting: units + multiplexers + registers.

The paper's cost model counts functional units only.  This script
allocates a 6-tap FIR at several latency constraints and charges the full
datapath -- units, operand multiplexers (sharing's hidden cost) and
registers (left-edge allocated) -- then exports the most shared design as
structural Verilog so the muxes are visible in the RTL.

(Single solves are shown via direct ``allocate()`` for clarity; batch
or cached flows should go through :class:`repro.engine.Engine` -- see
``examples/engine_batch.py``.)

Run with::

    python examples/interconnect_report.py
"""

from repro import Problem, allocate, validate_datapath
from repro.analysis.interconnect import estimate_interconnect
from repro.analysis.reporting import format_table
from repro.gen.workloads import fir_filter_netlist
from repro.rtl import generate_verilog


def main() -> None:
    netlist = fir_filter_netlist(taps=6, data_width=12)
    scratch = Problem(netlist.graph, latency_constraint=1_000_000)
    lam_min = scratch.minimum_latency()

    rows = []
    most_shared = None
    for relaxation in (0.0, 0.5, 1.0, 2.0):
        constraint = max(1, int(lam_min * (1 + relaxation)))
        problem = scratch.with_latency_constraint(constraint)
        datapath = allocate(problem)
        validate_datapath(problem, datapath)
        report = estimate_interconnect(netlist, datapath, problem.area_model)
        rows.append([
            f"{int(relaxation * 100)}%",
            datapath.unit_count(),
            f"{report.unit_area:g}",
            f"{report.mux_area:g}",
            f"{report.register_area:g} ({report.register_count} regs)",
            f"{report.total_area:g}",
        ])
        most_shared = (problem, datapath)

    print(format_table(
        ["relax", "units", "unit area", "mux area", "register area", "total"],
        rows,
        title="6-tap FIR: full datapath cost as sharing increases",
    ))
    print(
        "\nReading: unit area falls as slack enables sharing; multiplexer "
        "area rises with\nthe number of operations funnelled through each "
        "unit port.  The net total still\nfavours sharing on this kernel."
    )

    problem, datapath = most_shared
    design = generate_verilog(netlist, datapath, module_name="fir6")
    mux_arms = design.source.count("if (cnt >=")
    print(
        f"\nVerilog for the most shared design: {design.unit_count} units, "
        f"{mux_arms} mux arms,\n{len(design.source.splitlines())} lines "
        f"(see repro.rtl.generate_verilog)."
    )


if __name__ == "__main__":
    main()
