"""Setuptools shim for legacy installers.

All metadata lives in ``pyproject.toml`` (PEP 621); ``pip install -e .``
is the supported path and is exercised by the CI docs job.  This shim
only keeps ``setup.py develop``-style legacy installs working in
environments that still need them.
"""

from setuptools import setup

setup()
