"""Tests for the golden evaluator and the cycle-accurate simulator."""

import dataclasses
import random

import pytest

from repro import allocate
from repro.baselines.ilp import allocate_ilp
from repro.baselines.two_stage import allocate_two_stage
from repro.core.binding import Binding, BoundClique
from repro.gen.workloads import (
    complex_multiply_netlist,
    conv3x3_netlist,
    dct4_netlist,
    fir_filter_netlist,
    iir_biquad_netlist,
    lattice_filter_netlist,
    motivational_example_netlist,
)
from repro.ir.builder import DFGBuilder
from repro.sim import (
    Netlist,
    SimulationError,
    evaluate,
    simulate,
    truncate,
)
from tests.conftest import make_problem

ALL_NETLISTS = [
    fir_filter_netlist,
    iir_biquad_netlist,
    dct4_netlist,
    conv3x3_netlist,
    complex_multiply_netlist,
    lattice_filter_netlist,
    motivational_example_netlist,
]


def random_inputs(netlist, seed=0):
    rng = random.Random(seed)
    return {
        name: rng.randrange(1 << width)
        for name, width in netlist.free_signals().items()
    }


class TestTruncate:
    def test_basic(self):
        assert truncate(0b1111, 2) == 0b11
        assert truncate(256, 8) == 0
        assert truncate(255, 8) == 255

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            truncate(1, 0)


class TestReferenceEvaluate:
    def test_hand_computed_mac(self):
        b = DFGBuilder()
        x = b.input("x", 8)
        c = b.constant("c", 4)
        p = b.mul(x, c, name="p", out_width=12)
        b.add(p, x, name="y", out_width=13)
        nl = Netlist.from_builder(b)
        values = evaluate(nl, {"x": 200, "c": 5})
        assert values["p"] == (200 * 5) % (1 << 12)
        assert values["y"] == (values["p"] + 200) % (1 << 13)

    def test_truncation_wraps(self):
        b = DFGBuilder()
        x = b.input("x", 8)
        b.mul(x, x, name="sq", out_width=6)
        nl = Netlist.from_builder(b)
        values = evaluate(nl, {"x": 255})
        assert values["sq"] == (255 * 255) % 64

    def test_sub_wraps_modulo(self):
        b = DFGBuilder()
        x = b.input("x", 8)
        z = b.input("z", 8)
        b.sub(x, z, name="d", out_width=9)
        nl = Netlist.from_builder(b)
        values = evaluate(nl, {"x": 1, "z": 2})
        assert values["d"] == (1 - 2) % (1 << 9)

    def test_inputs_truncated_to_width(self):
        b = DFGBuilder()
        x = b.input("x", 4)
        b.add(x, x, name="y")
        nl = Netlist.from_builder(b)
        assert evaluate(nl, {"x": 0xFF})["x"] == 0xF

    def test_missing_input_raises(self):
        nl = fir_filter_netlist(taps=2)
        with pytest.raises(KeyError):
            evaluate(nl, {"x0": 1})


class TestSimulateMatchesReference:
    @pytest.mark.parametrize("factory", ALL_NETLISTS, ids=lambda f: f.__name__)
    @pytest.mark.parametrize("relaxation", [0.0, 0.8])
    def test_dpalloc_datapaths(self, factory, relaxation):
        nl = factory()
        problem = make_problem(nl.graph, relaxation)
        dp = allocate(problem)
        for seed in range(3):
            values = random_inputs(nl, seed)
            result = simulate(nl, dp, values)
            golden = evaluate(nl, values)
            for name in nl.graph.names:
                assert result.values[name] == golden[name], name

    def test_ilp_datapath(self):
        nl = dct4_netlist()
        problem = make_problem(nl.graph, 0.5)
        dp, _ = allocate_ilp(problem)
        values = random_inputs(nl, 11)
        result = simulate(nl, dp, values)
        assert result.values == evaluate(nl, values)

    def test_two_stage_datapath(self):
        nl = iir_biquad_netlist()
        problem = make_problem(nl.graph, 0.3)
        dp, _ = allocate_two_stage(problem)
        values = random_inputs(nl, 13)
        result = simulate(nl, dp, values)
        assert result.values == evaluate(nl, values)

    def test_result_independent_of_binding(self):
        """Executing a small multiply on a big unit must not change values
        -- the invariant behind the paper's sharing strategy."""
        nl = motivational_example_netlist()
        tight = allocate(make_problem(nl.graph, 0.0))
        shared = allocate(make_problem(nl.graph, 4.0))
        assert tight.binding != shared.binding
        values = random_inputs(nl, 17)
        assert (
            simulate(nl, tight, values).values
            == simulate(nl, shared, values).values
        )


class TestSimulationResult:
    def test_timeline_and_events(self):
        nl = fir_filter_netlist(taps=3)
        dp = allocate(make_problem(nl.graph, 1.0))
        result = simulate(nl, dp, random_inputs(nl))
        lanes = result.timeline()
        assert sum(len(ops) for ops in lanes.values()) == len(nl.graph)
        assert result.cycles == dp.makespan
        for event in result.events:
            assert event.finish - event.start == dp.bound_latencies[event.operation]

    def test_output_values(self):
        nl = fir_filter_netlist(taps=3)
        dp = allocate(make_problem(nl.graph, 1.0))
        result = simulate(nl, dp, random_inputs(nl))
        outs = result.output_values(nl)
        assert set(outs) == set(nl.output_ops())


class TestHazardDetection:
    def make_setup(self):
        nl = fir_filter_netlist(taps=3)
        dp = allocate(make_problem(nl.graph, 1.0))
        return nl, dp, random_inputs(nl)

    def test_data_hazard(self):
        nl, dp, values = self.make_setup()
        schedule = dict(dp.schedule)
        # Pull a consumer to cycle 0, before its producer finishes.
        consumer = nl.graph.sinks()[0]
        schedule[consumer] = 0
        broken = dataclasses.replace(dp, schedule=schedule)
        with pytest.raises(SimulationError, match="hazard"):
            simulate(nl, broken, values)

    def test_structural_hazard(self):
        nl, dp, values = self.make_setup()
        clique = next(c for c in dp.binding.cliques if len(c.ops) > 1)
        first, second = clique.ops[0], clique.ops[1]
        schedule = dict(dp.schedule)
        schedule[second] = schedule[first]  # collide on the unit
        broken = dataclasses.replace(
            dp, schedule=schedule, makespan=dp.makespan
        )
        with pytest.raises(SimulationError):
            simulate(nl, broken, values)

    def test_width_hazard(self):
        nl, dp, values = self.make_setup()
        from repro.resources.types import ResourceType

        tiny = ResourceType("mul", (1, 1))
        cliques = tuple(
            BoundClique(tiny, c.ops) if c.resource.kind == "mul" else c
            for c in dp.binding.cliques
        )
        broken = dataclasses.replace(dp, binding=Binding(cliques))
        with pytest.raises(SimulationError, match="width hazard"):
            simulate(nl, broken, values)

    def test_missing_input_value(self):
        nl, dp, values = self.make_setup()
        values.pop(next(iter(nl.inputs)))
        with pytest.raises(SimulationError, match="no value"):
            simulate(nl, dp, values)

    def test_makespan_mismatch(self):
        nl, dp, values = self.make_setup()
        broken = dataclasses.replace(dp, makespan=dp.makespan + 1)
        with pytest.raises(SimulationError, match="makespan"):
            simulate(nl, broken, values)
