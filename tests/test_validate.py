"""The validator must catch every class of violation it documents."""

import dataclasses

import pytest

from repro import Problem, allocate
from repro.analysis.validate import ValidationError, is_valid, validate_datapath
from repro.core.binding import Binding, BoundClique
from repro.resources.types import ResourceType
from tests.conftest import make_problem


@pytest.fixture
def valid(chain_graph):
    problem = make_problem(chain_graph, relaxation=0.5)
    return problem, allocate(problem)


def mutate(dp, **changes):
    return dataclasses.replace(dp, **changes)


class TestAcceptsValid:
    def test_valid_solution_passes(self, valid):
        problem, dp = valid
        validate_datapath(problem, dp)
        assert is_valid(problem, dp)


class TestViolations:
    def test_missing_op_in_schedule(self, valid):
        problem, dp = valid
        schedule = dict(dp.schedule)
        schedule.pop("m0")
        assert not is_valid(problem, mutate(dp, schedule=schedule))

    def test_negative_start(self, valid):
        problem, dp = valid
        schedule = dict(dp.schedule, m0=-1)
        assert not is_valid(problem, mutate(dp, schedule=schedule))

    def test_precedence_violation(self, valid):
        problem, dp = valid
        # Move the consumer to start before its producer finishes.
        schedule = dict(dp.schedule)
        schedule["a0"] = schedule["m0"]
        assert not is_valid(problem, mutate(dp, schedule=schedule))

    def test_op_bound_twice(self, valid):
        problem, dp = valid
        cliques = dp.binding.cliques + (BoundClique(dp.cliques[0].resource,
                                                    (dp.cliques[0].ops[0],)),)
        assert not is_valid(problem, mutate(dp, binding=Binding(cliques)))

    def test_unbound_op(self, valid):
        problem, dp = valid
        cliques = tuple(
            BoundClique(c.resource, c.ops[1:]) if len(c.ops) > 1 else c
            for c in dp.cliques
        )
        stripped = Binding(cliques)
        if sorted(n for c in cliques for n in c.ops) == sorted(dp.schedule):
            pytest.skip("every clique was a singleton; nothing to strip")
        assert not is_valid(problem, mutate(dp, binding=stripped))

    def test_coverage_violation(self, valid):
        problem, dp = valid
        tiny = ResourceType("mul", (1, 1))
        cliques = tuple(
            BoundClique(tiny, c.ops) if c.resource.kind == "mul" else c
            for c in dp.cliques
        )
        assert not is_valid(problem, mutate(dp, binding=Binding(cliques)))

    def test_unit_overlap_detected(self):
        from repro.ir.seqgraph import SequencingGraph

        g = SequencingGraph()
        g.add("x", "mul", (8, 8))
        g.add("y", "mul", (8, 8))
        problem = Problem(g, latency_constraint=10)
        r = ResourceType("mul", (8, 8))
        dp_bad = mutate(
            allocate(problem),
            schedule={"x": 0, "y": 1},
            binding=Binding((BoundClique(r, ("x", "y")),)),
            bound_latencies={"x": 2, "y": 2},
            upper_bounds={"x": 2, "y": 2},
            makespan=3,
            area=64.0,
        )
        assert not is_valid(problem, dp_bad)

    def test_makespan_mismatch(self, valid):
        problem, dp = valid
        assert not is_valid(problem, mutate(dp, makespan=dp.makespan + 1))

    def test_latency_constraint_violation(self, valid):
        problem, dp = valid
        tight = problem.with_latency_constraint(max(1, dp.makespan - 1))
        assert not is_valid(tight, dp)

    def test_resource_count_violation(self, valid):
        problem, dp = valid
        limited = Problem(
            problem.graph,
            latency_constraint=problem.latency_constraint,
            resource_constraints={"mul": max(0, dp.unit_count("mul") - 1) or 1},
        )
        if dp.unit_count("mul") <= limited.resource_constraints["mul"]:
            pytest.skip("solution already within the tighter limit")
        assert not is_valid(limited, dp)

    def test_area_mismatch(self, valid):
        problem, dp = valid
        assert not is_valid(problem, mutate(dp, area=dp.area + 1.0))

    def test_error_message_lists_violation(self, valid):
        problem, dp = valid
        with pytest.raises(ValidationError, match="area"):
            validate_datapath(problem, mutate(dp, area=dp.area + 1.0))
