"""Tests for the optimal ILP baseline (ref. [5] reconstruction)."""

import pytest

from repro import InfeasibleError, Problem, allocate, validate_datapath
from repro.baselines.ilp import allocate_ilp, build_model
from repro.gen.tgff import random_sequencing_graph
from repro.ir.seqgraph import SequencingGraph
from tests.conftest import make_problem


class TestModelConstruction:
    def test_variable_count_grows_with_lambda(self, chain_graph):
        p = make_problem(chain_graph, relaxation=0.0)
        tight = build_model(p)
        loose = build_model(p.with_latency_constraint(p.latency_constraint + 5))
        assert loose.num_variables > tight.num_variables

    def test_infeasible_window_detected(self, chain_graph):
        p = Problem(chain_graph, latency_constraint=1)
        with pytest.raises(InfeasibleError):
            build_model(p)

    def test_x_columns_respect_coverage(self, chain_graph):
        p = make_problem(chain_graph, relaxation=0.2)
        model = build_model(p)
        for name, r, _ in model.variables:
            assert r.covers(p.graph.operation(name))


class TestOptimality:
    def test_single_op_dedicated_resource(self):
        g = SequencingGraph()
        g.add("m", "mul", (8, 8))
        p = make_problem(g)
        dp, stats = allocate_ilp(p)
        validate_datapath(p, dp)
        assert dp.area == 64.0
        assert stats.num_variables > 0

    def test_two_parallel_identical_muls_tight(self):
        g = SequencingGraph()
        g.add("x", "mul", (8, 8))
        g.add("y", "mul", (8, 8))
        p = make_problem(g, relaxation=0.0)  # lambda = 2
        dp, _ = allocate_ilp(p)
        validate_datapath(p, dp)
        assert dp.area == 128.0  # two dedicated units, no sharing possible

    def test_two_parallel_identical_muls_slack(self):
        g = SequencingGraph()
        g.add("x", "mul", (8, 8))
        g.add("y", "mul", (8, 8))
        p = Problem(g, latency_constraint=4)
        dp, _ = allocate_ilp(p)
        validate_datapath(p, dp)
        assert dp.area == 64.0  # serialised onto one unit

    def test_mixed_widths_share_one_big_unit(self):
        g = SequencingGraph()
        g.add("small", "mul", (8, 8))
        g.add("wide", "mul", (16, 16))
        p = Problem(g, latency_constraint=8)
        dp, _ = allocate_ilp(p)
        validate_datapath(p, dp)
        # One 16x16 unit (256) beats dedicated 64 + 256.
        assert dp.area == 256.0

    def test_never_worse_than_heuristic(self):
        for seed in range(8):
            g = random_sequencing_graph(6, seed=400 + seed)
            for relaxation in (0.0, 0.4):
                p = make_problem(g, relaxation)
                heuristic = allocate(p)
                optimal, _ = allocate_ilp(p)
                validate_datapath(p, optimal)
                assert optimal.area <= heuristic.area + 1e-9

    def test_respects_user_resource_constraints(self):
        g = SequencingGraph()
        g.add("x", "mul", (8, 8))
        g.add("y", "mul", (8, 8))
        p = Problem(g, latency_constraint=4, resource_constraints={"mul": 1})
        dp, _ = allocate_ilp(p)
        validate_datapath(p, dp)
        assert dp.unit_count("mul") == 1

    def test_infeasible_user_constraints(self):
        g = SequencingGraph()
        g.add("x", "mul", (8, 8))
        g.add("y", "mul", (8, 8))
        p = Problem(g, latency_constraint=2, resource_constraints={"mul": 1})
        with pytest.raises(InfeasibleError):
            allocate_ilp(p)


class TestHousekeeping:
    def test_empty_graph(self):
        dp, stats = allocate_ilp(Problem(SequencingGraph(), latency_constraint=1))
        assert dp.area == 0.0 and stats.num_variables == 0

    def test_stats_populated(self, diamond_graph):
        p = make_problem(diamond_graph, relaxation=0.2)
        _, stats = allocate_ilp(p)
        assert stats.num_variables > 0
        assert stats.num_constraints > 0
        assert stats.solve_seconds >= 0.0

    def test_monotone_in_lambda(self, diamond_graph):
        """Optimal area never increases when the constraint relaxes."""
        p0 = make_problem(diamond_graph, relaxation=0.0)
        areas = []
        for extra in (0, 2, 5, 10):
            p = p0.with_latency_constraint(p0.latency_constraint + extra)
            dp, _ = allocate_ilp(p)
            areas.append(dp.area)
        assert all(a >= b - 1e-9 for a, b in zip(areas, areas[1:]))
