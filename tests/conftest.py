"""Shared fixtures: canonical graphs and technology models."""

from __future__ import annotations

import pytest

from repro import Problem
from repro.ir.seqgraph import SequencingGraph
from repro.resources.area import SonicAreaModel
from repro.resources.latency import SonicLatencyModel


@pytest.fixture
def latency_model() -> SonicLatencyModel:
    return SonicLatencyModel()


@pytest.fixture
def area_model() -> SonicAreaModel:
    return SonicAreaModel()


@pytest.fixture
def chain_graph() -> SequencingGraph:
    """mul -> add -> mul chain with distinct wordlengths."""
    g = SequencingGraph()
    g.add("m0", "mul", (8, 8))
    g.add("a0", "add", (16, 16))
    g.add("m1", "mul", (12, 10))
    g.add_dependency("m0", "a0")
    g.add_dependency("a0", "m1")
    return g


@pytest.fixture
def diamond_graph() -> SequencingGraph:
    """One producer fanning out to two multiplies joined by an add."""
    g = SequencingGraph()
    g.add("src", "mul", (6, 6))
    g.add("left", "mul", (8, 4))
    g.add("right", "mul", (10, 8))
    g.add("join", "add", (20, 20))
    g.add_dependency("src", "left")
    g.add_dependency("src", "right")
    g.add_dependency("left", "join")
    g.add_dependency("right", "join")
    return g


@pytest.fixture
def parallel_muls_graph() -> SequencingGraph:
    """Four independent multiplies of assorted wordlengths."""
    g = SequencingGraph()
    g.add("p0", "mul", (8, 8))
    g.add("p1", "mul", (10, 6))
    g.add("p2", "mul", (12, 12))
    g.add("p3", "mul", (6, 4))
    return g


def make_problem(graph: SequencingGraph, relaxation: float = 0.0) -> Problem:
    """Problem at a relaxed lambda_min, with default SONIC models."""
    scratch = Problem(graph, latency_constraint=1_000_000)
    lam_min = scratch.minimum_latency()
    lam = max(1, int(lam_min * (1.0 + relaxation)))
    return scratch.with_latency_constraint(lam)


@pytest.fixture
def problem_factory():
    return make_problem
