"""Tests for scheduling with incomplete wordlength information (Eqn. 3).

The four reconstruction clues of DESIGN.md §4.2 are verified here:
strictness vs Eqn. 2, degeneration when |S| = |Y|, exactness under full
wordlength information, and rejection of the paper's Fig. 2 scenario.
"""

from fractions import Fraction

import pytest

from repro.core.problem import InfeasibleError
from repro.core.scheduling import (
    Eqn2Tracker,
    Eqn3Tracker,
    critical_path_priorities,
    list_schedule,
    serial_schedule,
)
from repro.core.wcg import WordlengthCompatibilityGraph
from repro.ir.ops import Operation
from repro.ir.seqgraph import SequencingGraph
from repro.resources.latency import SonicLatencyModel
from repro.resources.types import ResourceType

LAT = SonicLatencyModel()

BIG = ResourceType("mul", (20, 18))  # 5 cycles
SMALL = ResourceType("mul", (8, 8))  # 2 cycles


def fig2_wcg(refined: bool):
    """Two multiplies; optionally o1 loses its edge to the big resource.

    This is the paper's Fig. 2 refinement example: after deleting
    {o1, '20x18 mult'}, the graph cannot be implemented with one
    multiplier even if the ops are serialised.
    """
    o1 = Operation("o1", "mul", (8, 8))
    o2 = Operation("o2", "mul", (20, 18))
    h = {"o1": [BIG, SMALL], "o2": [BIG]}
    if refined:
        h["o1"] = [SMALL]
    return WordlengthCompatibilityGraph([o1, o2], [BIG, SMALL], LAT, h_edges=h)


def graph_two_serial_muls():
    g = SequencingGraph()
    g.add("o1", "mul", (8, 8))
    g.add("o2", "mul", (20, 18))
    g.add_dependency("o1", "o2")
    return g


def graph_two_parallel_muls():
    g = SequencingGraph()
    g.add("o1", "mul", (8, 8))
    g.add("o2", "mul", (20, 18))
    return g


class TestPriorities:
    def test_longest_path_to_sink(self):
        g = graph_two_serial_muls()
        pri = critical_path_priorities(g, {"o1": 2, "o2": 5})
        assert pri == {"o1": 7, "o2": 5}

    def test_parallel_ops(self):
        g = graph_two_parallel_muls()
        pri = critical_path_priorities(g, {"o1": 2, "o2": 5})
        assert pri == {"o1": 2, "o2": 5}


class TestEqn3Clues:
    def test_clue4_degenerates_to_eqn2_with_one_member(self):
        """|S| = |Y|: the LHS equals peak per-step concurrency."""
        wcg = fig2_wcg(refined=False)
        tracker = Eqn3Tracker(wcg, {"mul": 1})
        assert tracker.scheduling_set == (BIG,)
        # Serialised ops are fine with one unit.
        assert tracker.admits("o1", 0, 5)
        tracker.place("o1", 0, 5)
        assert not tracker.admits("o2", 3, 5)  # overlap refused
        assert tracker.admits("o2", 5, 5)  # back-to-back accepted
        tracker.place("o2", 5, 5)
        assert tracker.lhs("mul") == 1

    def test_clue6_fig2_scenario_rejected_even_serialised(self):
        """After refinement, two resource-wordlengths are forced, so
        N_mul = 1 must be rejected although the ops never overlap --
        the situation Eqn. 2 misses."""
        wcg = fig2_wcg(refined=True)
        tracker = Eqn3Tracker(wcg, {"mul": 1})
        assert len(tracker.scheduling_set) == 2
        tracker.place("o1", 0, 2)
        assert not tracker.admits("o2", 10, 5)  # serialised but still 2 units
        assert not tracker.ever_admittable("o2", 5)
        # Eqn. 2 wrongly accepts the same serialised placement.
        eqn2 = Eqn2Tracker(wcg, {"mul": 1})
        eqn2.place("o1", 0, 2)
        assert eqn2.admits("o2", 10, 5)

    def test_clue6_two_units_accept(self):
        wcg = fig2_wcg(refined=True)
        tracker = Eqn3Tracker(wcg, {"mul": 2})
        tracker.place("o1", 0, 2)
        assert tracker.admits("o2", 10, 5)

    def test_clue5_exact_with_full_information(self):
        """|S(o)| = 1 everywhere: the bound equals the exact number of
        units needed per member."""
        wcg = fig2_wcg(refined=True)
        tracker = Eqn3Tracker(wcg, {"mul": 2})
        tracker.place("o1", 0, 2)
        tracker.place("o2", 0, 5)
        assert tracker.lhs("mul") == 2

    def test_clue3_at_least_as_strict_as_eqn2(self):
        """Whenever Eqn. 3 admits a placement sequence, per-step counts
        never exceed N (so Eqn. 2 holds a fortiori)."""
        wcg = fig2_wcg(refined=False)
        tracker = Eqn3Tracker(wcg, {"mul": 2})
        placements = [("o1", 0, 2), ("o2", 1, 5)]
        per_step = {}
        for name, start, duration in placements:
            assert tracker.admits(name, start, duration)
            tracker.place(name, start, duration)
            for t in range(start, start + duration):
                per_step[t] = per_step.get(t, 0) + 1
        assert max(per_step.values()) <= 2

    def test_shares_are_fractional(self):
        wcg = fig2_wcg(refined=False)
        tracker = Eqn3Tracker(wcg, {"mul": 1})
        assert tracker.share("o1") == Fraction(1, 1)  # S(o1) = {BIG}

    def test_unconstrained_kind_always_admits(self):
        wcg = fig2_wcg(refined=True)
        tracker = Eqn3Tracker(wcg, {})
        assert tracker.admits("o1", 0, 2)
        assert tracker.ever_admittable("o2", 5)


class TestListSchedule:
    def test_no_constraints_is_asap(self):
        g = graph_two_serial_muls()
        wcg = fig2_wcg(refined=False)
        lat = {"o1": 5, "o2": 5}
        assert list_schedule(g, wcg, lat) == {"o1": 0, "o2": 5}

    def test_one_multiplier_serialises_parallel_ops(self):
        g = graph_two_parallel_muls()
        wcg = fig2_wcg(refined=False)
        lat = {"o1": 5, "o2": 5}
        schedule = list_schedule(g, wcg, lat, {"mul": 1})
        starts = sorted(schedule.values())
        assert starts[1] - starts[0] >= 5  # no overlap

    def test_two_multipliers_allow_overlap(self):
        g = graph_two_parallel_muls()
        wcg = fig2_wcg(refined=False)
        lat = {"o1": 5, "o2": 5}
        schedule = list_schedule(g, wcg, lat, {"mul": 2})
        assert schedule == {"o1": 0, "o2": 0}

    def test_infeasible_constraint_detected(self):
        g = graph_two_parallel_muls()
        wcg = fig2_wcg(refined=True)
        lat = {"o1": 2, "o2": 5}
        with pytest.raises(InfeasibleError):
            list_schedule(g, wcg, lat, {"mul": 1})

    def test_dependencies_respected_under_constraints(self):
        g = graph_two_serial_muls()
        wcg = fig2_wcg(refined=False)
        lat = {"o1": 5, "o2": 5}
        schedule = list_schedule(g, wcg, lat, {"mul": 1})
        assert schedule["o2"] >= schedule["o1"] + 5

    def test_eqn2_variant_runs(self):
        g = graph_two_parallel_muls()
        wcg = fig2_wcg(refined=False)
        lat = {"o1": 5, "o2": 5}
        schedule = list_schedule(g, wcg, lat, {"mul": 1}, constraint="eqn2")
        starts = sorted(schedule.values())
        assert starts[1] - starts[0] >= 5

    def test_unknown_constraint_name(self):
        g = graph_two_parallel_muls()
        wcg = fig2_wcg(refined=False)
        with pytest.raises(ValueError, match="unknown constraint"):
            list_schedule(g, wcg, {"o1": 5, "o2": 5}, {"mul": 1}, constraint="eqn9")


class TestSerialFallback:
    def test_serial_schedule_respects_dependencies(self):
        g = graph_two_serial_muls()
        lat = {"o1": 5, "o2": 5}
        schedule = serial_schedule(g, lat, {"mul"})
        assert schedule["o2"] >= schedule["o1"] + 5

    def test_serial_schedule_serialises_kind(self):
        g = SequencingGraph()
        for i in range(4):
            g.add(f"m{i}", "mul", (8, 8))
        lat = {f"m{i}": 2 for i in range(4)}
        schedule = serial_schedule(g, lat, {"mul"})
        starts = sorted(schedule.values())
        assert starts == [0, 2, 4, 6]

    def test_unconstrained_kind_runs_asap(self):
        g = SequencingGraph()
        g.add("a0", "add", (8, 8))
        g.add("a1", "add", (8, 8))
        schedule = serial_schedule(g, {"a0": 2, "a1": 2}, set())
        assert schedule == {"a0": 0, "a1": 0}


class TestGreedyWedgeFallback:
    """The greedy pass can permanently block an op whose scheduling-set
    members' peaks were exhausted by earlier aggressive placements; the
    scheduler must then fall back to the provably feasible serialised
    schedule instead of declaring infeasibility."""

    S1 = ResourceType("mul", (20, 18))  # covers o1, o2
    S2 = ResourceType("mul", (24, 6))   # covers o1, o3

    def build(self):
        g = SequencingGraph()
        g.add("o1", "mul", (8, 4))     # covered by both members
        g.add("o2", "mul", (20, 18))   # only S1
        g.add("o3", "mul", (24, 6))    # only S2
        ops = list(g.operations)
        wcg = WordlengthCompatibilityGraph(ops, [self.S1, self.S2], LAT)
        return g, wcg

    def test_scheduling_set_is_both_members(self):
        _, wcg = self.build()
        assert set(wcg.scheduling_set()) == {self.S1, self.S2}

    def test_greedy_pass_actually_wedges(self):
        from repro.core.scheduling import _GreedyWedge, _greedy_schedule

        g, wcg = self.build()
        latencies = {n: wcg.upper_bound_latency(n) for n in g.names}
        with pytest.raises(_GreedyWedge):
            _greedy_schedule(g, Eqn3Tracker(wcg, {"mul": 2}), latencies)

    def test_wedge_recovers_via_serial_schedule(self):
        g, wcg = self.build()
        latencies = {n: wcg.upper_bound_latency(n) for n in g.names}
        # Greedy places o1 (share 1/2 on both members) and o2 at step 0,
        # pushing S1's peak to 1.5; o3 then needs S2 at peak >= 1, and
        # 1.5 + 1 > N = 2 wedges the greedy pass permanently.
        schedule = list_schedule(g, wcg, latencies, {"mul": 2})
        intervals = sorted(
            (schedule[n], schedule[n] + latencies[n]) for n in g.names
        )
        for (s1, f1), (s2, f2) in zip(intervals, intervals[1:]):
            assert f1 <= s2  # serial fallback: pairwise disjoint

    def test_constraint_below_coverage_bound_is_infeasible(self):
        g, wcg = self.build()
        latencies = {n: wcg.upper_bound_latency(n) for n in g.names}
        # |S_mul| = 2 is a hard lower bound on implementable unit counts.
        with pytest.raises(InfeasibleError):
            list_schedule(g, wcg, latencies, {"mul": 1})


class TestManyOpsStress:
    def test_wide_graph_single_unit(self):
        g = SequencingGraph()
        ops = []
        for i in range(10):
            op = g.add(f"m{i}", "mul", (8, 8))
            ops.append(op)
        wcg = WordlengthCompatibilityGraph(ops, [SMALL, BIG], LAT)
        lat = {f"m{i}": 5 for i in range(10)}
        schedule = list_schedule(g, wcg, lat, {"mul": 1})
        intervals = sorted((schedule[n], schedule[n] + 5) for n in schedule)
        for (s1, f1), (s2, f2) in zip(intervals, intervals[1:]):
            assert f1 <= s2


class TestScaledIntegerTrackerEquivalence:
    """The scaled-integer Eqn3Tracker vs the retained Fraction reference.

    Both trackers are driven through identical query/placement streams;
    exact agreement on ``admits``/``ever_admittable``/``lhs`` is the
    shared-denominator invariant the byte-identity contract rests on.
    """

    def _universe(self, rng, n_ops, n_res):
        import random  # noqa: F401  (documents the rng parameter's type)

        resources = [
            ResourceType("mul", (8 + 2 * j, 8 + 2 * j)) for j in range(n_res)
        ]
        ops = [Operation(f"o{i}", "mul", (8, 8)) for i in range(n_ops)]
        h = {
            op.name: rng.sample(resources, rng.randint(1, n_res))
            for op in ops
        }
        wcg = WordlengthCompatibilityGraph(ops, resources, LAT, h_edges=h)
        return wcg, tuple(sorted(resources))

    def test_randomized_agreement_with_fraction_reference(self):
        import random

        from repro.core.scheduling import Eqn3TrackerReference

        rng = random.Random(1234)
        placements = 0
        for _trial in range(40):
            n_res = rng.randint(2, 6)
            wcg, sched_set = self._universe(rng, rng.randint(3, 12), n_res)
            limits = {"mul": rng.randint(1, n_res)}
            fast = Eqn3Tracker(wcg, limits, sched_set)
            ref = Eqn3TrackerReference(wcg, limits, sched_set)
            names = [op.name for op in wcg.operations]
            for _step in range(12):
                name = rng.choice(names)
                start = rng.randint(0, 15)
                duration = rng.randint(1, 5)
                assert fast.admits(name, start, duration) == ref.admits(
                    name, start, duration
                ), (name, start, duration)
                assert fast.ever_admittable(name, duration) == ref.ever_admittable(
                    name, duration
                )
                if rng.random() < 0.7:
                    fast.place(name, start, duration)
                    ref.place(name, start, duration)
                    placements += 1
                assert fast.lhs("mul") == ref.lhs("mul")
                assert fast.share(name) == ref.share(name)
        assert placements > 300  # "hundreds of placements"

    def test_large_lcm_denominator_stays_exact(self):
        """|S(o)| spanning the first 14 primes: D > 2**53.

        Beyond 2**53 consecutive integers stop being representable as
        floats, so any float shortcut would go wrong here; integer
        arithmetic must agree with the Fraction reference exactly.
        """
        import math
        import random

        from repro.core.scheduling import Eqn3TrackerReference

        primes = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43]
        resources = [
            ResourceType("mul", (8 + 2 * j, 8 + 2 * j)) for j in range(max(primes))
        ]
        ops = [Operation(f"o{i}", "mul", (8, 8)) for i in range(len(primes))]
        h = {f"o{i}": resources[:p] for i, p in enumerate(primes)}
        wcg = WordlengthCompatibilityGraph(ops, resources, LAT, h_edges=h)
        sched_set = tuple(sorted(resources))
        limits = {"mul": 3}
        fast = Eqn3Tracker(wcg, limits, sched_set)
        ref = Eqn3TrackerReference(wcg, limits, sched_set)
        assert fast.denominator == math.lcm(*primes)
        assert fast.denominator > 2**53
        rng = random.Random(99)
        names = [op.name for op in wcg.operations]
        for _step in range(60):
            name = rng.choice(names)
            start = rng.randint(0, 10)
            duration = rng.randint(1, 4)
            assert fast.admits(name, start, duration) == ref.admits(
                name, start, duration
            )
            if rng.random() < 0.8:
                fast.place(name, start, duration)
                ref.place(name, start, duration)
            assert fast.lhs("mul") == ref.lhs("mul")

    def test_admission_boundary_is_exact(self):
        """admits() at lhs == N exactly: <= must pass, one share over fails."""
        from repro.core.scheduling import Eqn3TrackerReference

        r1 = ResourceType("mul", (8, 8))
        r2 = ResourceType("mul", (10, 10))
        r3 = ResourceType("mul", (12, 12))
        ops = [
            Operation("a", "mul", (8, 8)),
            Operation("b", "mul", (8, 8)),
            Operation("c", "mul", (8, 8)),
        ]
        h = {"a": [r1, r2], "b": [r1, r2, r3], "c": [r1, r2, r3]}
        wcg = WordlengthCompatibilityGraph(ops, [r1, r2, r3], LAT, h_edges=h)
        sched_set = (r1, r2, r3)
        for limits in ({"mul": 1}, {"mul": 2}):
            fast = Eqn3Tracker(wcg, limits, sched_set)
            ref = Eqn3TrackerReference(wcg, limits, sched_set)
            # a (share 1/2) and b (share 1/3) overlapping at step 0:
            # peaks 5/6 on r1 and r2, 1/3 on r3 -> lhs = 2.
            fast.place("a", 0, 3)
            ref.place("a", 0, 3)
            assert fast.admits("b", 0, 3) == ref.admits("b", 0, 3)
            fast.place("b", 0, 3)
            ref.place("b", 0, 3)
            assert fast.lhs("mul") == ref.lhs("mul") == Fraction(2)
            # c at the same window adds exactly 1/3 per member: the
            # hypothetical lhs is exactly 3 -- admitted iff N >= 3.
            assert fast.admits("c", 0, 3) == ref.admits("c", 0, 3)
            assert fast.admits("c", 0, 3) is False
        limits = {"mul": 3}
        fast = Eqn3Tracker(wcg, limits, sched_set)
        ref = Eqn3TrackerReference(wcg, limits, sched_set)
        for name in ("a", "b"):
            fast.place(name, 0, 3)
            ref.place(name, 0, 3)
        # Boundary: hypothetical lhs == 3 == N exactly, so <= admits.
        assert fast.admits("c", 0, 3) is True
        assert ref.admits("c", 0, 3) is True
